#!/usr/bin/env python3
"""Reproduce the Figure 1 divisibility studies of the paper (Section 2).

The script runs the two experimental protocols on the calibrated GriPPS cost
model, fits the linear regressions the paper quotes (overheads of ~1.1 s and
~10.5 s), renders ASCII versions of Figure 1(a) and 1(b), and finally shows
the same divisibility property on *real* computation by scanning a small
synthetic databank block by block.

Run with::

    python examples/divisibility_study.py
"""

from __future__ import annotations

from repro.analysis import ascii_scatter, linear_regression
from repro.gripps import (
    GrippsApplication,
    MotifSet,
    SequenceDatabank,
    communication_study,
    motif_divisibility_experiment,
    scan_databank,
    sequence_divisibility_experiment,
)


def virtual_studies() -> None:
    """The calibrated (virtual-time) reproduction of Figure 1."""
    print("=" * 72)
    print("Figure 1(a): sequence databank divisibility")
    print("=" * 72)
    study_a = sequence_divisibility_experiment(repetitions=10)
    sizes, times = study_a.as_arrays()
    fit_a = linear_regression(sizes, times)
    print(ascii_scatter(sizes, times, title="GriPPS execution time vs sequence block size",
                        x_label="sequences", y_label="sec"))
    print(f"\nlinear fit: {fit_a.summary()}")
    print(f"fixed overhead (paper: 1.1 s): {fit_a.intercept:.2f} s")
    print()

    print("=" * 72)
    print("Figure 1(b): motif set divisibility")
    print("=" * 72)
    study_b = motif_divisibility_experiment(repetitions=10)
    sizes, times = study_b.as_arrays()
    fit_b = linear_regression(sizes, times)
    print(ascii_scatter(sizes, times, title="GriPPS execution time vs motif subset size",
                        x_label="motifs", y_label="sec"))
    print(f"\nlinear fit: {fit_b.summary()}")
    print(f"fixed overhead (paper: 10.5 s): {fit_b.intercept:.2f} s")
    print()

    comm = communication_study()
    print("Communication study (Section 2, last paragraph):")
    print(f"  motif upload   : {comm.motif_transfer_seconds * 1000:.2f} ms")
    print(f"  result download: {comm.result_transfer_seconds * 1000:.2f} ms")
    print(f"  computation    : {comm.computation_seconds:.1f} s")
    print(f"  ratio          : {comm.communication_ratio:.5%}  -> negligible, as the paper argues")
    print()


def real_scan_study() -> None:
    """Demonstrate divisibility on real motif-scanning computation."""
    print("=" * 72)
    print("Real-computation check: block scanning equals whole-databank scanning")
    print("=" * 72)
    databank = SequenceDatabank.synthetic("demo-bank", 200, mean_length=200, seed=11)
    motifs = MotifSet.random("demo-motifs", 12, seed=12, mean_length=5)
    application = GrippsApplication(seed=13)

    whole_time, whole_report = application.run_real(motifs, databank)
    print(f"whole databank : {whole_report.num_matches} matches, "
          f"{whole_report.residue_comparisons} residue comparisons, {whole_time * 1000:.1f} ms")

    merged = None
    block_time_total = 0.0
    for block in databank.partition(4):
        elapsed, report = application.run_real(motifs, block)
        block_time_total += elapsed
        merged = report if merged is None else merged.merge(report)
    print(f"4 blocks merged: {merged.num_matches} matches, "
          f"{merged.residue_comparisons} residue comparisons, {block_time_total * 1000:.1f} ms")
    print("-> identical results; aggregate work is preserved under partitioning,")
    print("   which is exactly the divisible-load property the scheduler exploits.")


def main() -> None:
    virtual_studies()
    real_scan_study()


if __name__ == "__main__":
    main()
