#!/usr/bin/env python3
"""Quickstart: state a scheduling problem and solve it optimally.

This example walks through the core API of the library:

1. describe a heterogeneous platform (machines hosting protein databanks),
2. describe a handful of divisible requests with release dates and weights,
3. minimise the maximum weighted flow off line — first in the divisible-load
   model (Theorem 2 of the paper), then in the preemptive model (Section 4.4),
4. inspect the resulting schedules.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Instance,
    Job,
    Machine,
    Platform,
    minimize_makespan,
    minimize_max_weighted_flow,
    minimize_max_weighted_flow_preemptive,
)
from repro.analysis import format_key_values


def build_instance() -> Instance:
    """A small GriPPS-like deployment: three servers, two databanks, five requests."""
    platform = Platform(
        [
            Machine("fast-server", cycle_time=0.5, databanks={"sprot"}),
            Machine("big-server", cycle_time=1.0, databanks={"sprot", "pdb"}),
            Machine("old-server", cycle_time=2.0, databanks={"pdb"}),
        ]
    )
    jobs = [
        Job("blast-alice", release_date=0.0, weight=1.0, size=8.0, databanks={"sprot"}),
        Job("scan-bob", release_date=1.0, weight=2.0, size=4.0, databanks={"pdb"}),
        Job("scan-carol", release_date=2.0, weight=1.0, size=12.0, databanks={"sprot"}),
        Job("probe-dave", release_date=4.0, weight=4.0, size=2.0, databanks={"pdb"}),
        Job("scan-erin", release_date=5.0, weight=1.0, size=6.0, databanks={"sprot"}),
    ]
    return Instance.from_platform(jobs, platform)


def main() -> None:
    instance = build_instance()
    print(instance.describe())
    print()

    # --- Makespan (Theorem 1) -------------------------------------------
    makespan = minimize_makespan(instance)
    print(f"Optimal makespan (divisible): {makespan.makespan:.3f} s")

    # --- Max weighted flow, divisible (Theorem 2) -------------------------
    divisible = minimize_max_weighted_flow(instance)
    divisible.schedule.validate()
    print(f"Optimal max weighted flow (divisible): {divisible.objective:.3f}")
    print(f"  milestones enumerated: {len(divisible.milestones)}")
    print(f"  feasibility LPs solved: {divisible.feasibility_checks}")
    print()
    print("Divisible optimal schedule:")
    print(divisible.schedule.as_table())
    print()

    # --- Max weighted flow, preemptive (Section 4.4) ----------------------
    preemptive = minimize_max_weighted_flow_preemptive(instance)
    preemptive.schedule.validate()
    print(f"Optimal max weighted flow (preemptive): {preemptive.objective:.3f}")
    print("  (never better than the divisible optimum, as the theory predicts)")
    print()

    # --- Per-job metrics ---------------------------------------------------
    metrics = divisible.schedule.metrics()
    rows = []
    for j, job in enumerate(instance.jobs):
        completion = metrics.completion_times[j]
        rows.append((job.name, f"{completion:.3f}", f"{divisible.schedule.weighted_flow(j):.3f}"))
    print("Per-request completion times and weighted flows (divisible optimum):")
    for name, completion, weighted_flow in rows:
        print(f"  {name:<14} C_j = {completion:>8}   w_j * F_j = {weighted_flow:>8}")
    print()
    print(
        format_key_values(
            [
                ("makespan of the flow-optimal schedule", metrics.makespan),
                ("max flow", metrics.max_flow),
                ("max weighted flow", metrics.max_weighted_flow),
                ("max stretch", metrics.max_stretch),
            ]
        )
    )


if __name__ == "__main__":
    main()
