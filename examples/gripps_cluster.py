#!/usr/bin/env python3
"""Schedule a realistic GriPPS request stream on a heterogeneous cluster.

The scenario mirrors the deployment the paper targets: several comparison
servers of different speeds, protein databanks partially replicated across
them, and a stream of motif-comparison requests arriving over time.  The
script:

1. generates the deployment and the request stream,
2. computes the off-line optimal maximum stretch (the fairness metric the
   paper recommends for this application),
3. replays the same workload on line with every available policy,
4. reports how far each policy is from the off-line optimum.

Run with::

    python examples/gripps_cluster.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import minimize_max_weighted_flow
from repro.gripps import make_gripps_instance
from repro.heuristics import available_schedulers, make_scheduler
from repro.simulation import simulate


def main() -> None:
    instance = make_gripps_instance(
        num_requests=14,
        num_machines=6,
        replication=0.5,
        arrival_rate=1.0 / 30.0,
        motif_range=(5, 80),
        stretch_weights=True,   # weights 1/W_j: max weighted flow == max stretch
        seed=42,
    )
    print(instance.describe())
    print("databank replication:",
          {bank: sum(1 for m in instance.machines if bank in m.databanks)
           for bank in sorted({b for m in instance.machines for b in m.databanks})})
    print()

    # Off-line optimum: the lower bound every on-line policy is measured against.
    offline = minimize_max_weighted_flow(instance)
    offline.schedule.validate()
    print(f"off-line optimal max stretch (divisible, Theorem 2): {offline.objective:.4f}")
    print()

    rows = []
    for name in available_schedulers():
        result = simulate(instance, make_scheduler(name))
        result.schedule.validate()
        metrics = result.metrics()
        rows.append(
            (
                name,
                metrics.max_weighted_flow,
                metrics.max_weighted_flow / offline.objective,
                metrics.makespan,
                result.num_preemptions,
            )
        )
    rows.sort(key=lambda row: row[1])

    print(
        format_table(
            ["policy", "max stretch", "vs off-line optimum", "makespan [s]", "preemptions"],
            rows,
            title="On-line policies on the GriPPS request stream (lower is better)",
        )
    )
    print()
    best = rows[0][0]
    print(f"Best on-line policy on this workload: {best}")
    print("The on-line adaptation of the off-line algorithm tracks the optimum closely,")
    print("while one-shot heuristics such as MCT pay for their irrevocable decisions —")
    print("this is the qualitative claim of the paper's Section 5.")


if __name__ == "__main__":
    main()
