#!/usr/bin/env python3
"""Divisible versus preemptive scheduling (Sections 4.3 and 4.4).

The divisible-load model lets a request run on several servers at once; the
preemptive model only allows migration.  This example quantifies what the
divisibility hypothesis buys on a batch of requests and shows the
Lawler–Labetoulle reconstruction at work: the preemptive optimal schedule
never runs a job on two machines simultaneously, yet achieves the optimal
preemptive max weighted flow.

Run with::

    python examples/preemptive_scheduling.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import (
    minimize_max_weighted_flow,
    minimize_max_weighted_flow_preemptive,
)
from repro.workload import random_restricted_instance


def main() -> None:
    rows = []
    for seed in range(5):
        instance = random_restricted_instance(
            num_jobs=8,
            num_machines=4,
            seed=seed,
            num_databanks=3,
            replication=0.7,
            stretch_weights=True,
        )
        divisible = minimize_max_weighted_flow(instance)
        preemptive = minimize_max_weighted_flow_preemptive(instance)
        divisible.schedule.validate()
        preemptive.schedule.validate()
        rows.append(
            (
                f"seed {seed}",
                divisible.objective,
                preemptive.objective,
                preemptive.objective / divisible.objective,
                len(preemptive.schedule),
            )
        )

    print(
        format_table(
            ["instance", "divisible optimum", "preemptive optimum", "ratio", "preemptive pieces"],
            rows,
            title="What the divisibility hypothesis buys (max weighted flow)",
            float_format=".4f",
        )
    )
    print()
    print("The preemptive optimum is always at least the divisible optimum (the")
    print("divisible model is a relaxation); the gap is the price of forbidding")
    print("simultaneous execution of a request on several servers.")
    print()

    # Show one preemptive schedule in detail.
    instance = random_restricted_instance(
        num_jobs=5, num_machines=3, seed=0, num_databanks=2, replication=0.8
    )
    preemptive = minimize_max_weighted_flow_preemptive(instance)
    print("One preemptive optimal schedule (Lawler-Labetoulle reconstruction):")
    print(preemptive.schedule.as_table())
    print()
    print("Validation confirms no request ever occupies two servers at the same instant.")
    preemptive.schedule.validate()


if __name__ == "__main__":
    main()
