#!/usr/bin/env python
"""Steady-state load sweep over an open-ended GriPPS request stream.

The paper's premise is an *on-line* portal: requests arrive continuously and
the scheduler never sees the full workload.  This example drives the PR 5
streaming runtime end to end:

1. describe a Poisson request stream over the ``small-cluster`` platform
   with a :class:`~repro.workload.streams.StreamSpec`;
2. sweep the offered load ρ (arrival rate over the platform's fluid
   capacity) against a set of on-line policies through
   :func:`~repro.analysis.stream_sweep.run_stream_sweep` — each cell is a
   rolling-horizon simulation whose memory stays O(active jobs);
3. print the steady-state stretch table (batch-means confidence intervals,
   post-warmup maxima, achieved utilisation, saturation flags).

Note how the policies separate as ρ approaches 1 — exactly the portal-load
axis the paper varies — and how a super-critical cell (ρ = 1.1) is flagged
``SATURATED`` instead of pretending to have converged.

Run from the repository root::

    PYTHONPATH=src python examples/stream_load_sweep.py
"""

from repro.analysis import run_stream_sweep
from repro.workload import StreamSpec


def main() -> None:
    spec = StreamSpec(
        label="portal",
        scenario="small-cluster",
        seed=2005,
        arrivals="poisson",
        sizes="uniform",
    )
    print(f"stream platform: scenario {spec.scenario!r}, seed {spec.seed}")
    print(f"content key:     {spec.content_key()}")
    print()

    result = run_stream_sweep(
        spec,
        policies=("mct", "srpt", "greedy-weighted-flow"),
        rhos=(0.3, 0.6, 0.9, 1.1),
        max_arrivals=1200,
        warmup_fraction=0.25,
        num_batches=12,
        max_active=2000,
    )
    print(result.as_table())
    stats = result.stats
    print()
    print(
        f"{stats.cells} cells, {stats.arrivals} simulated arrivals in "
        f"{stats.elapsed_seconds:.1f}s ({stats.arrivals_per_second:.0f} arrivals/s); "
        f"{stats.saturated_cells} saturated cell(s)"
    )
    print()
    print("Tip: pass store=/resume= (or use `repro-sched stream --store ... --resume`)")
    print("to make the sweep content-addressed and resumable.")


if __name__ == "__main__":
    main()
