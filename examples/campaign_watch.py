#!/usr/bin/env python
"""Flight-record a campaign: journal, live watch, and metrics export.

The PR 10 flight recorder gives long campaign/sweep runs a durable,
crash-tolerant record and a live view of the fleet — without ever
touching a digest.  This example walks the whole loop in-process:

1. run a small scenario campaign with a ``journal=`` file attached (a
   background thread plays the live dashboard, polling the journal with
   :func:`~repro.obs.watch_journal` while the driver is still writing);
2. run the same campaign with ``max_workers=2`` inside a
   :func:`~repro.obs.collecting` scope and check the merged snapshot is
   byte-identical to the sequential run's
   (:func:`~repro.obs.snapshot_bytes` — the cross-process aggregation
   contract);
3. re-run with ``resume=True`` against the same store: the journal gains
   a second run id whose cells are all ``cell-skipped``;
4. fold the final journal into a :class:`~repro.obs.FleetStatus` and
   render it, then export the metrics snapshot as Prometheus text.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_watch.py

Then inspect the journal it writes::

    PYTHONPATH=src python -m repro.cli watch campaign_watch.jsonl --once
    PYTHONPATH=src python -m repro.cli obs report campaign_watch.jsonl

"""

import threading

from repro.analysis import run_scenario_campaign
from repro.obs import (
    analyse_journal,
    collecting,
    read_journal,
    render_fleet_status,
    render_prometheus,
    snapshot_bytes,
    watch_journal,
)

JOURNAL = "campaign_watch.jsonl"
STORE = "campaign_watch.sqlite"
SCENARIOS = ("unrelated-stress", "hotspot")
POLICIES = ("srpt", "mct")


def run(**kwargs):
    return run_scenario_campaign(
        SCENARIOS, POLICIES, base_seed=2005, seeds_per_scenario=2, **kwargs
    )


def main() -> None:
    # 1. Journal a run while a watcher tails the file it is being written to.
    watcher = threading.Thread(
        target=watch_journal,
        args=(JOURNAL,),
        kwargs={"interval": 0.2, "max_updates": 50},
        daemon=True,
    )
    watcher.start()
    with collecting() as recorder:
        sequential = run(journal=JOURNAL)
    watcher.join(timeout=10.0)
    reference = snapshot_bytes(recorder.snapshot())
    print(f"\n{len(sequential.records)} records journalled to {JOURNAL}")

    # 2. The parallel driver ships per-cell snapshots back and folds them in
    #    emission order: same records, byte-identical deterministic snapshot.
    with collecting() as recorder:
        parallel = run(max_workers=2)
    assert parallel.records == sequential.records, "worker pool changed records!"
    assert snapshot_bytes(recorder.snapshot()) == reference, "snapshot merge drifted!"
    print("max_workers=2 reproduced the records and the merged metrics snapshot")
    print()

    # 3. A resumed run appends to the same journal under a fresh run id.
    run(store=STORE, journal=JOURNAL, run_label="cold")
    run(store=STORE, resume=True, journal=JOURNAL, run_label="warm")
    view = read_journal(JOURNAL)
    runs = view.runs()
    warm = analyse_journal(view.events, run=runs[-1])
    assert warm.completed == 0, "warm resume recomputed cells!"
    print(f"journal now holds {len(runs)} runs; the warm run skipped "
          f"{warm.skipped} cells")
    print()

    # 4. Fold and render the final state, then export the metrics.
    print(render_fleet_status(analyse_journal(view.events)))
    print()
    exposition = render_prometheus(recorder.snapshot(), fmt="prometheus")
    interesting = [
        line for line in exposition.splitlines()
        if line.startswith("repro_campaign_")
    ]
    print("prometheus exposition (campaign families):")
    for line in interesting:
        print(f"  {line}")
    print()
    print("Tip: `repro-sched campaign --journal run.jsonl ...` journals from the")
    print("CLI; `repro-sched watch run.jsonl` is the live dashboard and")
    print("`repro-sched obs export out.json --format openmetrics` the exporter.")


if __name__ == "__main__":
    main()
