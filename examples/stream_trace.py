#!/usr/bin/env python
"""Observe a streaming simulation: metrics, a Perfetto trace, a profile.

The PR 8 observability layer (``repro.obs``) watches the runtime without
perturbing it — metrics and traces are deterministic, live outside every
digest, and cost nothing when disabled.  This example drives all three
pillars over one open-ended request stream:

1. run the stream twice, once bare and once inside a
   :func:`~repro.obs.collecting` scope, and check the results are
   byte-identical (metrics never change what the simulator computes);
2. print the collected counter/gauge/histogram table;
3. build a deterministic trace from the finished result with
   :func:`~repro.obs.trace_stream_result` and export it both ways —
   JSON-lines (the byte-identity format) and Chrome trace-event JSON you
   can drop into https://ui.perfetto.dev or ``chrome://tracing``;
4. time the phases with a :class:`~repro.obs.PhaseProfiler` (wall clock,
   reporting only — never part of any contract).

Run from the repository root::

    PYTHONPATH=src python examples/stream_trace.py

Then inspect the artefacts it writes::

    PYTHONPATH=src python -m repro.cli obs report stream_trace.json

"""

from repro.heuristics import make_scheduler
from repro.obs import PhaseProfiler, Tracer, collecting, render_metrics, trace_stream_result
from repro.simulation import StreamingSimulator
from repro.workload import StreamSpec, open_stream

ARRIVALS = 600


def run_once() -> object:
    spec = StreamSpec(label="portal", scenario="small-cluster", seed=2005)
    spec = spec.with_utilisation(0.8)
    return StreamingSimulator().run(
        open_stream(spec), make_scheduler("srpt"), max_arrivals=ARRIVALS
    )


def main() -> None:
    profiler = PhaseProfiler()

    with profiler.phase("bare run"):
        bare = run_once()
    with profiler.phase("observed run"):
        with collecting() as recorder:
            observed = run_once()

    assert observed.fingerprint() == bare.fingerprint(), "metrics perturbed the run!"
    print(f"{ARRIVALS} arrivals simulated twice; fingerprints identical with obs on/off")
    print()
    print(render_metrics(recorder.snapshot()))
    print()

    with profiler.phase("trace"):
        tracer: Tracer = trace_stream_result(observed)
        jsonl = tracer.to_jsonl()
        chrome = tracer.to_chrome()
    again = trace_stream_result(run_once()).to_jsonl()
    assert again == jsonl, "traces must be byte-identical run to run"

    with open("stream_trace.jsonl", "w") as handle:
        handle.write(jsonl)
    with open("stream_trace.json", "w") as handle:
        handle.write(chrome + "\n")
    print(f"trace: {len(tracer)} events -> stream_trace.jsonl (byte-identity format)")
    print("       and stream_trace.json (open it in https://ui.perfetto.dev)")
    print()

    print(profiler.render())
    print()
    print("Tip: `repro-sched stream --metrics --trace out.json --profile ...` does")
    print("all of this from the CLI; `repro-sched obs report PATH` renders any")
    print("of the artefacts (traces, metrics snapshots, sweep/campaign outputs).")


if __name__ == "__main__":
    main()
