#!/usr/bin/env python3
"""Sweep the system load and compare on-line policies against the off-line optimum.

The paper's conclusion claims that a simple on-line adaptation of the off-line
algorithm beats classical heuristics such as MCT.  This example quantifies the
claim across load levels: for each arrival rate we generate several random
GriPPS-like workloads, run every policy, and report the mean degradation with
respect to the off-line optimal max weighted flow.

Run with::

    python examples/online_vs_offline.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, geometric_mean
from repro.core import minimize_max_weighted_flow
from repro.heuristics import make_scheduler
from repro.simulation import simulate
from repro.workload import random_restricted_instance

POLICIES = ("mct", "fifo", "srpt", "greedy-weighted-flow", "round-robin", "online-offline")
LOAD_LEVELS = {
    "light (mean gap 3.0)": 1.0 / 3.0,
    "moderate (mean gap 1.5)": 1.0 / 1.5,
    "heavy (mean gap 0.8)": 1.0 / 0.8,
}
NUM_SEEDS = 3


def run_sweep() -> None:
    rows = []
    for load_name, rate in LOAD_LEVELS.items():
        degradations = {policy: [] for policy in POLICIES}
        for seed in range(NUM_SEEDS):
            from repro.workload import ArrivalProcess

            instance = random_restricted_instance(
                num_jobs=10,
                num_machines=4,
                seed=seed,
                arrivals=ArrivalProcess(kind="poisson", rate=rate),
                num_databanks=3,
                replication=0.6,
                size_range=(1.0, 6.0),
                stretch_weights=True,
            )
            optimum = minimize_max_weighted_flow(instance).objective
            for policy in POLICIES:
                result = simulate(instance, make_scheduler(policy))
                degradations[policy].append(result.max_weighted_flow / optimum)
        row = [load_name]
        for policy in POLICIES:
            row.append(geometric_mean(degradations[policy]))
        rows.append(tuple(row))

    print(
        format_table(
            ["load"] + [f"{p}" for p in POLICIES],
            rows,
            title=(
                "Mean degradation of max weighted flow vs the off-line optimum "
                "(1.0 = optimal, lower is better)"
            ),
            float_format=".3f",
        )
    )
    print()
    print("The LP-based on-line adaptation stays within a few percent of the optimum at")
    print("every load level; MCT and FIFO degrade as the load (and hence the benefit of")
    print("revisiting placement decisions) grows.")


def main() -> None:
    np.random.seed(0)
    run_sweep()


if __name__ == "__main__":
    main()
