"""Repository-level pytest configuration.

Registers the test-tier markers.  Tier-1 (the fast gate every PR runs, see
ROADMAP.md) deselects ``tier2``::

    PYTHONPATH=src python -m pytest -x -q -m "not tier2"

``tier2`` marks the slow store/bench round-trip tests (bulk-insert
throughput, resume skip-rate sweeps); run them explicitly with
``-m tier2`` or by omitting the deselection.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: slow store/bench round-trip tests, deselected from the tier-1 gate",
    )
