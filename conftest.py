"""Repository-level pytest configuration.

Registers the test-tier markers.  Tier-1 (the fast gate every PR runs, see
ROADMAP.md) deselects ``tier2``::

    PYTHONPATH=src python -m pytest -x -q -m "not tier2"

``tier2`` marks the slow store/bench round-trip tests (bulk-insert
throughput, resume skip-rate sweeps); run them explicitly with
``-m tier2`` or by omitting the deselection.

``bench`` is an alias marker for the heavyweight acceptance benches: any
test marked ``bench`` is automatically also marked ``tier2`` (so bench
modules only need the one marker and tier-1 stays fast), and the benches
can be selected as a family with ``-m bench``.

``bench_smoke`` marks the tiny-scale smoke twins of the bench assertion
paths (``tests/benchmarks/``): they run in tier-1, so a broken bench
assertion surfaces at the fast gate instead of at the ``-m bench`` run.

``lint`` marks the ``repro.lint`` static-analyzer tests (``tests/lint/``),
including the full-package self-check that asserts zero non-baselined
findings over ``src/repro``.  They run in tier-1 by default — the analyzer
is a standing gate the way ``bench_engine_regression.py`` is for the
kernel — and can be selected as a family with ``-m lint``.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: slow store/bench round-trip tests, deselected from the tier-1 gate",
    )
    config.addinivalue_line(
        "markers",
        "bench: heavyweight acceptance benches; implies tier2 (tier-1 deselects them)",
    )
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny-scale bench assertion smoke tests; run in tier-1",
    )
    config.addinivalue_line(
        "markers",
        "lint: repro.lint static-analyzer tests (self-check gate); run in tier-1",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("bench") and not item.get_closest_marker("tier2"):
            item.add_marker(pytest.mark.tier2)
