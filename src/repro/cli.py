"""Command-line interface.

The CLI exposes the library's main workflows without writing any Python:

``repro-sched info``
    Version, registered policies, registered scenarios.
``repro-sched scenario list`` / ``repro-sched scenario build NAME``
    Inspect and materialise named workload scenarios (JSON instance files).
``repro-sched solve INSTANCE.json``
    Off-line optimisation (max weighted flow by default; makespan and
    max-stretch via ``--objective``; ``--preemptive`` for Section 4.4).
``repro-sched simulate INSTANCE.json --policy mct`` (or ``--all-policies``)
    On-line replay of the instance with one or all policies.
``repro-sched campaign --scenarios ... --policies ... --base-seed N``
    Scenario × seed × policy sweep through the streaming campaign
    dispatcher (``--max-workers``, ``--chunk-size``); ``--store PATH``
    persists every record into a content-addressed experiment store and
    ``--resume`` computes only the cells missing from it.  Policies accept
    parameterised variant tokens — ``--policies
    online-offline:period=2,mct`` sweeps a named variant whose parameters
    flow into the stored cell digests.  ``--metrics`` collects and prints
    obs counters, ``--trace PATH`` writes a deterministic trace of the
    records, ``--profile`` prints a wall-clock phase profile.
``repro-sched stream --scenario ... --rho 0.3:0.9:7 --arrivals N``
    Steady-state load sweep over an open-ended arrival stream: utilisation
    ρ (offered load over the platform's fluid capacity) × policy, with
    batch-means confidence intervals, saturation flags and — via
    ``--store``/``--resume`` — content-addressed, resumable cells.
    ``--metrics`` additionally snapshots obs counters per computed cell
    (persisted with ``--store``, outside the digests); ``--trace PATH``
    writes a deterministic per-cell trace (JSON lines, or Chrome/Perfetto
    JSON when PATH ends in ``.json``).
``repro-sched obs report PATH``
    Render an observability artefact: a metrics snapshot, a trace file
    (either export format), a run journal, or a sweep/campaign
    ``--output`` JSON — auto-detected by shape.  Sweep reports surface
    the MSER-5 saturation evidence (truncation point, occupancy
    trajectory) per cell; journal reports show the lifecycle timeline,
    per-phase wall-clock totals and heartbeat gaps.
``repro-sched obs export PATH --format prometheus|openmetrics``
    Text exposition of a metrics snapshot for scrapers.
``repro-sched watch JOURNAL``
    Tail a ``--journal`` file (campaign/stream) while the run is live:
    throughput, per-policy progress, ETA from the completed-cell
    trajectory, straggler/stall detection against the rolling median
    cell time.
``repro-sched store ls|show|diff|gc PATH ...``
    Query an experiment store: list runs, dump one run's records and
    headline metrics, diff two runs policy by policy (``--cells`` joins
    them on workload key and localises changes to individual scenarios),
    or prune epoch-orphaned records and incomplete runs (``gc``, dry-run
    by default).
``repro-sched lint [--format json] [--baseline .reprolint.json] [--fail-on warning]``
    Project-invariant static analyzer (see :mod:`repro.lint`): determinism
    rules, the digest-epoch guard and policy-protocol conformance over
    ``src/repro``; ``--types`` additionally runs the (optional) mypy policy
    from ``setup.cfg``.  Also available as ``python -m repro.lint``.
``repro-sched divisibility --dimension sequences|motifs``
    Regenerate the Figure 1 series and its regression.

Every command prints human-readable tables; ``--output`` writes machine-readable
JSON next to them.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from . import __version__
from .analysis import (
    format_table,
    linear_regression,
    render_cross_run_diff,
    run_scenario_campaign,
)
from .core import (
    Instance,
    minimize_makespan,
    minimize_max_stretch,
    minimize_max_weighted_flow,
    render_gantt,
)
from .exceptions import ReproError
from .gripps import motif_divisibility_experiment, sequence_divisibility_experiment
from .heuristics import (
    available_policies,
    available_schedulers,
    make_scheduler,
    policy_spec,
    resolve_policy_variant,
)
from .simulation import simulate
from .workload import (
    available_scenarios,
    load_instance,
    make_scenario,
    save_instance,
    save_schedule,
)

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Parser                                                                       #
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Off-line and on-line scheduling of divisible requests "
        "(reproduction of Legrand, Su & Vivien, IPPS 2005).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # info ------------------------------------------------------------------
    info = subparsers.add_parser("info", help="show version, policies and scenarios")
    info.add_argument(
        "--lp-backends",
        action="store_true",
        help="list LP solver backends with availability and warm-start support",
    )

    # scenario ---------------------------------------------------------------
    scenario = subparsers.add_parser("scenario", help="inspect or build named scenarios")
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list available scenarios")
    scenario_build = scenario_sub.add_parser("build", help="materialise a scenario to JSON")
    scenario_build.add_argument("name", help="scenario name (see 'scenario list')")
    scenario_build.add_argument("--seed", type=int, default=None, help="RNG seed")
    scenario_build.add_argument("--output", help="write the instance to this JSON file")

    # solve -------------------------------------------------------------------
    solve = subparsers.add_parser("solve", help="off-line optimisation of an instance file")
    solve.add_argument("instance", help="instance JSON file (see 'scenario build')")
    solve.add_argument(
        "--objective",
        choices=("max-weighted-flow", "max-stretch", "makespan"),
        default="max-weighted-flow",
        help="objective to optimise (default: max-weighted-flow)",
    )
    solve.add_argument(
        "--preemptive",
        action="store_true",
        help="use the preemptive (non-divisible) model of Section 4.4",
    )
    solve.add_argument(
        "--backend",
        choices=("scipy", "simplex", "revised", "tableau", "highspy"),
        default="scipy",
        help="LP backend (see 'info --lp-backends'); default: scipy",
    )
    solve.add_argument("--output", help="write the optimal schedule to this JSON file")
    solve.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")

    # simulate ------------------------------------------------------------------
    simulate_cmd = subparsers.add_parser("simulate", help="on-line replay of an instance file")
    simulate_cmd.add_argument("instance", help="instance JSON file, or a scenario name")
    simulate_cmd.add_argument("--policy", default="online-offline",
                              help="policy name (see 'info'); default: online-offline")
    simulate_cmd.add_argument("--all-policies", action="store_true",
                              help="run every registered policy and rank them")
    simulate_cmd.add_argument("--seed", type=int, default=None,
                              help="seed when the instance argument is a scenario name")

    # campaign -------------------------------------------------------------------
    campaign = subparsers.add_parser(
        "campaign",
        help="scenario x seed x policy sweep through the streaming dispatcher",
    )
    campaign.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: every registered scenario)",
    )
    campaign.add_argument(
        "--policies",
        default="mct,greedy-weighted-flow,online-offline",
        help="comma-separated policy names, or 'all' for every on-line policy; "
        "parameterised variants use name:key=value[,key=value...] syntax, "
        "e.g. online-offline:period=2 (see 'repro-sched info' for each "
        "policy's sweepable parameters)",
    )
    campaign.add_argument(
        "--seeds", default=None, help="comma-separated integer seeds (one instance per seed)"
    )
    campaign.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="spawn per-scenario seeds from this base (reproducible "
        "independent of workers/chunking); combine with --num-seeds",
    )
    campaign.add_argument(
        "--num-seeds",
        type=int,
        default=1,
        help="seeds per scenario spawned from --base-seed (default 1)",
    )
    campaign.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="parallel worker processes (0 = one per CPU; default: in-process)",
    )
    campaign.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        help="policies per dispatched task (default 1: per-policy granularity)",
    )
    campaign.add_argument(
        "--no-offline",
        action="store_true",
        help="skip the offline-optimal records (the optimum is still computed "
        "for normalisation)",
    )
    campaign.add_argument("--output", help="write records and throughput stats to this JSON file")
    campaign.add_argument(
        "--store",
        metavar="PATH",
        help="persist records into this experiment store (SQLite, created on demand)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already present in --store; compute only the missing ones",
    )
    campaign.add_argument(
        "--run-label",
        default=None,
        help="label of the run registered in --store (default: 'campaign')",
    )
    campaign.add_argument(
        "--metrics",
        action="store_true",
        help="collect obs counters around the campaign and print the metrics table",
    )
    campaign.add_argument(
        "--trace",
        metavar="PATH",
        help="write a deterministic trace of the records (JSON lines; "
        "Chrome/Perfetto JSON when PATH ends in .json)",
    )
    campaign.add_argument(
        "--profile",
        action="store_true",
        help="print a coarse wall-clock phase profile of the command",
    )
    campaign.add_argument(
        "--journal",
        metavar="PATH",
        help="append run-lifecycle events (cells, heartbeats, commits) to "
        "this JSONL journal; watch it live with 'repro-sched watch PATH'",
    )

    # stream ---------------------------------------------------------------------
    stream = subparsers.add_parser(
        "stream",
        help="steady-state load sweep over an open-ended arrival stream",
    )
    stream.add_argument(
        "--scenario",
        default="small-cluster",
        help="named scenario supplying the stream's platform (default: small-cluster)",
    )
    stream.add_argument(
        "--policies",
        default="mct,srpt,greedy-weighted-flow",
        help="comma-separated on-line policy names (variant tokens accepted)",
    )
    stream.add_argument(
        "--rho",
        default="0.3:0.9:4",
        help="utilisation sweep, 'start:stop:count' (linear) or comma-separated "
        "values; rho is offered load over the platform's fluid capacity",
    )
    stream.add_argument(
        "--arrivals",
        type=int,
        default=1500,
        help="arrival budget per cell (default 1500); the horizon of each stream",
    )
    stream.add_argument(
        "--arrival-process",
        choices=("poisson", "mmpp"),
        default="poisson",
        help="arrival process of the stream (default: poisson)",
    )
    stream.add_argument(
        "--sizes",
        choices=("uniform", "pareto"),
        default="uniform",
        help="job-size distribution (default: uniform)",
    )
    stream.add_argument("--seed", type=int, default=0, help="stream base seed")
    stream.add_argument(
        "--warmup",
        type=float,
        default=0.25,
        help="fraction of completions discarded as warmup (default 0.25)",
    )
    stream.add_argument(
        "--batches",
        type=int,
        default=16,
        help="batch-means batches for the confidence intervals (default 16)",
    )
    stream.add_argument(
        "--max-active",
        type=int,
        default=10_000,
        help="saturation cap on simultaneously live jobs (default 10000)",
    )
    stream.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="parallel worker processes for the cells (0 = one per CPU; "
        "default: in-process); store cells are digest-identical either way",
    )
    stream.add_argument(
        "--store",
        metavar="PATH",
        help="persist stream cells into this experiment store (SQLite)",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already present in --store; compute only the missing ones",
    )
    stream.add_argument(
        "--run-label",
        default=None,
        help="label of the run registered in --store (default: 'stream-sweep')",
    )
    stream.add_argument("--output", help="write cells and sweep stats to this JSON file")
    stream.add_argument(
        "--metrics",
        action="store_true",
        help="collect obs counters (sweep-wide and per computed cell) and "
        "print the metrics table; per-cell snapshots persist with --store "
        "in the records' extra JSON, outside the digests",
    )
    stream.add_argument(
        "--trace",
        metavar="PATH",
        help="write a deterministic trace of every computed cell (JSON "
        "lines; Chrome/Perfetto JSON when PATH ends in .json); traces "
        "need the cells' result series, so this forces in-process cells",
    )
    stream.add_argument(
        "--profile",
        action="store_true",
        help="print a coarse wall-clock phase profile of the command",
    )
    stream.add_argument(
        "--journal",
        metavar="PATH",
        help="append run-lifecycle events (cells, heartbeats) to this JSONL "
        "journal; watch it live with 'repro-sched watch PATH'",
    )

    # watch ----------------------------------------------------------------------
    watch = subparsers.add_parser(
        "watch",
        help="tail a run journal and render live fleet status "
        "(throughput, per-policy progress, ETA, stragglers)",
    )
    watch.add_argument("journal", help="run journal written by --journal")
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2.0)",
    )
    watch.add_argument(
        "--updates",
        type=int,
        default=None,
        metavar="N",
        help="stop after N status updates (default: until the run finishes)",
    )
    watch.add_argument(
        "--stall-factor",
        type=float,
        default=4.0,
        help="flag a dispatched cell as a straggler after this multiple of "
        "the rolling median cell time (default 4.0)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render the current status once and exit (no polling)",
    )

    # store ----------------------------------------------------------------------
    store = subparsers.add_parser(
        "store", help="query a campaign experiment store (runs, records, diffs)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list the runs of a store")
    store_ls.add_argument("path", help="experiment store file")
    store_show = store_sub.add_parser(
        "show", help="show one run: headline metrics (and records with --records)"
    )
    store_show.add_argument("path", help="experiment store file")
    store_show.add_argument(
        "run", help="run reference: an id, a label (latest match), or 'latest'"
    )
    store_show.add_argument(
        "--records", action="store_true", help="also list the run's individual records"
    )
    store_diff = store_sub.add_parser(
        "diff", help="per-policy metric deltas between two runs, with tolerance flags"
    )
    store_diff.add_argument("path", help="experiment store file")
    store_diff.add_argument("baseline", help="baseline run (id, label or 'latest')")
    store_diff.add_argument("current", help="current run (id, label or 'latest')")
    store_diff.add_argument(
        "--tolerance",
        type=float,
        default=1e-6,
        help="relative tolerance under which a delta is 'ok' (default 1e-6)",
    )
    store_diff.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit with status 1 when any metric regressed beyond the tolerance",
    )
    store_diff.add_argument(
        "--cells",
        action="store_true",
        help="also join the two runs on workload key and report per-cell "
        "deltas, localising changes to individual scenarios",
    )
    store_gc = store_sub.add_parser(
        "gc",
        help="prune records orphaned by a CODE_EPOCH bump and vacuum "
        "incomplete runs (dry-run unless --apply)",
    )
    store_gc.add_argument("path", help="experiment store file")
    store_gc.add_argument(
        "--epoch",
        default=None,
        help="prune exactly this code epoch (default: every epoch that is "
        "not the current one)",
    )
    store_gc.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="only touch records/runs whose provenance run is older than "
        "DAYS days",
    )
    store_gc.add_argument(
        "--apply",
        action="store_true",
        help="actually delete and VACUUM (default: dry-run report only)",
    )

    # lint -----------------------------------------------------------------------
    lint = subparsers.add_parser(
        "lint",
        help="run the project-invariant static analyzer (repro.lint)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: the whole src/repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of justified, allowlisted findings "
        "(default: .reprolint.json at the project root, when present)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "note", "never"),
        default="error",
        help="lowest severity of non-baselined findings that fails the run "
        "(default: error)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset (default: every registered rule; "
        "see --list)",
    )
    lint.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the registered rules and exit",
    )
    lint.add_argument(
        "--diff-range",
        default=None,
        metavar="A..B",
        help="git range for the diff-aware rules (epoch guard); default: "
        "working tree vs HEAD",
    )
    lint.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list the baseline-suppressed findings and their justifications",
    )
    lint.add_argument(
        "--types",
        action="store_true",
        help="additionally run the mypy policy from setup.cfg (strict on "
        "repro.store and repro.core.replanning); skipped explicitly when "
        "mypy is not installed",
    )

    # obs ------------------------------------------------------------------------
    obs = subparsers.add_parser(
        "obs",
        help="render observability artefacts (metrics snapshots, traces, "
        "sweep/campaign reports)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="pretty-print a metrics snapshot, a trace file, or a "
        "stream/campaign --output JSON (auto-detected by shape)",
    )
    obs_report.add_argument("path", help="artefact file to render")
    obs_report.add_argument(
        "--trajectories",
        action="store_true",
        help="for sweep reports: also plot each cell's occupancy "
        "trajectory (the MSER-5 scan evidence) as an ASCII series",
    )
    obs_export = obs_sub.add_parser(
        "export",
        help="render a metrics snapshot (or a sweep/campaign --output "
        "JSON carrying one) as Prometheus/OpenMetrics exposition text",
    )
    obs_export.add_argument("path", help="metrics snapshot (JSON) to export")
    obs_export.add_argument(
        "--format",
        choices=("prometheus", "openmetrics"),
        default="prometheus",
        dest="export_format",
        help="exposition format (default: prometheus)",
    )
    obs_export.add_argument(
        "--output",
        default=None,
        help="write the exposition text to this file (default: stdout)",
    )

    # divisibility ---------------------------------------------------------------
    divisibility = subparsers.add_parser(
        "divisibility", help="regenerate the Figure 1 divisibility series"
    )
    divisibility.add_argument(
        "--dimension", choices=("sequences", "motifs"), default="sequences"
    )
    divisibility.add_argument("--repetitions", type=int, default=10)

    return parser


# --------------------------------------------------------------------------- #
# Command implementations                                                      #
# --------------------------------------------------------------------------- #
def _cmd_info(args: Optional[argparse.Namespace] = None) -> int:
    if args is not None and getattr(args, "lp_backends", False):
        return _cmd_info_lp_backends()
    print(f"repro {__version__} — reproduction of Legrand, Su & Vivien (IPPS 2005)")
    print()
    print("on-line policies:  " + ", ".join(available_schedulers()))
    print("off-line policies: " + ", ".join(available_policies(kind="offline")))
    print("scenarios:         " + ", ".join(available_scenarios()))
    parameterised = [
        (name, policy_spec(name).params)
        for name in available_policies()
        if policy_spec(name).params
    ]
    if parameterised:
        print()
        print("sweepable parameters (variant syntax: name:key=value[,key=value...]):")
        for name, params in parameterised:
            listing = ", ".join(
                f"{param.name}={param.default!r} ({param.type.__name__})"
                for param in params
            )
            print(f"  {name}: {listing}")
    return 0


def _cmd_info_lp_backends() -> int:
    """Render the LP backend inventory (mirrors the numba/mypy gating rows)."""
    from .lp.backends import backend_inventory

    rows = backend_inventory()
    label_w = max(len(info.label) for info in rows)
    alias_w = max(len(", ".join(info.aliases)) for info in rows)
    print("LP backends (request any alias via --backend / backend= policy params):")
    for info in rows:
        availability = "available" if info.available else "unavailable"
        warm = "warm-start" if info.warm_start else "cold only"
        aliases = ", ".join(info.aliases)
        print(
            f"  {info.label:<{label_w}}  [{aliases:<{alias_w}}]  "
            f"{availability:<11}  {warm:<10}  {info.description}"
        )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        for name in available_scenarios():
            print(name)
        return 0
    instance = make_scenario(args.name, seed=args.seed)
    print(instance.describe())
    if args.output:
        save_instance(instance, args.output)
        print(f"instance written to {args.output}")
    return 0


def _load_instance_argument(argument: str, seed: Optional[int]) -> Instance:
    """Interpret an instance argument as a file path or a scenario name."""
    if argument in available_scenarios():
        return make_scenario(argument, seed=seed)
    return load_instance(argument)


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(instance.describe())

    if args.objective == "makespan":
        result = minimize_makespan(instance, preemptive=args.preemptive, backend=args.backend)
        schedule = result.schedule
        print(f"optimal makespan: {result.makespan:.6g}")
    elif args.objective == "max-stretch":
        result = minimize_max_stretch(instance, preemptive=args.preemptive, backend=args.backend)
        schedule = result.schedule
        print(f"optimal max stretch: {result.objective:.6g}")
    else:
        result = minimize_max_weighted_flow(
            instance, preemptive=args.preemptive, backend=args.backend
        )
        schedule = result.schedule
        print(f"optimal max weighted flow: {result.objective:.6g}")

    schedule.validate()
    metrics = schedule.metrics()
    print(metrics.summary())
    if args.gantt:
        print()
        print(render_gantt(schedule))
    if args.output:
        save_schedule(schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    instance = _load_instance_argument(args.instance, args.seed)
    print(instance.describe())
    offline = minimize_max_weighted_flow(instance).objective
    print(f"off-line optimal max weighted flow: {offline:.6g}")
    print()

    policy_names = available_schedulers() if args.all_policies else [args.policy]
    rows = []
    for name in policy_names:
        scheduler = make_scheduler(name)
        result = simulate(instance, scheduler)
        metrics = result.metrics()
        rows.append(
            (
                scheduler.name,  # the canonical variant label, not the raw token
                metrics.max_weighted_flow,
                metrics.max_weighted_flow / offline,
                metrics.makespan,
                result.num_preemptions,
            )
        )
    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            ["policy", "max weighted flow", "vs optimum", "makespan", "preemptions"],
            rows,
            float_format=".4g",
        )
    )
    return 0


def _split_policy_tokens(text: str) -> list:
    """Split a --policies list, keeping multi-parameter variants together.

    A comma normally separates policies, but inside a variant token it
    separates parameters: a ``key=value`` segment without a ``:`` of its own
    continues the previous token (policy names never contain ``=``), so
    ``"online-offline:period=2,relative_precision=1e-2,mct"`` yields the
    variant and ``mct``.
    """
    tokens: list = []
    for piece in text.split(","):
        if tokens and "=" in piece and ":" not in piece:
            tokens[-1] += "," + piece
        elif piece:
            tokens.append(piece)
    return tokens


def _cmd_campaign(args: argparse.Namespace) -> int:
    scenarios = args.scenarios.split(",") if args.scenarios else None
    if args.policies == "all":
        policies = available_schedulers()
    else:
        policies = _split_policy_tokens(args.policies)
    for name in policies:
        # Fail fast on unknown names/parameters, before any dispatch.
        try:
            resolve_policy_variant(name)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    seeds = None
    if args.seeds:
        try:
            seeds = tuple(int(seed) for seed in args.seeds.split(","))
        except ValueError:
            print(f"error: --seeds must be comma-separated integers, got {args.seeds!r}",
                  file=sys.stderr)
            return 1
    if args.num_seeds != 1 and args.base_seed is None:
        print("error: --num-seeds only applies to spawned seeding; pass --base-seed "
              "(or list the seeds explicitly with --seeds)", file=sys.stderr)
        return 1

    if args.resume and not args.store:
        print("error: --resume needs --store PATH to resume from", file=sys.stderr)
        return 1

    from .obs import PhaseProfiler, collecting, render_metrics, trace_campaign_records

    profiler = PhaseProfiler()
    snapshot = None
    with profiler.phase("campaign"):

        def run():
            return run_scenario_campaign(
                scenarios,
                policies,
                seeds=seeds
                if seeds is not None
                else ((None,) if args.base_seed is None else None),
                base_seed=args.base_seed,
                seeds_per_scenario=args.num_seeds,
                include_offline=not args.no_offline,
                max_workers=args.max_workers,
                chunk_size=args.chunk_size,
                store=args.store,
                resume=args.resume,
                run_label=args.run_label,
                journal=args.journal,
            )

        if args.metrics:
            with collecting() as recorder:
                result = run()
            snapshot = recorder.snapshot()
        else:
            result = run()

    print(result.as_table())
    stats = result.stats
    if stats is not None:
        print()
        print(
            f"{stats.workloads} workloads, {stats.records} records in "
            f"{stats.elapsed_seconds:.2f}s "
            f"({stats.scenarios_per_second:.2f} scenarios/s, "
            f"{stats.probe_constructions} probe constructions, "
            f"{stats.offline_solves} offline solves, "
            f"peak in-flight {stats.peak_in_flight})"
        )
        if args.store:
            print(
                f"store {args.store}: run #{stats.store_run_id}, "
                f"{stats.store_new_records} new cells, "
                f"{stats.resumed_records} resumed "
                f"(skip rate {stats.resume_skip_rate:.0%})"
            )
    if snapshot is not None:
        print()
        print(render_metrics(snapshot))
    if args.journal:
        print(f"journal appended to {args.journal}")
    if args.trace:
        with profiler.phase("trace"):
            tracer = trace_campaign_records(result.records)
            _write_trace(tracer, args.trace)
        print(f"trace written to {args.trace} ({len(tracer)} events)")
    if args.output:
        payload = {
            "records": [dataclasses.asdict(record) for record in result.records],
            "stats": stats.as_dict() if stats is not None else None,
        }
        if snapshot is not None:
            payload["metrics"] = snapshot
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"campaign written to {args.output}")
    if args.profile:
        print()
        print(profiler.render())
    return 0


def _write_trace(tracer, path: str) -> None:
    """Write a trace in the format the file name asks for.

    ``.json`` gets the Chrome trace-event export (Perfetto-loadable);
    anything else gets the byte-identity JSON-lines export.
    """
    if path.endswith(".json"):
        text = tracer.to_chrome() + "\n"
    else:
        text = tracer.to_jsonl()
    with open(path, "w") as handle:
        handle.write(text)


def _parse_rho_sweep(text: str) -> list:
    """Parse a --rho argument: 'start:stop:count' (inclusive) or comma values."""
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"--rho expects start:stop:count, got {text!r}")
        start, stop, count = float(parts[0]), float(parts[1]), int(parts[2])
        if count < 1:
            raise ValueError("--rho count must be at least 1")
        if count == 1:
            return [start]
        step = (stop - start) / (count - 1)
        return [start + index * step for index in range(count)]
    return [float(part) for part in text.split(",") if part]


def _cmd_stream(args: argparse.Namespace) -> int:
    from .analysis import run_stream_sweep
    from .obs import PhaseProfiler, Tracer, collecting, render_metrics
    from .workload import StreamSpec

    policies = _split_policy_tokens(args.policies)
    for name in policies:
        try:
            resolve_policy_variant(name)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    try:
        rhos = _parse_rho_sweep(args.rho)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.resume and not args.store:
        print("error: --resume needs --store PATH to resume from", file=sys.stderr)
        return 1

    max_workers = args.max_workers
    tracer = None
    if args.trace:
        tracer = Tracer()
        if max_workers is not None:
            print(
                "note: --trace builds traces from in-process result series; "
                "ignoring --max-workers",
                file=sys.stderr,
            )
            max_workers = None

    spec = StreamSpec(
        label=args.scenario,
        scenario=args.scenario,
        seed=args.seed,
        arrivals=args.arrival_process,
        sizes=args.sizes,
    )
    profiler = PhaseProfiler()
    snapshot = None
    with profiler.phase("sweep"):

        def run():
            return run_stream_sweep(
                spec,
                policies,
                rhos=rhos,
                max_arrivals=args.arrivals,
                warmup_fraction=args.warmup,
                num_batches=args.batches,
                max_active=args.max_active,
                max_workers=max_workers,
                store=args.store,
                resume=args.resume,
                run_label=args.run_label,
                collect_metrics=args.metrics,
                tracer=tracer,
                journal=args.journal,
            )

        if args.metrics:
            with collecting() as recorder:
                result = run()
            snapshot = recorder.snapshot()
        else:
            result = run()
    print(result.as_table())
    stats = result.stats
    if stats is not None:
        print()
        print(
            f"{stats.cells} cells ({stats.computed_cells} computed, "
            f"{stats.resumed_cells} resumed, skip rate {stats.resume_skip_rate:.0%}), "
            f"{stats.arrivals} arrivals in {stats.elapsed_seconds:.2f}s "
            f"({stats.arrivals_per_second:.0f} arrivals/s), "
            f"{stats.saturated_cells} saturated cell(s)"
        )
        if args.store:
            print(f"store {args.store}: run #{stats.store_run_id}")
    if snapshot is not None:
        print()
        print(render_metrics(snapshot))
    if args.journal:
        print(f"journal appended to {args.journal}")
    if tracer is not None:
        _write_trace(tracer, args.trace)
        print(f"trace written to {args.trace} ({len(tracer)} events)")
    if args.output:
        cells = []
        for record in result.records:
            cell = {
                "workload": record.workload,
                "policy": record.policy,
                "rho": record.rho,
                "report": record.report.as_dict(),
            }
            if record.metrics is not None:
                cell["metrics"] = record.metrics
            cells.append(cell)
        payload = {
            "cells": cells,
            "stats": stats.as_dict() if stats is not None else None,
        }
        if snapshot is not None:
            payload["metrics"] = snapshot
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"sweep written to {args.output}")
    if args.profile:
        print()
        print(profiler.render())
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .analysis import render_cell_diff
    from .store import ExperimentStore, diff_run_cells, diff_runs

    with ExperimentStore(args.path, create=False) as store:
        if args.store_command == "gc":
            report = store.gc(
                epoch=args.epoch,
                older_than_days=args.older_than,
                dry_run=not args.apply,
            )
            mode = "dry-run (pass --apply to delete)" if report.dry_run else "applied"
            print(f"store gc on {args.path}: {mode}")
            if report.empty:
                print("nothing to prune: every record is current-epoch and "
                      "every run completed")
                return 0
            for epoch, count in sorted(report.stale_by_epoch.items()):
                print(f"  stale epoch {epoch!r}: {count} record(s)")
            if report.incomplete_runs:
                runs = ", ".join(f"#{run_id}" for run_id in report.incomplete_runs)
                print(f"  incomplete run(s): {runs}")
            print(f"  membership rows affected: {report.membership_rows}")
            if not report.dry_run:
                print("  pruned and vacuumed")
            return 0

        if args.store_command == "ls":
            rows = [
                (
                    run.run_id,
                    run.label,
                    run.created_at,
                    "yes" if run.completed else "no",
                    run.num_records,
                )
                for run in store.runs()
            ]
            print(
                format_table(
                    ["run", "label", "created", "completed", "records"],
                    rows,
                    title=f"Runs in {args.path} ({store.num_records()} distinct cells)",
                )
            )
            return 0

        if args.store_command == "show":
            run_id = store.resolve_run(args.run)
            info = next(run for run in store.runs() if run.run_id == run_id)
            print(
                f"run #{info.run_id} {info.label!r}, created {info.created_at}, "
                f"{'completed' if info.completed else 'INCOMPLETE'}, "
                f"{info.num_records} records"
            )
            metrics = store.headline_metrics(run_id)
            if metrics:
                rows = [
                    (policy, metric, value)
                    for policy, per_metric in sorted(metrics.items())
                    for metric, value in sorted(per_metric.items())
                ]
                print(
                    format_table(
                        ["policy", "metric", "value"],
                        rows,
                        title="Headline metrics",
                        float_format=".6g",
                    )
                )
            if args.records:
                rows = [
                    (
                        record.workload,
                        record.policy,
                        record.max_weighted_flow,
                        record.normalised,
                        record.preemptions,
                        record.digest[:12],
                    )
                    for record in store.run_records(run_id)
                ]
                print(
                    format_table(
                        ["workload", "policy", "max w-flow", "vs optimum", "preempt", "digest"],
                        rows,
                        title="Records (emission order)",
                        float_format=".4g",
                    )
                )
            return 0

        # diff
        diff = diff_runs(store, args.baseline, args.current)
        print(render_cross_run_diff(diff, tolerance=args.tolerance))
        regressed = bool(diff.regressions(args.tolerance))
        if args.cells:
            cells = diff_run_cells(store, args.baseline, args.current)
            print()
            print(render_cell_diff(cells, tolerance=args.tolerance))
            regressed = regressed or bool(cells.regressions(args.tolerance))
        if args.fail_on_regression and regressed:
            return 1
        return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .lint import (
        available_rules,
        find_project_root,
        rule_spec,
        run_lint,
        run_typecheck,
    )

    if args.list_rules:
        for name in available_rules():
            spec = rule_spec(name)
            print(f"{name:22s} {spec.severity:8s} [{spec.scope}] {spec.description}")
        return 0

    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
        for name in rules:
            rule_spec(name)  # fail fast on unknown rule names
    root = find_project_root()
    report = run_lint(
        root,
        paths=[Path(path) for path in args.paths] or None,
        rules=rules,
        baseline_path=Path(args.baseline) if args.baseline else None,
        diff_range=args.diff_range,
    )
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(show_baselined=args.show_baselined))

    exit_code = 0
    if args.fail_on != "never" and report.failed(args.fail_on):
        exit_code = 1

    if args.types:
        result = run_typecheck(root)
        print()
        print(result.output or "mypy: no output")
        if result.available and result.returncode != 0:
            exit_code = 1
    return exit_code


def _load_obs_artefact(path: str):
    """Load an obs artefact file: ``(json_value, None)`` or ``(None, events)``.

    A whole-file JSON document comes back as the first element; a
    JSON-lines artefact (a trace, a run journal, or a single trace event,
    which is both) comes back as a list of event dicts in the second.
    Unparseable lines are tolerated — a crash-truncated journal tail is a
    skipped line, not a rendering failure — but a file with *no* parseable
    line is still an error.
    """
    with open(path) as handle:
        text = handle.read()
    stripped = text.strip()
    if not stripped:
        raise ReproError(f"{path} is empty")
    try:
        value = json.loads(stripped)
    except json.JSONDecodeError:
        value = None
    if value is not None and not (isinstance(value, dict) and "ph" in value):
        return value, None
    events = []
    for line in stripped.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a killed writer
        if isinstance(event, dict):
            events.append(event)
    if not events:
        raise ReproError(f"{path}: no parseable JSON lines")
    return None, events


def _render_trace_summary(events, *, source: str, chrome: bool = False) -> str:
    """Per-track event counts and simulated time span of a trace file."""
    thread_names: dict = {}
    per_track: dict = {}
    total = 0
    for event in events:
        phase = event.get("ph")
        if chrome and phase == "M":
            if event.get("name") == "thread_name":
                thread_names[event.get("tid")] = event.get("args", {}).get("name")
            continue
        total += 1
        if chrome:
            time = float(event.get("ts", 0.0)) / 1e6
            duration = float(event.get("dur", 0.0)) / 1e6
            track = thread_names.get(event.get("tid"), f"tid-{event.get('tid')}")
        else:
            time = float(event.get("time", 0.0))
            duration = float(event.get("duration", 0.0))
            track = event.get("track", "main")
        stats = per_track.get(track)
        if stats is None:
            stats = per_track[track] = {
                "X": 0, "I": 0, "C": 0,
                "start": float("inf"), "end": float("-inf"),
            }
        stats[phase] = stats.get(phase, 0) + 1
        stats["start"] = min(stats["start"], time)
        stats["end"] = max(stats["end"], time + (duration if phase == "X" else 0.0))
    rows = [
        (track, stats["X"], stats["I"], stats["C"], stats["start"], stats["end"])
        for track, stats in per_track.items()
    ]
    form = "Chrome trace-event" if chrome else "JSON-lines"
    header = f"trace {source}: {total} event(s) on {len(per_track)} track(s) ({form})"
    table = format_table(
        ["track", "spans", "instants", "counters", "t0 [s]", "t1 [s]"],
        rows,
        float_format=".4g",
    )
    return header + "\n\n" + table


def _render_sweep_report(data, *, trajectories: bool = False) -> int:
    """Render a ``stream --output`` JSON: the MSER-5 evidence per cell."""
    from .analysis import ascii_series
    from .obs import render_metrics

    cells = data.get("cells", [])
    rows = []
    for cell in cells:
        report = cell.get("report", {})
        trajectory = report.get("occupancy_trajectory") or []
        truncation = report.get("mser_truncation")
        rows.append(
            (
                cell.get("workload", "?"),
                cell.get("policy", "?"),
                report.get("mean_stretch", {}).get("mean", float("nan")),
                report.get("utilisation", float("nan")),
                "SATURATED" if report.get("saturated") else "ok",
                "-" if truncation is None else f"{truncation}/{len(trajectory)}",
                f"{trajectory[0]:.1f}->{trajectory[-1]:.1f}" if trajectory else "-",
                "yes" if cell.get("metrics") else "-",
            )
        )
    print(
        format_table(
            ["workload", "policy", "mean stretch", "util", "state",
             "MSER-5 cut", "occupancy", "obs"],
            rows,
            title="Stream sweep report (MSER-5 saturation evidence per cell)",
            float_format=".3f",
        )
    )
    stats = data.get("stats")
    if stats:
        print()
        print(
            f"{stats.get('cells', 0)} cells, {stats.get('arrivals', 0)} arrivals, "
            f"{stats.get('saturated_cells', 0)} saturated, "
            f"{stats.get('elapsed_seconds', 0.0):.2f}s"
        )
    if trajectories:
        for cell in cells:
            report = cell.get("report", {})
            trajectory = report.get("occupancy_trajectory") or []
            if len(trajectory) < 2:
                continue
            print()
            print(
                ascii_series(
                    range(len(trajectory)),
                    {"occupancy": trajectory},
                    title=f"{cell.get('workload', '?')} {cell.get('policy', '?')}: "
                    f"queue-occupancy batch means (MSER-5 scan evidence)",
                    x_label="batch",
                    height=12,
                )
            )
    snapshot = data.get("metrics")
    if snapshot:
        print()
        print(render_metrics(snapshot))
    return 0


def _render_campaign_report(data) -> int:
    """Render a ``campaign --output`` JSON: records plus any obs snapshot."""
    from .obs import render_metrics

    rows = [
        (
            record.get("workload", "?"),
            record.get("policy", "?"),
            record.get("max_weighted_flow", float("nan")),
            record.get("normalised", float("nan")),
            record.get("makespan", float("nan")),
            record.get("preemptions", 0),
        )
        for record in data.get("records", [])
    ]
    print(
        format_table(
            ["workload", "policy", "max w-flow", "vs optimum", "makespan", "preempt"],
            rows,
            title="Campaign report",
            float_format=".4g",
        )
    )
    stats = data.get("stats")
    if stats:
        print()
        print(
            f"{stats.get('workloads', 0)} workloads, {stats.get('records', 0)} "
            f"records, {stats.get('elapsed_seconds', 0.0):.2f}s"
        )
    snapshot = data.get("metrics")
    if snapshot:
        print()
        print(render_metrics(snapshot))
    return 0


def _render_journal_report(events, *, source: str) -> int:
    """Render a run journal: lifecycle timeline, phase totals, heartbeat gaps.

    Phases live on the journal clock: *planning* spans run start to the
    first dispatch, *compute* the first dispatch to the last completion,
    *finalise* the last completion to the run-finished event.
    """
    from .obs import analyse_journal, render_fleet_status

    runs: dict = {}
    for event in events:
        runs.setdefault(str(event.get("run", "?")), []).append(event)
    print(f"journal {source}: {len(events)} event(s), {len(runs)} run(s)")
    for run, run_events in runs.items():
        counts: dict = {}
        for event in run_events:
            name = str(event.get("event", "?"))
            counts[name] = counts.get(name, 0) + 1
        stamps = [
            float(e["ts"]) for e in run_events if isinstance(e.get("ts"), (int, float))
        ]
        span = (max(stamps) - min(stamps)) if stamps else 0.0
        print()
        timeline = ", ".join(f"{name} x{counts[name]}" for name in sorted(counts))
        print(f"run {run}: {timeline} over {span:.2f}s")

        def _times(name: str) -> list:
            return [
                float(e["ts"])
                for e in run_events
                if e.get("event") == name and isinstance(e.get("ts"), (int, float))
            ]

        started = _times("run-started")
        dispatches = _times("cell-dispatched")
        completions = _times("cell-completed")
        finished = _times("run-finished")
        rows = []
        if started and dispatches:
            rows.append(("planning", min(dispatches) - started[0]))
        if dispatches and completions:
            rows.append(("compute", max(completions) - min(dispatches)))
        if completions and finished:
            rows.append(("finalise", finished[0] - max(completions)))
        if rows:
            print(format_table(["phase", "wall-clock [s]"], rows, float_format=".3f"))

        beats: dict = {}
        for event in run_events:
            if event.get("event") != "worker-heartbeat":
                continue
            if isinstance(event.get("ts"), (int, float)):
                beats.setdefault(str(event.get("worker", "?")), []).append(
                    float(event["ts"])
                )
        if beats:
            rows = []
            for worker in sorted(beats):
                series = sorted(beats[worker])
                gaps = [b - a for a, b in zip(series, series[1:])]
                rows.append((worker, len(series), max(gaps) if gaps else 0.0))
            print(
                format_table(
                    ["worker", "heartbeats", "max gap [s]"],
                    rows,
                    title="Heartbeat gaps",
                    float_format=".3f",
                )
            )
        print(render_fleet_status(analyse_journal(run_events, run=run)))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from .obs import render_prometheus

    value, events = _load_obs_artefact(args.path)
    snapshot = None
    if isinstance(value, dict):
        if {"counters", "gauges", "histograms"} <= value.keys():
            snapshot = value
        elif isinstance(value.get("metrics"), dict):
            snapshot = value["metrics"]  # sweep/campaign --output carrier
    if snapshot is None:
        raise ReproError(
            f"{args.path}: no metrics snapshot to export (expected a snapshot "
            "JSON or a sweep/campaign --output JSON with a 'metrics' key)"
        )
    text = render_prometheus(snapshot, fmt=args.export_format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"exposition written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import render_metrics

    if args.obs_command == "export":
        return _cmd_obs_export(args)

    value, events = _load_obs_artefact(args.path)
    if events is not None:
        if events and "event" in events[0]:
            return _render_journal_report(events, source=args.path)
        print(_render_trace_summary(events, source=args.path))
        return 0
    if isinstance(value, dict) and "traceEvents" in value:
        print(_render_trace_summary(value["traceEvents"], source=args.path, chrome=True))
        return 0
    if isinstance(value, dict) and {"counters", "gauges", "histograms"} <= value.keys():
        print(render_metrics(value))
        return 0
    if isinstance(value, dict) and "cells" in value:
        return _render_sweep_report(value, trajectories=args.trajectories)
    if isinstance(value, dict) and "records" in value:
        return _render_campaign_report(value)
    raise ReproError(
        f"{args.path}: unrecognised observability artefact (expected a metrics "
        "snapshot, a trace in either export format, a run journal, or a "
        "stream/campaign --output JSON)"
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    from .obs import watch_journal

    status = watch_journal(
        args.journal,
        interval=args.interval,
        max_updates=1 if args.once else args.updates,
        stall_factor=args.stall_factor,
    )
    if status.started_ts is None:
        print(f"note: {args.journal} has no run-started event yet", file=sys.stderr)
    return 0


def _cmd_divisibility(args: argparse.Namespace) -> int:
    if args.dimension == "sequences":
        study = sequence_divisibility_experiment(repetitions=args.repetitions)
        paper_overhead = 1.1
    else:
        study = motif_divisibility_experiment(repetitions=args.repetitions)
        paper_overhead = 10.5
    fit = linear_regression(*study.as_arrays())
    print(
        format_table(
            [f"{args.dimension} block size", "mean time [s]"],
            list(zip(study.block_sizes(), study.mean_times())),
            title=f"Divisibility study ({args.dimension})",
            float_format=".2f",
        )
    )
    print()
    print(f"linear fit: {fit.summary()}")
    print(f"fixed overhead: {fit.intercept:.2f} s (paper: {paper_overhead} s)")
    return 0


# --------------------------------------------------------------------------- #
# Entry point                                                                  #
# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "obs":
            return _cmd_obs(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "divisibility":
            return _cmd_divisibility(args)
    except (ReproError, FileNotFoundError, json.JSONDecodeError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises SystemExit


def _script_entry() -> None:  # pragma: no cover - exercised via console script only
    sys.exit(main())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
