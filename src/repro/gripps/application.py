"""The GriPPS application simulator and the divisibility experiments of Section 2.

This module is the reproduction's stand-in for the real GriPPS deployment:

* :class:`GrippsApplication` runs *virtual* requests (times produced by the
  calibrated :class:`~repro.gripps.cost_model.GrippsCostModel`) or *real*
  requests (the scanning engine of :mod:`repro.gripps.matching` on a synthetic
  databank, timed with a wall clock);
* :func:`sequence_divisibility_experiment` and
  :func:`motif_divisibility_experiment` reproduce the measurement protocols of
  Figure 1(a) and Figure 1(b): a series of block sizes, ten repetitions per
  size with randomly drawn subsets, one (virtual) timing per repetition;
* :func:`communication_study` reproduces the paper's final Section 2
  observation that transferring the motif set and the result report is
  negligible compared to the computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import WorkloadError
from ..obs.clock import wall_clock
from .cost_model import REFERENCE_MODEL, GrippsCostModel
from .matching import ScanReport, scan_databank
from .motifs import MotifSet
from .sequences import SequenceDatabank

__all__ = [
    "DivisibilityMeasurement",
    "DivisibilityStudy",
    "GrippsApplication",
    "sequence_divisibility_experiment",
    "motif_divisibility_experiment",
    "communication_study",
    "CommunicationStudy",
]


@dataclass(frozen=True)
class DivisibilityMeasurement:
    """One timed request of the divisibility studies."""

    block_size: int
    repetition: int
    elapsed_seconds: float


@dataclass
class DivisibilityStudy:
    """A complete divisibility study (all block sizes, all repetitions).

    Attributes
    ----------
    dimension:
        ``"sequences"`` (Figure 1(a)) or ``"motifs"`` (Figure 1(b)).
    measurements:
        The individual timings.
    """

    dimension: str
    measurements: List[DivisibilityMeasurement] = field(default_factory=list)

    def block_sizes(self) -> List[int]:
        """The distinct block sizes, in increasing order."""
        return sorted({m.block_size for m in self.measurements})

    def times_for(self, block_size: int) -> List[float]:
        """All timings measured for one block size."""
        return [m.elapsed_seconds for m in self.measurements if m.block_size == block_size]

    def mean_times(self) -> List[float]:
        """Mean timing per block size (aligned with :meth:`block_sizes`)."""
        return [float(np.mean(self.times_for(size))) for size in self.block_sizes()]

    def as_arrays(self):
        """Return ``(sizes, times)`` arrays with one row per measurement."""
        sizes = np.array([m.block_size for m in self.measurements], dtype=float)
        times = np.array([m.elapsed_seconds for m in self.measurements], dtype=float)
        return sizes, times


class GrippsApplication:
    """A GriPPS comparison server: accepts a motif set and a databank block.

    Parameters
    ----------
    cost_model:
        The calibrated execution-time model (defaults to the paper's).
    speed_factor:
        Machine heterogeneity factor (1.0 = the paper's reference machine).
    noise_sigma:
        Multiplicative measurement noise for virtual runs.
    seed:
        RNG seed for the noise.
    """

    def __init__(
        self,
        cost_model: GrippsCostModel = REFERENCE_MODEL,
        speed_factor: float = 1.0,
        noise_sigma: float = 0.01,
        seed: Optional[int] = None,
    ) -> None:
        if speed_factor <= 0:
            raise WorkloadError(f"speed_factor must be positive, got {speed_factor}")
        self.cost_model = cost_model.with_noise(noise_sigma)
        self.speed_factor = speed_factor
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def run_virtual(self, num_motifs: int, num_sequences: int) -> float:
        """Return the (noisy) virtual execution time of a request."""
        return self.cost_model.measured_time(
            num_motifs, num_sequences, speed_factor=self.speed_factor, rng=self._rng
        )

    def run_real(self, motifs: MotifSet, databank: SequenceDatabank):
        """Actually scan the databank and return ``(wall_clock_seconds, ScanReport)``.

        Only used by examples and tests on small databanks; the Figure 1
        benches use the calibrated virtual timings.
        """
        start = wall_clock()
        report: ScanReport = scan_databank(motifs, databank)
        elapsed = wall_clock() - start
        return elapsed, report


# --------------------------------------------------------------------------- #
# Figure 1 experimental protocols                                              #
# --------------------------------------------------------------------------- #
def sequence_divisibility_experiment(
    application: Optional[GrippsApplication] = None,
    block_sizes: Optional[Sequence[int]] = None,
    repetitions: int = 10,
    num_motifs: int = 300,
    seed: Optional[int] = 20050404,
) -> DivisibilityStudy:
    """Reproduce the protocol of Figure 1(a): time vs. sequence block size.

    The paper uses a fixed set of ~300 motifs, a databank of ~38 000
    sequences, block sizes from 1/20 of the databank up to the full databank,
    and ten repetitions per block size with randomly drawn subsets.
    """
    if application is None:
        application = GrippsApplication(seed=seed)
    full = application.cost_model.reference_sequences
    if block_sizes is None:
        step = full // 20
        block_sizes = [step * k for k in range(1, 21)]
    study = DivisibilityStudy(dimension="sequences")
    for size in block_sizes:
        for repetition in range(repetitions):
            elapsed = application.run_virtual(num_motifs=num_motifs, num_sequences=int(size))
            study.measurements.append(
                DivisibilityMeasurement(
                    block_size=int(size), repetition=repetition, elapsed_seconds=elapsed
                )
            )
    return study


def motif_divisibility_experiment(
    application: Optional[GrippsApplication] = None,
    subset_sizes: Optional[Sequence[int]] = None,
    repetitions: int = 10,
    num_sequences: int = 38_000,
    seed: Optional[int] = 20050405,
) -> DivisibilityStudy:
    """Reproduce the protocol of Figure 1(b): time vs. motif subset size."""
    if application is None:
        application = GrippsApplication(seed=seed)
    full = application.cost_model.reference_motifs
    if subset_sizes is None:
        step = max(full // 20, 1)
        subset_sizes = [step * k for k in range(1, 21)]
    study = DivisibilityStudy(dimension="motifs")
    for size in subset_sizes:
        for repetition in range(repetitions):
            elapsed = application.run_virtual(num_motifs=int(size), num_sequences=num_sequences)
            study.measurements.append(
                DivisibilityMeasurement(
                    block_size=int(size), repetition=repetition, elapsed_seconds=elapsed
                )
            )
    return study


# --------------------------------------------------------------------------- #
# Communication study (Section 2, last paragraph)                              #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CommunicationStudy:
    """Estimated communication costs of a request versus its computation time."""

    motif_transfer_seconds: float
    result_transfer_seconds: float
    computation_seconds: float

    @property
    def total_communication_seconds(self) -> float:
        """Motif upload plus result download."""
        return self.motif_transfer_seconds + self.result_transfer_seconds

    @property
    def communication_ratio(self) -> float:
        """Communication time as a fraction of computation time."""
        return self.total_communication_seconds / self.computation_seconds


def communication_study(
    num_motifs: int = 300,
    num_sequences: int = 38_000,
    motif_bytes: float = 64.0,
    matches_per_request: int = 5_000,
    match_record_bytes: float = 48.0,
    bandwidth_mbps: float = 100.0,
    latency_seconds: float = 1e-3,
    cost_model: GrippsCostModel = REFERENCE_MODEL,
) -> CommunicationStudy:
    """Estimate transfer vs. computation time on a typical cluster interconnect.

    Defaults model a 100 Mbit/s switched Ethernet (the typical 2004-era
    cluster fabric), ~64 bytes per motif and ~48 bytes per reported match.
    The point of the study is qualitative and matches the paper: the ratio is
    a fraction of a percent, so data transfer can be neglected.
    """
    bytes_per_second = bandwidth_mbps * 1e6 / 8.0
    motif_transfer = latency_seconds + num_motifs * motif_bytes / bytes_per_second
    result_transfer = latency_seconds + matches_per_request * match_record_bytes / bytes_per_second
    computation = cost_model.expected_time(num_motifs, num_sequences)
    return CommunicationStudy(
        motif_transfer_seconds=motif_transfer,
        result_transfer_seconds=result_transfer,
        computation_seconds=computation,
    )
