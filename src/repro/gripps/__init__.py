"""Synthetic GriPPS application (substrate S9).

The paper's Section 2 characterises the GriPPS protein-motif comparison
application: databanks, motifs, comparison servers, and the two divisibility
experiments of Figure 1.  This subpackage rebuilds all of it from scratch:

* synthetic protein databanks (:mod:`repro.gripps.sequences`),
* PROSITE-like motifs (:mod:`repro.gripps.motifs`),
* an actual motif-scanning engine (:mod:`repro.gripps.matching`),
* the calibrated execution-time model (:mod:`repro.gripps.cost_model`),
* the Figure 1 experimental protocols and the communication study
  (:mod:`repro.gripps.application`),
* platform / request-stream generation for the scheduling experiments
  (:mod:`repro.gripps.platform_gen`).
"""

from .application import (
    CommunicationStudy,
    DivisibilityMeasurement,
    DivisibilityStudy,
    GrippsApplication,
    communication_study,
    motif_divisibility_experiment,
    sequence_divisibility_experiment,
)
from .cost_model import REFERENCE_MODEL, GrippsCostModel
from .fasta import format_fasta, parse_fasta, read_fasta, write_fasta
from .matching import MotifMatch, ScanReport, scan_databank, scan_sequence
from .motifs import Motif, MotifElement, MotifSet
from .platform_gen import (
    DEFAULT_DATABANKS,
    DatabankSpec,
    make_gripps_instance,
    make_gripps_platform,
    make_request_stream,
)
from .sequences import AMINO_ACIDS, SequenceDatabank, SequenceRecord

__all__ = [
    "AMINO_ACIDS",
    "CommunicationStudy",
    "DEFAULT_DATABANKS",
    "DatabankSpec",
    "DivisibilityMeasurement",
    "DivisibilityStudy",
    "GrippsApplication",
    "GrippsCostModel",
    "Motif",
    "MotifElement",
    "MotifMatch",
    "MotifSet",
    "REFERENCE_MODEL",
    "ScanReport",
    "SequenceDatabank",
    "SequenceRecord",
    "communication_study",
    "format_fasta",
    "make_gripps_instance",
    "make_gripps_platform",
    "make_request_stream",
    "motif_divisibility_experiment",
    "parse_fasta",
    "read_fasta",
    "scan_databank",
    "scan_sequence",
    "sequence_divisibility_experiment",
    "write_fasta",
]
