"""Synthetic protein sequence databanks.

The paper's Section 2 experiments run the real GriPPS code against a real
databank of roughly 38 000 protein sequences.  That databank is not
available, so this module generates synthetic amino-acid sequences with
realistic length statistics (log-normal around ~350 residues, the typical
mean protein length in curated databanks) and composition (frequencies close
to the Swiss-Prot background distribution).  The divisibility experiments
only rely on the *amount* of data per block, which the synthetic databank
reproduces faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import WorkloadError

__all__ = ["AMINO_ACIDS", "BACKGROUND_FREQUENCIES", "SequenceRecord", "SequenceDatabank"]

#: The twenty standard amino acids (one-letter codes).
AMINO_ACIDS: str = "ACDEFGHIKLMNPQRSTVWY"

#: Approximate background frequencies of the twenty amino acids in curated
#: protein databanks (Swiss-Prot composition statistics, rounded).  They only
#: need to be plausible: the scanning engine and the cost model treat all
#: residues alike.
BACKGROUND_FREQUENCIES: Dict[str, float] = {
    "A": 0.0826, "C": 0.0137, "D": 0.0546, "E": 0.0672, "F": 0.0386,
    "G": 0.0708, "H": 0.0227, "I": 0.0593, "K": 0.0580, "L": 0.0965,
    "M": 0.0241, "N": 0.0406, "P": 0.0472, "Q": 0.0393, "R": 0.0553,
    "S": 0.0660, "T": 0.0535, "V": 0.0687, "W": 0.0110, "Y": 0.0292,
}


@dataclass(frozen=True)
class SequenceRecord:
    """One protein sequence with its identifier."""

    identifier: str
    sequence: str

    @property
    def length(self) -> int:
        """Number of residues."""
        return len(self.sequence)


@dataclass
class SequenceDatabank:
    """An in-memory protein databank.

    Attributes
    ----------
    name:
        Databank name (e.g. ``"sprot-synthetic"``).
    records:
        The sequences.
    """

    name: str
    records: List[SequenceRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Generation                                                          #
    # ------------------------------------------------------------------ #
    @staticmethod
    def synthetic(
        name: str,
        num_sequences: int,
        mean_length: float = 350.0,
        length_sigma: float = 0.45,
        seed: Optional[int] = None,
    ) -> "SequenceDatabank":
        """Generate a synthetic databank.

        Parameters
        ----------
        name:
            Databank name.
        num_sequences:
            Number of sequences to generate.
        mean_length:
            Mean protein length in residues.
        length_sigma:
            Log-normal shape parameter for the length distribution.
        seed:
            RNG seed for reproducibility.
        """
        if num_sequences <= 0:
            raise WorkloadError(f"num_sequences must be positive, got {num_sequences}")
        rng = np.random.default_rng(seed)
        letters = np.array(list(BACKGROUND_FREQUENCIES.keys()))
        probabilities = np.array(list(BACKGROUND_FREQUENCIES.values()))
        probabilities = probabilities / probabilities.sum()

        mu = np.log(mean_length) - 0.5 * length_sigma**2
        lengths = np.maximum(
            30, rng.lognormal(mean=mu, sigma=length_sigma, size=num_sequences).astype(int)
        )
        records = []
        for index, length in enumerate(lengths):
            residues = rng.choice(letters, size=int(length), p=probabilities)
            records.append(
                SequenceRecord(identifier=f"{name}|seq{index:06d}", sequence="".join(residues))
            )
        return SequenceDatabank(name=name, records=records)

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> SequenceRecord:
        return self.records[index]

    @property
    def total_residues(self) -> int:
        """Total number of residues across all sequences."""
        return sum(record.length for record in self.records)

    @property
    def mean_length(self) -> float:
        """Mean sequence length."""
        if not self.records:
            return 0.0
        return self.total_residues / len(self.records)

    # ------------------------------------------------------------------ #
    # Partitioning (the heart of the divisibility experiments)            #
    # ------------------------------------------------------------------ #
    def block(self, start: int, size: int) -> "SequenceDatabank":
        """Return the contiguous block ``records[start : start + size]``."""
        if size <= 0:
            raise WorkloadError(f"block size must be positive, got {size}")
        subset = self.records[start : start + size]
        return SequenceDatabank(name=f"{self.name}[{start}:{start + size}]", records=list(subset))

    def partition(self, num_blocks: int) -> List["SequenceDatabank"]:
        """Split the databank into ``num_blocks`` near-equal contiguous blocks."""
        if num_blocks <= 0:
            raise WorkloadError(f"num_blocks must be positive, got {num_blocks}")
        if num_blocks > len(self.records):
            raise WorkloadError(
                f"cannot split {len(self.records)} sequences into {num_blocks} blocks"
            )
        boundaries = np.linspace(0, len(self.records), num_blocks + 1).astype(int)
        blocks = []
        for k in range(num_blocks):
            start, end = int(boundaries[k]), int(boundaries[k + 1])
            blocks.append(
                SequenceDatabank(
                    name=f"{self.name}#part{k}", records=list(self.records[start:end])
                )
            )
        return blocks

    def sample(self, size: int, seed: Optional[int] = None) -> "SequenceDatabank":
        """Return a random subset of ``size`` sequences (without replacement).

        This mirrors the paper's protocol for Figure 1(a): block sizes are
        drawn randomly from the full databank for each repetition.
        """
        if size <= 0 or size > len(self.records):
            raise WorkloadError(
                f"sample size must be in [1, {len(self.records)}], got {size}"
            )
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(self.records), size=size, replace=False)
        return SequenceDatabank(
            name=f"{self.name}#sample{size}",
            records=[self.records[i] for i in sorted(indices)],
        )

    def concatenate(self, other: "SequenceDatabank", name: Optional[str] = None) -> "SequenceDatabank":
        """Return the union of two databanks."""
        return SequenceDatabank(
            name=name or f"{self.name}+{other.name}",
            records=list(self.records) + list(other.records),
        )

    def statistics(self) -> Dict[str, float]:
        """Return summary statistics used by the examples."""
        lengths = np.array([record.length for record in self.records], dtype=float)
        return {
            "num_sequences": float(len(self.records)),
            "total_residues": float(lengths.sum()),
            "mean_length": float(lengths.mean()) if len(lengths) else 0.0,
            "min_length": float(lengths.min()) if len(lengths) else 0.0,
            "max_length": float(lengths.max()) if len(lengths) else 0.0,
        }
