"""FASTA import/export for protein databanks.

Real deployments store protein databanks as FASTA files; supporting the
format lets a downstream user plug their own databank into the divisibility
experiments and the platform generators.  The parser is deliberately strict
about structure (a record must have a header and at least one sequence line)
but forgiving about formatting details (wrapped lines, blank lines, ``*``
terminators, lower-case residues).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..exceptions import WorkloadError
from .sequences import SequenceDatabank, SequenceRecord

__all__ = ["parse_fasta", "format_fasta", "read_fasta", "write_fasta"]

PathLike = Union[str, Path]

#: Default line width used when writing sequences.
_WRAP = 60


def parse_fasta(text: str, name: str = "fasta") -> SequenceDatabank:
    """Parse FASTA-formatted text into a :class:`SequenceDatabank`.

    Raises
    ------
    WorkloadError
        If the text contains no record, sequence data appears before the
        first header, or a record has an empty sequence.
    """
    records: List[SequenceRecord] = []
    identifier: Union[str, None] = None
    chunks: List[str] = []

    def flush() -> None:
        if identifier is None:
            return
        sequence = "".join(chunks).replace("*", "").upper()
        if not sequence:
            raise WorkloadError(f"FASTA record {identifier!r} has an empty sequence")
        records.append(SequenceRecord(identifier=identifier, sequence=sequence))

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            identifier = line[1:].split()[0] if len(line) > 1 and line[1:].split() else ""
            if not identifier:
                raise WorkloadError(f"line {line_number}: FASTA header without an identifier")
            chunks = []
        else:
            if identifier is None:
                raise WorkloadError(
                    f"line {line_number}: sequence data before the first '>' header"
                )
            if not all(ch.isalpha() or ch == "*" for ch in line):
                raise WorkloadError(
                    f"line {line_number}: invalid characters in sequence data: {line!r}"
                )
            chunks.append(line)
    flush()

    if not records:
        raise WorkloadError("no FASTA records found")
    return SequenceDatabank(name=name, records=records)


def format_fasta(databank: Union[SequenceDatabank, Iterable[SequenceRecord]], wrap: int = _WRAP) -> str:
    """Render a databank (or any iterable of records) as FASTA text."""
    if wrap <= 0:
        raise WorkloadError("wrap width must be positive")
    records: Iterator[SequenceRecord] = iter(databank)  # type: ignore[arg-type]
    lines: List[str] = []
    for record in records:
        lines.append(f">{record.identifier}")
        sequence = record.sequence
        for start in range(0, len(sequence), wrap):
            lines.append(sequence[start : start + wrap])
    return "\n".join(lines) + "\n"


def read_fasta(path: PathLike, name: Union[str, None] = None) -> SequenceDatabank:
    """Read a FASTA file into a databank (named after the file by default)."""
    path = Path(path)
    return parse_fasta(path.read_text(), name=name or path.stem)


def write_fasta(databank: SequenceDatabank, path: PathLike, wrap: int = _WRAP) -> Tuple[int, int]:
    """Write a databank to a FASTA file; returns ``(num_records, num_residues)``."""
    path = Path(path)
    path.write_text(format_fasta(databank, wrap=wrap))
    return len(databank), databank.total_residues
