"""Generation of GriPPS-like platforms and request streams.

Section 3 of the paper models the deployment as a heterogeneous collection of
comparison servers, each co-located with some protein databanks; a request
can only run where its databank is replicated.  This module builds such
platforms and converts streams of motif-comparison requests into scheduling
:class:`~repro.core.instance.Instance` objects (the
uniform-machines-with-restricted-availabilities model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..core.machine import Machine, Platform
from ..exceptions import WorkloadError
from .cost_model import REFERENCE_MODEL, GrippsCostModel

__all__ = ["DatabankSpec", "make_gripps_platform", "make_request_stream", "make_gripps_instance"]


@dataclass(frozen=True)
class DatabankSpec:
    """Static description of a databank available in the deployment.

    Attributes
    ----------
    name:
        Databank name (e.g. ``"sprot"``, ``"trembl"``, ``"pdb-seqres"``).
    num_sequences:
        Number of protein sequences it contains.
    popularity:
        Relative probability that a request targets this databank.
    """

    name: str
    num_sequences: int
    popularity: float = 1.0


#: A plausible set of databanks for examples and benches (sizes loosely modelled
#: on the public protein databanks of the paper's era).
DEFAULT_DATABANKS: Sequence[DatabankSpec] = (
    DatabankSpec("sprot", 38_000, popularity=4.0),
    DatabankSpec("trembl", 120_000, popularity=2.0),
    DatabankSpec("pdb-seqres", 25_000, popularity=1.0),
    DatabankSpec("local-strains", 8_000, popularity=1.5),
)


def make_gripps_platform(
    num_machines: int,
    databanks: Sequence[DatabankSpec] = DEFAULT_DATABANKS,
    replication: float = 0.5,
    speed_range: tuple = (0.5, 2.0),
    seed: Optional[int] = None,
) -> Platform:
    """Build a heterogeneous platform with partially replicated databanks.

    Parameters
    ----------
    num_machines:
        Number of comparison servers.
    databanks:
        The databanks existing in the deployment.
    replication:
        Probability that a given machine hosts a given databank.  Every
        databank is guaranteed to be hosted somewhere (one machine is forced
        when the random draw leaves it unhosted).
    speed_range:
        Uniform range for the machines' cycle times (seconds per Mflop,
        relative to the reference machine).
    seed:
        RNG seed.
    """
    if num_machines <= 0:
        raise WorkloadError("num_machines must be positive")
    if not 0.0 < replication <= 1.0:
        raise WorkloadError("replication must be in (0, 1]")
    rng = np.random.default_rng(seed)

    hosted: List[set] = [set() for _ in range(num_machines)]
    for spec in databanks:
        hosts = [i for i in range(num_machines) if rng.random() < replication]
        if not hosts:
            hosts = [int(rng.integers(0, num_machines))]
        for i in hosts:
            hosted[i].add(spec.name)

    machines = []
    low, high = speed_range
    for i in range(num_machines):
        cycle_time = float(rng.uniform(low, high))
        machines.append(
            Machine(name=f"server{i:02d}", cycle_time=cycle_time, databanks=frozenset(hosted[i]))
        )
    return Platform(machines)


def make_request_stream(
    num_requests: int,
    databanks: Sequence[DatabankSpec] = DEFAULT_DATABANKS,
    arrival_rate: float = 1.0 / 30.0,
    motif_range: tuple = (5, 100),
    cost_model: GrippsCostModel = REFERENCE_MODEL,
    stretch_weights: bool = True,
    seed: Optional[int] = None,
) -> List[Job]:
    """Generate a stream of motif-comparison requests as scheduling jobs.

    Parameters
    ----------
    num_requests:
        Number of requests.
    databanks:
        The databanks requests may target (drawn with their popularities).
    arrival_rate:
        Poisson arrival rate in requests per second.
    motif_range:
        Uniform range for the number of motifs per request.
    cost_model:
        Used to convert a request into an abstract size ``W_j`` (Mflop).
    stretch_weights:
        When ``True`` the job weights are set to ``1 / W_j`` so that the
        max-weighted-flow objective is the max-stretch objective (the natural
        fairness metric for interactive portals); otherwise all weights are 1.
    seed:
        RNG seed.
    """
    if num_requests <= 0:
        raise WorkloadError("num_requests must be positive")
    if arrival_rate <= 0:
        raise WorkloadError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)

    popularity = np.array([spec.popularity for spec in databanks], dtype=float)
    popularity = popularity / popularity.sum()

    jobs: List[Job] = []
    clock = 0.0
    for index in range(num_requests):
        clock += float(rng.exponential(1.0 / arrival_rate))
        spec = databanks[int(rng.choice(len(databanks), p=popularity))]
        num_motifs = int(rng.integers(motif_range[0], motif_range[1] + 1))
        size = cost_model.request_size_mflop(num_motifs, spec.num_sequences)
        weight = 1.0 / size if stretch_weights else 1.0
        jobs.append(
            Job(
                name=f"req{index:04d}[{spec.name}x{num_motifs}]",
                release_date=round(clock, 6),
                weight=weight,
                size=size,
                databanks=frozenset({spec.name}),
            )
        )
    return jobs


def make_gripps_instance(
    num_requests: int,
    num_machines: int,
    *,
    databanks: Sequence[DatabankSpec] = DEFAULT_DATABANKS,
    replication: float = 0.5,
    arrival_rate: float = 1.0 / 30.0,
    motif_range: tuple = (5, 100),
    speed_range: tuple = (0.5, 2.0),
    stretch_weights: bool = True,
    cost_model: GrippsCostModel = REFERENCE_MODEL,
    seed: Optional[int] = None,
) -> Instance:
    """Generate a complete GriPPS scheduling instance (platform + request stream).

    Convenience wrapper combining :func:`make_gripps_platform` and
    :func:`make_request_stream`; the resulting instance uses the
    uniform-machines-with-restricted-availabilities cost matrix
    (``W_j * c_i`` where the databank is replicated, ``+inf`` elsewhere).
    """
    rng = np.random.default_rng(seed)
    platform = make_gripps_platform(
        num_machines,
        databanks=databanks,
        replication=replication,
        speed_range=speed_range,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    jobs = make_request_stream(
        num_requests,
        databanks=databanks,
        arrival_rate=arrival_rate,
        motif_range=motif_range,
        cost_model=cost_model,
        stretch_weights=stretch_weights,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    return Instance.from_platform(jobs, platform)
