"""Calibrated GriPPS execution-time model (the substitute for the real testbed).

Section 2 of the paper reports three empirical facts about GriPPS requests
(≈300 motifs against a databank of ≈38 000 protein sequences, ≈110 s for the
full request on the reference machine):

1. execution time is (almost perfectly) linear in the *sequence block size*,
   with a fixed overhead estimated at **1.1 s** by linear regression
   (Figure 1(a));
2. execution time is linear in the *motif subset size*, with a much larger
   fixed overhead estimated at **10.5 s** (Figure 1(b));
3. communication costs are negligible.

We do not have the GriPPS binary or the cluster, so the reproduction's
"measurement device" is this cost model:

``T(nm, ns) = c0 + c_motif * nm + c_seq * ns + rate * nm * ns``

whose four coefficients are calibrated so that the three facts above hold
exactly for the reference request (nm = 300 motifs, ns = 38 000 sequences):

* intercept of the sequence-partition regression: ``c0 + c_motif * 300 = 1.1 s``;
* intercept of the motif-partition regression: ``c0 + c_seq * 38 000 = 10.5 s``;
* full-request time: ``T(300, 38 000) ≈ 110 s``.

A configurable multiplicative log-normal noise reproduces measurement jitter,
and a per-machine speed factor turns the model into the heterogeneous
platform of Section 3 (machine ``i`` with cycle time ``c_i`` takes
``c_i / c_ref`` times longer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import WorkloadError

__all__ = ["GrippsCostModel", "REFERENCE_MODEL"]


@dataclass(frozen=True)
class GrippsCostModel:
    """Affine-in-both-dimensions execution-time model for GriPPS requests.

    Attributes
    ----------
    base_overhead:
        Constant start-up cost ``c0`` in seconds (process launch, databank
        index open).
    per_motif_overhead:
        Cost per motif independent of the databank size (motif compilation),
        in seconds.
    per_sequence_overhead:
        Cost per sequence independent of the motif count (sequence I/O and
        parsing), in seconds.
    pair_rate:
        Cost of comparing one motif against one sequence, in seconds.
    noise_sigma:
        Standard deviation of the multiplicative log-normal measurement noise
        (0 disables noise).
    reference_motifs, reference_sequences:
        Size of the paper's reference request, kept for documentation and
        derived statistics.
    """

    base_overhead: float = 0.5
    per_motif_overhead: float = 0.002
    per_sequence_overhead: float = (10.5 - 0.5) / 38_000.0
    pair_rate: float = (110.0 - 10.5 - 0.6) / (300.0 * 38_000.0)
    noise_sigma: float = 0.0
    reference_motifs: int = 300
    reference_sequences: int = 38_000

    def __post_init__(self) -> None:
        for attribute in ("base_overhead", "per_motif_overhead", "per_sequence_overhead", "pair_rate"):
            if getattr(self, attribute) < 0:
                raise WorkloadError(f"{attribute} must be non-negative")
        if self.noise_sigma < 0:
            raise WorkloadError("noise_sigma must be non-negative")

    # ------------------------------------------------------------------ #
    # Mean model                                                          #
    # ------------------------------------------------------------------ #
    def expected_time(self, num_motifs: int, num_sequences: int, speed_factor: float = 1.0) -> float:
        """Expected execution time of a request on a machine of given speed factor.

        ``speed_factor`` is the ratio ``c_i / c_ref`` of the machine's cycle
        time to the reference machine's (1.0 reproduces the paper's numbers).
        """
        if num_motifs < 0 or num_sequences < 0:
            raise WorkloadError("request sizes must be non-negative")
        work = (
            self.base_overhead
            + self.per_motif_overhead * num_motifs
            + self.per_sequence_overhead * num_sequences
            + self.pair_rate * num_motifs * num_sequences
        )
        return work * speed_factor

    def measured_time(
        self,
        num_motifs: int,
        num_sequences: int,
        speed_factor: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """One noisy "measurement" of the execution time (virtual experiment)."""
        mean = self.expected_time(num_motifs, num_sequences, speed_factor)
        if self.noise_sigma <= 0 or rng is None:
            return mean
        return float(mean * rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    # ------------------------------------------------------------------ #
    # Derived quantities                                                  #
    # ------------------------------------------------------------------ #
    def sequence_partition_overhead(self, num_motifs: Optional[int] = None) -> float:
        """Intercept of the time-vs-sequence-block-size regression (paper: 1.1 s)."""
        nm = self.reference_motifs if num_motifs is None else num_motifs
        return self.base_overhead + self.per_motif_overhead * nm

    def motif_partition_overhead(self, num_sequences: Optional[int] = None) -> float:
        """Intercept of the time-vs-motif-subset-size regression (paper: 10.5 s)."""
        ns = self.reference_sequences if num_sequences is None else num_sequences
        return self.base_overhead + self.per_sequence_overhead * ns

    def full_request_time(self) -> float:
        """Time of the paper's reference request (≈110 s)."""
        return self.expected_time(self.reference_motifs, self.reference_sequences)

    def request_size_mflop(self, num_motifs: int, num_sequences: int, mflops: float = 1000.0) -> float:
        """Convert a request into an abstract job size ``W_j`` in Mflop.

        The conversion assumes the reference machine sustains ``mflops``
        Mflop/s, so a request's size is its reference execution time times
        that rate.  The scheduling theory only needs relative sizes, so the
        exact rate is immaterial.
        """
        return self.expected_time(num_motifs, num_sequences) * mflops

    def with_noise(self, noise_sigma: float) -> "GrippsCostModel":
        """Return a copy of the model with a different noise level."""
        return GrippsCostModel(
            base_overhead=self.base_overhead,
            per_motif_overhead=self.per_motif_overhead,
            per_sequence_overhead=self.per_sequence_overhead,
            pair_rate=self.pair_rate,
            noise_sigma=noise_sigma,
            reference_motifs=self.reference_motifs,
            reference_sequences=self.reference_sequences,
        )


#: The model calibrated on the numbers quoted in the paper.
REFERENCE_MODEL = GrippsCostModel()
