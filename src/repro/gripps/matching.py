"""Motif-scanning engine: the computation GriPPS performs.

The real GriPPS code compares every motif of a request against every sequence
of the targeted databank.  This module provides an actual (if much slower)
implementation of that computation so that the divisibility property measured
in Figure 1 can be demonstrated end-to-end on real work, not only on the
calibrated cost model:

* :func:`scan_sequence` finds the matches of one motif in one sequence;
* :func:`scan_databank` compares a whole motif set against a whole databank
  and reports match counts and the number of residue comparisons performed —
  the quantity that grows linearly with both the motif-set size and the
  databank size, which is precisely the divisible-load property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .motifs import Motif, MotifSet
from .sequences import SequenceDatabank, SequenceRecord

__all__ = ["MotifMatch", "ScanReport", "scan_sequence", "scan_databank"]


@dataclass(frozen=True)
class MotifMatch:
    """One occurrence of a motif in a sequence."""

    motif_id: str
    sequence_id: str
    position: int
    matched: str


@dataclass
class ScanReport:
    """Aggregate result of comparing a motif set against a databank.

    Attributes
    ----------
    num_motifs, num_sequences:
        Size of the request.
    matches:
        Every motif occurrence found.
    residue_comparisons:
        Total number of residues examined — the work metric that scales
        linearly with the request size (the basis of the divisible-load
        model).
    """

    num_motifs: int
    num_sequences: int
    matches: List[MotifMatch]
    residue_comparisons: int

    @property
    def num_matches(self) -> int:
        """Number of motif occurrences found."""
        return len(self.matches)

    def matches_by_motif(self) -> Dict[str, int]:
        """Match counts keyed by motif identifier."""
        counts: Dict[str, int] = {}
        for match in self.matches:
            counts[match.motif_id] = counts.get(match.motif_id, 0) + 1
        return counts

    def merge(self, other: "ScanReport") -> "ScanReport":
        """Combine two reports obtained on disjoint blocks of the same request.

        The merge operation is what makes the workload divisible: scanning
        two halves of a databank independently and merging the reports gives
        exactly the same result as scanning the whole databank at once.
        """
        return ScanReport(
            num_motifs=max(self.num_motifs, other.num_motifs),
            num_sequences=self.num_sequences + other.num_sequences,
            matches=self.matches + other.matches,
            residue_comparisons=self.residue_comparisons + other.residue_comparisons,
        )


def scan_sequence(motif: Motif, record: SequenceRecord) -> List[MotifMatch]:
    """Find every occurrence of ``motif`` in ``record`` (overlaps allowed)."""
    pattern = motif.compile()
    matches: List[MotifMatch] = []
    position = 0
    text = record.sequence
    while True:
        found = pattern.search(text, position)
        if found is None:
            break
        matches.append(
            MotifMatch(
                motif_id=motif.identifier,
                sequence_id=record.identifier,
                position=found.start(),
                matched=found.group(0),
            )
        )
        position = found.start() + 1
    return matches


def scan_databank(motifs: MotifSet, databank: SequenceDatabank) -> ScanReport:
    """Compare every motif against every sequence of the databank."""
    matches: List[MotifMatch] = []
    residue_comparisons = 0
    for record in databank:
        for motif in motifs:
            matches.extend(scan_sequence(motif, record))
            # Every scan examines (essentially) every residue of the sequence;
            # counting them gives the linear work metric.
            residue_comparisons += record.length
    return ScanReport(
        num_motifs=len(motifs),
        num_sequences=len(databank),
        matches=matches,
        residue_comparisons=residue_comparisons,
    )
