"""Protein motifs: compact representations of biologically significant patterns.

GriPPS compares *motifs* — short amino-acid patterns in a PROSITE-like syntax
— against every sequence of a databank.  This module provides:

* :class:`Motif` — a pattern made of positions, each of which is either a
  fixed residue, a choice among several residues (``[ILV]``), an exclusion
  (``{P}``) or a wildcard with an optional repetition range (``x(2,4)``);
* :class:`MotifSet` — an ordered collection of motifs with the partitioning
  operations used by the Figure 1(b) experiment;
* random motif generation with realistic pattern-length statistics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import WorkloadError
from .sequences import AMINO_ACIDS

__all__ = ["MotifElement", "Motif", "MotifSet"]


@dataclass(frozen=True)
class MotifElement:
    """One position of a motif pattern.

    Attributes
    ----------
    residues:
        The residues accepted at this position (``None`` means "any residue",
        i.e. the PROSITE ``x`` wildcard).
    min_repeat, max_repeat:
        Repetition range of the position (``x(2,4)`` accepts 2 to 4 arbitrary
        residues).
    negated:
        When ``True`` the position accepts any residue *except* those listed
        (PROSITE ``{...}`` syntax).
    """

    residues: Optional[frozenset] = None
    min_repeat: int = 1
    max_repeat: int = 1
    negated: bool = False

    def to_prosite(self) -> str:
        """Render the element back to PROSITE-like text."""
        if self.residues is None:
            core = "x"
        elif self.negated:
            core = "{" + "".join(sorted(self.residues)) + "}"
        elif len(self.residues) == 1:
            core = next(iter(self.residues))
        else:
            core = "[" + "".join(sorted(self.residues)) + "]"
        if (self.min_repeat, self.max_repeat) == (1, 1):
            return core
        if self.min_repeat == self.max_repeat:
            return f"{core}({self.min_repeat})"
        return f"{core}({self.min_repeat},{self.max_repeat})"

    def to_regex(self) -> str:
        """Render the element as a Python regular-expression fragment."""
        if self.residues is None:
            charset = "."
        elif self.negated:
            charset = "[^" + "".join(sorted(self.residues)) + "]"
        else:
            charset = "[" + "".join(sorted(self.residues)) + "]"
        if (self.min_repeat, self.max_repeat) == (1, 1):
            return charset
        if self.min_repeat == self.max_repeat:
            return f"{charset}{{{self.min_repeat}}}"
        return f"{charset}{{{self.min_repeat},{self.max_repeat}}}"


@dataclass(frozen=True)
class Motif:
    """A protein motif: an identifier plus an ordered list of pattern elements."""

    identifier: str
    elements: Tuple[MotifElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise WorkloadError(f"motif {self.identifier!r} has no pattern elements")

    # ------------------------------------------------------------------ #
    def to_prosite(self) -> str:
        """PROSITE-like textual form (e.g. ``C-x(2,4)-[DE]-H``)."""
        return "-".join(element.to_prosite() for element in self.elements)

    def to_regex(self) -> str:
        """Python regular expression matching the motif."""
        return "".join(element.to_regex() for element in self.elements)

    def compile(self) -> "re.Pattern[str]":
        """Compiled regular expression for the scanning engine."""
        return re.compile(self.to_regex())

    @property
    def min_span(self) -> int:
        """Minimum number of residues a match can cover."""
        return sum(element.min_repeat for element in self.elements)

    @staticmethod
    def from_prosite(identifier: str, pattern: str) -> "Motif":
        """Parse a PROSITE-like pattern such as ``C-x(2)-[DE]-{P}-H``."""
        elements: List[MotifElement] = []
        for token in pattern.strip().split("-"):
            token = token.strip()
            if not token:
                continue
            repeat_match = re.search(r"\((\d+)(?:,(\d+))?\)$", token)
            if repeat_match:
                min_repeat = int(repeat_match.group(1))
                max_repeat = int(repeat_match.group(2) or repeat_match.group(1))
                core = token[: repeat_match.start()]
            else:
                min_repeat = max_repeat = 1
                core = token
            if core in ("x", "X"):
                elements.append(MotifElement(None, min_repeat, max_repeat))
            elif core.startswith("[") and core.endswith("]"):
                elements.append(
                    MotifElement(frozenset(core[1:-1].upper()), min_repeat, max_repeat)
                )
            elif core.startswith("{") and core.endswith("}"):
                elements.append(
                    MotifElement(
                        frozenset(core[1:-1].upper()), min_repeat, max_repeat, negated=True
                    )
                )
            elif len(core) == 1 and core.upper() in AMINO_ACIDS:
                elements.append(MotifElement(frozenset(core.upper()), min_repeat, max_repeat))
            else:
                raise WorkloadError(f"cannot parse motif element {token!r} in {pattern!r}")
        return Motif(identifier=identifier, elements=tuple(elements))

    @staticmethod
    def random(identifier: str, rng: np.random.Generator, mean_length: float = 8.0) -> "Motif":
        """Generate a random but realistic motif."""
        length = max(4, int(rng.poisson(mean_length)))
        elements: List[MotifElement] = []
        letters = list(AMINO_ACIDS)
        for _ in range(length):
            kind = rng.random()
            if kind < 0.55:  # fixed residue
                elements.append(MotifElement(frozenset(rng.choice(letters))))
            elif kind < 0.80:  # residue class
                size = int(rng.integers(2, 5))
                chosen = rng.choice(letters, size=size, replace=False)
                elements.append(MotifElement(frozenset(str(c) for c in chosen)))
            elif kind < 0.92:  # wildcard with repetition
                min_repeat = int(rng.integers(1, 4))
                max_repeat = min_repeat + int(rng.integers(0, 3))
                elements.append(MotifElement(None, min_repeat, max_repeat))
            else:  # exclusion
                size = int(rng.integers(1, 3))
                chosen = rng.choice(letters, size=size, replace=False)
                elements.append(
                    MotifElement(frozenset(str(c) for c in chosen), negated=True)
                )
        return Motif(identifier=identifier, elements=tuple(elements))


@dataclass
class MotifSet:
    """An ordered collection of motifs (the user input of a GriPPS request)."""

    name: str
    motifs: List[Motif] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @staticmethod
    def random(
        name: str, num_motifs: int, seed: Optional[int] = None, mean_length: float = 8.0
    ) -> "MotifSet":
        """Generate ``num_motifs`` random motifs."""
        if num_motifs <= 0:
            raise WorkloadError(f"num_motifs must be positive, got {num_motifs}")
        rng = np.random.default_rng(seed)
        motifs = [
            Motif.random(f"{name}:m{k:04d}", rng, mean_length=mean_length)
            for k in range(num_motifs)
        ]
        return MotifSet(name=name, motifs=motifs)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.motifs)

    def __iter__(self):
        return iter(self.motifs)

    def __getitem__(self, index: int) -> Motif:
        return self.motifs[index]

    def subset(self, size: int, seed: Optional[int] = None) -> "MotifSet":
        """Return a random subset of ``size`` motifs (the Figure 1(b) protocol)."""
        if size <= 0 or size > len(self.motifs):
            raise WorkloadError(f"subset size must be in [1, {len(self.motifs)}], got {size}")
        rng = np.random.default_rng(seed)
        indices = sorted(rng.choice(len(self.motifs), size=size, replace=False))
        return MotifSet(name=f"{self.name}#subset{size}", motifs=[self.motifs[i] for i in indices])

    def partition(self, num_blocks: int) -> List["MotifSet"]:
        """Split the motif set into near-equal blocks."""
        if num_blocks <= 0 or num_blocks > len(self.motifs):
            raise WorkloadError(
                f"cannot split {len(self.motifs)} motifs into {num_blocks} blocks"
            )
        boundaries = np.linspace(0, len(self.motifs), num_blocks + 1).astype(int)
        return [
            MotifSet(
                name=f"{self.name}#part{k}",
                motifs=list(self.motifs[int(boundaries[k]) : int(boundaries[k + 1])]),
            )
            for k in range(num_blocks)
        ]
