"""Zero-copy streaming window: preallocated slots and the policy-facing view.

The rolling-horizon :class:`~repro.simulation.stream.StreamingSimulator`
originally materialised a fresh, fully-validated
:class:`~repro.core.instance.Instance` on every arrival and compaction —
an O(m·w) rebuild (tuple construction, NaN/positivity scans, release-order
checks) per event that dominated streaming throughput.  This module replaces
that scheme:

* :class:`StreamWindow` owns the window's buffers — the cost block and the
  pooled ``remaining``/``rate`` vectors from
  :meth:`~repro.simulation.kernel.SimulationKernel.bind_buffers` plus
  per-slot metadata (job, global id, fastest cost, weight, release) — and
  mutates them in place: arrivals append into preallocated slots, compaction
  remaps surviving slots with vectorised fancy indexing.
* :class:`InstanceView` is a **zero-copy stand-in** for ``Instance`` over
  those buffers.  It satisfies the read surface the policies and the kernel
  consume (``jobs``, ``machines``, ``costs``, ``cost``, ``min_cost``,
  ``num_jobs`` …) without ever constructing or re-validating anything: the
  ``costs`` property is a numpy view of the live slot block, ``jobs`` is the
  window's own slot list.  One view object persists for the whole run; the
  ``rebind``/``compact`` policy hooks signal the mutations exactly as they
  signalled fresh instances before.

Validation is *not* repeated per event — that is the point.  Stream arrivals
are validated where they are made (``Job.__post_init__``, the stream
generators), arrival order guarantees the release-date sort invariant, and
the byte-identity tests drive every registered policy through both this view
and the legacy rebuild path to prove the outputs equal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..core.machine import Machine
from ..workload.streams import ArrivalEvent

__all__ = ["InstanceView", "StreamWindow"]


class InstanceView:
    """Read-only ``Instance`` stand-in over a :class:`StreamWindow`'s buffers.

    The view aliases the window's live storage: no copy is made on access,
    and window mutations (admissions, compactions) are visible immediately.
    Policies receive the same view object across the whole run and are told
    about mutations through their ``rebind``/``compact`` hooks, exactly as
    they were told about freshly rebuilt instances before.
    """

    __slots__ = ("_window",)

    def __init__(self, window: "StreamWindow") -> None:
        self._window = window

    # -- identity ------------------------------------------------------- #
    @property
    def jobs(self) -> List[Job]:
        """Window jobs in slot order (live and not-yet-compacted dead slots)."""
        return self._window.jobs

    @property
    def machines(self) -> Tuple[Machine, ...]:
        return self._window.machines

    @property
    def costs(self) -> np.ndarray:
        """Zero-copy ``(m, width)`` view of the window's cost block."""
        window = self._window
        return window.costs_base[:, : len(window.jobs)]

    @property
    def costs_rows(self) -> List[List[float]]:
        """Per-machine cost rows as plain Python floats (scalar fast path)."""
        return self._window.costs_rows

    @property
    def job_lists(self) -> Tuple[List[float], List[float], List[float]]:
        """``(min_costs, weights, release_dates)`` as plain Python floats.

        The scalar twin of :meth:`job_vectors` — same doubles, list-backed,
        mutated in place by the window (so cached references stay current).
        """
        window = self._window
        return (window.min_list, window.weight_list, window.release_list)

    @property
    def num_jobs(self) -> int:
        return len(self._window.jobs)

    @property
    def num_machines(self) -> int:
        return self._window.num_machines

    @property
    def release_dates(self) -> List[float]:
        return [job.release_date for job in self._window.jobs]

    @property
    def weights(self) -> List[float]:
        return [job.weight for job in self._window.jobs]

    # -- scalar accessors ------------------------------------------------ #
    def cost(self, machine_index: int, job_index: int) -> float:
        return float(self._window.costs_base[machine_index, job_index])

    def min_cost(self, job_index: int) -> float:
        return float(self._window.min_costs[job_index])

    def job_index(self, name: str) -> int:
        for index, job in enumerate(self._window.jobs):
            if job.name == name:
                return index
        raise KeyError(f"no job named {name!r} in instance")

    def machine_index(self, name: str) -> int:
        for index, machine in enumerate(self._window.machines):
            if machine.name == name:
                return index
        raise KeyError(f"no machine named {name!r} in instance")

    def eligible_machines(self, job_index: int) -> List[int]:
        column = self._window.costs_base[:, job_index]
        return [i for i in range(self.num_machines) if math.isfinite(column[i])]

    def eligible_jobs(self, machine_index: int) -> List[int]:
        row = self._window.costs_base[machine_index]
        return [j for j in range(self.num_jobs) if math.isfinite(row[j])]

    # -- derived quantities ---------------------------------------------- #
    def job_vectors(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(min_costs, weights, release_dates)`` float vectors in slot order.

        Zero-copy slices of the window's incrementally maintained metadata —
        the O(1) counterpart of :meth:`Instance.job_vectors`, and the reason
        array-aware policies can treat ``rebind`` as constant-time under the
        streaming simulator.
        """
        window = self._window
        width = len(window.jobs)
        return (
            window.min_costs[:width],
            window.weights[:width],
            window.releases[:width],
        )

    def aggregate_rate(self, job_index: int) -> float:
        column = self.costs[:, job_index]
        finite = np.isfinite(column)
        return float(np.sum(1.0 / column[finite]))

    def lower_bound_flow(self, job_index: int) -> float:
        return 1.0 / self.aggregate_rate(job_index)

    def trivial_upper_bound_flow(self) -> float:
        return self.materialise().trivial_upper_bound_flow()

    def describe(self) -> str:
        finite = np.isfinite(self.costs)
        restricted = int(np.sum(~finite))
        return (
            f"Instance with {self.num_jobs} jobs on {self.num_machines} machines "
            f"({restricted} forbidden job/machine pairs)"
        )

    # -- escape hatch ----------------------------------------------------- #
    def materialise(self) -> Instance:
        """A real, validated :class:`Instance` snapshot of the window.

        O(m·w): only for cold paths (serialisation, derived instances) —
        the hot loop never calls this.
        """
        return Instance(
            jobs=tuple(self._window.jobs),
            machines=self._window.machines,
            costs=self.costs.copy(),
        )

    def with_stretch_weights(self) -> Instance:
        return self.materialise().with_stretch_weights()

    def restricted_to_jobs(self, job_indices: Sequence[int]) -> Instance:
        return self.materialise().restricted_to_jobs(job_indices)

    def to_dict(self) -> Dict:
        return self.materialise().to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstanceView({self.num_jobs} jobs, {self.num_machines} machines)"


class StreamWindow:
    """The active window's storage: preallocated slots over pooled buffers.

    Arrivals append into the next slot (amortised O(m): one cost-column
    write, a handful of scalar stores — no construction, no revalidation);
    compaction drops dead slots by remapping the survivors in place with one
    fancy-indexed copy per buffer.  The ``remaining``/``rate`` vectors and
    the :class:`~repro.simulation.state.JobProgress` mirrors come from
    :meth:`SimulationKernel.bind_buffers`, so streaming and batch runs share
    one allocation pool.
    """

    def __init__(self, kernel, machines: Sequence[Machine]) -> None:
        self.kernel = kernel
        self.machines: Tuple[Machine, ...] = tuple(machines)
        self.num_machines = len(self.machines)
        self.capacity = 0
        self.jobs: List[Job] = []  # window slot -> Job
        self.global_ids: List[int] = []  # window slot -> arrival index
        self.live: List[bool] = []
        self.costs_base = np.empty((self.num_machines, 0))
        #: Per-machine cost rows as plain Python floats (same bits as the
        #: ndarray block).  Scalar-heavy consumers — the assignment scan of
        #: the preemptive policies, the pure-numpy advance arithmetic — read
        #: these to skip float64-boxing on every element access.  The inner
        #: lists are mutated in place (append / slice-assign) so references
        #: held across admissions and compactions stay valid.
        self.costs_rows: List[List[float]] = [[] for _ in range(self.num_machines)]
        #: Python-float twins of the slot metadata vectors below, maintained
        #: the same way as ``costs_rows`` (appended on admit, remapped on
        #: compact, mutated in place).  The preemptive policies rank the
        #: small active set over these with plain ``sorted`` — cheaper than
        #: numpy fancy-indexing at window scale, and bit-identical since the
        #: values are the same IEEE-754 doubles.
        self.min_list: List[float] = []  # slot -> fastest processing time
        self.weight_list: List[float] = []  # slot -> job weight
        self.release_list: List[float] = []  # slot -> release date
        self.min_costs = np.empty(0)  # slot -> fastest processing time
        self.weights = np.empty(0)  # slot -> job weight
        self.releases = np.empty(0)  # slot -> release date
        self.remaining: Optional[np.ndarray] = None
        self.rate: Optional[np.ndarray] = None
        self.mirrors: List = []
        self.view = InstanceView(self)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.jobs)

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self.capacity:
            return
        new_capacity = max(64, 2 * self.capacity, needed)
        width = len(self.jobs)
        saved_remaining = self.remaining[:width].copy() if self.remaining is not None else None
        remaining, rate, mirrors = self.kernel.bind_buffers(new_capacity)
        grown = np.empty((self.num_machines, new_capacity))
        grown[:, :width] = self.costs_base[:, :width]
        self.costs_base = grown
        for name in ("min_costs", "weights", "releases"):
            old = getattr(self, name)
            fresh = np.empty(new_capacity)
            fresh[:width] = old[:width]
            setattr(self, name, fresh)
        if saved_remaining is not None:
            remaining[:width] = saved_remaining
        self.remaining = remaining
        self.rate = rate
        self.mirrors = mirrors
        # bind_buffers reset the mirrors; restore the live window's state.
        for slot in range(width):
            mirror = mirrors[slot]
            mirror.arrived = True
            mirror.remaining_fraction = float(remaining[slot])
            mirror.completion_time = None if self.live[slot] else 0.0
        self.capacity = new_capacity

    def admit(self, event: ArrivalEvent) -> int:
        """Append one arrival into the next preallocated slot; returns it."""
        slot = len(self.jobs)
        self._ensure_capacity(slot + 1)
        self._fill_slot(slot, event)
        return slot

    def admit_batch(self, events: Sequence[ArrivalEvent]) -> int:
        """Append a batch of arrivals; returns the first slot used.

        The batch shares one capacity check and one remaining/rate block
        reset — the admission half of batched event processing.
        """
        first = len(self.jobs)
        count = len(events)
        self._ensure_capacity(first + count)
        self.remaining[first : first + count] = 1.0
        self.rate[first : first + count] = 0.0
        for offset, event in enumerate(events):
            self._fill_slot(first + offset, event, vectors_ready=True)
        return first

    def _fill_slot(self, slot: int, event: ArrivalEvent, *, vectors_ready: bool = False) -> None:
        job = event.job
        self.jobs.append(job)
        self.global_ids.append(event.index)
        self.live.append(True)
        self.costs_base[:, slot] = event.costs
        column = event.costs.tolist()
        for machine_index, row in enumerate(self.costs_rows):
            row.append(column[machine_index])
        fastest = event.min_cost
        self.min_costs[slot] = fastest
        self.weights[slot] = job.weight
        self.releases[slot] = job.release_date
        self.min_list.append(fastest)
        self.weight_list.append(job.weight)
        self.release_list.append(job.release_date)
        if not vectors_ready:
            self.remaining[slot] = 1.0
            self.rate[slot] = 0.0
        mirror = self.mirrors[slot]
        mirror.arrived = True
        mirror.remaining_fraction = 1.0
        mirror.completion_time = None

    def compact(self) -> Dict[int, int]:
        """Drop dead slots in place; returns the old→new mapping of survivors."""
        old_width = len(self.jobs)
        survivors = [slot for slot, alive in enumerate(self.live) if alive]
        mapping = {old: new for new, old in enumerate(survivors)}
        width = len(survivors)
        self.costs_base[:, :width] = self.costs_base[:, survivors]
        for row in self.costs_rows:
            row[:] = [row[slot] for slot in survivors]
        for values in (self.min_list, self.weight_list, self.release_list):
            values[:] = [values[slot] for slot in survivors]
        self.remaining[:width] = self.remaining[survivors]
        self.rate[:old_width] = 0.0
        self.min_costs[:width] = self.min_costs[survivors]
        self.weights[:width] = self.weights[survivors]
        self.releases[:width] = self.releases[survivors]
        self.jobs = [self.jobs[slot] for slot in survivors]
        self.global_ids = [self.global_ids[slot] for slot in survivors]
        self.live = [True] * width
        for new in range(width):
            mirror = self.mirrors[new]
            mirror.arrived = True
            mirror.remaining_fraction = float(self.remaining[new])
            mirror.completion_time = None
        return mapping
