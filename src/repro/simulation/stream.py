"""Rolling-horizon simulation of open-ended workload streams.

:class:`StreamingSimulator` is the on-line counterpart of
:class:`~repro.simulation.kernel.SimulationKernel`: it drives the same
event-loop semantics (arrivals, completions, wake-ups, exclusive and
time-shared windows) over a :class:`~repro.workload.streams.WorkloadStream`
instead of a finite instance.  The crucial difference is memory: the
simulator maintains only the **active window** — jobs that have arrived and
are not yet compacted out — so simulating a 100k-arrival stream costs
O(peak active jobs) state, not O(total arrivals).

The zero-copy fast core
-----------------------
The default engine never materialises an :class:`~repro.core.instance.Instance`:

* The window lives in a :class:`~repro.simulation.window.StreamWindow` over
  the pooled :meth:`SimulationKernel.bind_buffers` vectors; policies see it
  through a zero-copy :class:`~repro.simulation.window.InstanceView`.
  Arrivals append into preallocated slots (no construction, no
  revalidation) and compaction remaps indices in place — the
  ``rebind``/``compact`` hooks fire exactly as before.
* Events are processed in batches between decision points: all due arrivals
  of an epoch are admitted in one block write, one pooled
  :class:`~repro.simulation.state.SimulationState` is updated in place (no
  per-event state objects), and the per-decision rate/horizon/progress
  arithmetic touches only the slots the decision allocated instead of
  rescanning the window.
* The inner advance arithmetic can run under an **optional compiled
  kernel** (numba; the ``repro[compiled]`` extra in ``setup.cfg``).  The
  gate mirrors the mypy runner in :mod:`repro.lint.typecheck`: absent numba
  means an explicit fallback to the pure-numpy path, and
  ``use_compiled=True`` raises instead of silently downgrading.  The
  compiled kernels are op-for-op twins of the inline scalar code (see
  :mod:`repro.simulation._compiled`).

``StreamingSimulator(engine="rebuild")`` selects the frozen legacy loop in
:mod:`repro.simulation._stream_legacy` — the rebuild-per-arrival reference
the fast core is asserted byte-identical against, the same way
``benchmarks/_seed_engine.py`` anchors the batch kernel.  Identity covers
the full :meth:`StreamResult.fingerprint`: completion series, counters
(decisions included — batching removes overhead *around* decision points,
it never skips one), end time and busy machine-seconds.

Saturation
----------
A stream whose offered load exceeds what the policy can serve grows its
queue without bound.  Instead of looping forever, the simulator flags the
run as *saturated* and stops once the live-job count exceeds ``max_active``;
:mod:`repro.analysis.steady_state` additionally detects sub-critical
saturation from the recorded queue-length trajectory.

No schedule object is materialised (it would be O(total arrivals)); the
result carries per-completion metric series (flow, weighted flow, stretch)
and the queue/busy-time aggregates the steady-state estimators consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..exceptions import SimulationError
from ..obs.clock import wall_clock
from ..obs.metrics import Recorder, get_recorder
from ..workload.streams import ArrivalEvent, WorkloadStream
from . import _compiled
from .kernel import SimulationKernel, _COMPLETION_DUST, _EXCLUSIVE_SHARE, _MIN_STEP
from .state import AllocationDecision, SimulationState
from .window import StreamWindow

__all__ = ["StreamResult", "StreamingSimulator"]

#: Minimum number of dead slots before a compaction is considered.
_COMPACT_MIN = 8

#: Queue-trajectory samples are decimated beyond this many points.
_TRAJECTORY_CAP = 4096

#: Window engines: the zero-copy fast core and the frozen legacy reference.
_ENGINES = ("view", "rebuild")


@dataclass
class StreamResult:
    """Outcome of one rolling-horizon simulation.

    Attributes
    ----------
    policy:
        Name of the policy that drove the stream.
    label:
        Stream label (from the spec, or ``"trace"``).
    arrivals, completions:
        Jobs admitted and jobs finished (equal unless the run saturated).
    saturated:
        ``True`` when the live-job count exceeded the simulator's
        ``max_active`` cap and the run was cut short.
    peak_active, peak_window:
        Maximum simultaneous live jobs, and maximum window size (live plus
        not-yet-compacted dead slots).  ``peak_window`` is bounded by
        ``2 * peak_active + O(1)`` by the compaction rule — the O(active)
        memory guarantee the acceptance tests assert.
    compactions, preemptions, decisions, events:
        Counters mirroring the batch kernel's bookkeeping.
    start_time, end_time:
        First arrival time and the time of the last processed event.
    busy_machine_seconds:
        Total allocated machine time (the utilisation numerator).
    num_machines:
        Platform size (the utilisation denominator, with the time span).
    completed_jobs, flows, weighted_flows, stretches, release_dates:
        Per-completion series in completion order: global arrival index,
        flow ``C_j - r_j``, weighted flow, stretch (flow over the job's
        fastest processing time) and release date.
    queue_times, queue_lengths:
        Decimated (time, live jobs) trajectory sampled at arrivals.
    elapsed_seconds:
        Wall-clock time of the simulation.
    """

    policy: str
    label: str
    arrivals: int = 0
    completions: int = 0
    saturated: bool = False
    peak_active: int = 0
    peak_window: int = 0
    compactions: int = 0
    preemptions: int = 0
    decisions: int = 0
    events: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    busy_machine_seconds: float = 0.0
    num_machines: int = 0
    completed_jobs: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    flows: np.ndarray = field(default_factory=lambda: np.empty(0))
    weighted_flows: np.ndarray = field(default_factory=lambda: np.empty(0))
    stretches: np.ndarray = field(default_factory=lambda: np.empty(0))
    release_dates: np.ndarray = field(default_factory=lambda: np.empty(0))
    queue_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    queue_lengths: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def utilisation(self) -> float:
        """Fraction of the platform's machine-time actually allocated."""
        span = (self.end_time - self.start_time) * self.num_machines
        return self.busy_machine_seconds / span if span > 0 else 0.0

    @property
    def arrivals_per_second(self) -> float:
        """Simulation throughput in admitted arrivals per wall-clock second."""
        return self.arrivals / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def max_stretch(self) -> float:
        """Maximum stretch over all completed jobs."""
        return float(self.stretches.max()) if self.stretches.size else 0.0

    @property
    def mean_stretch(self) -> float:
        """Mean stretch over all completed jobs."""
        return float(self.stretches.mean()) if self.stretches.size else 0.0

    def fingerprint(self) -> str:
        """Hex digest of the run's deterministic content.

        Covers the completion series and the headline counters — everything
        except wall-clock timings — so two runs of the same
        :class:`~repro.workload.streams.StreamSpec` can be asserted
        byte-identical.
        """
        import hashlib

        digest = hashlib.sha256()
        for array in (
            self.completed_jobs,
            self.flows,
            self.weighted_flows,
            self.stretches,
            self.release_dates,
        ):
            digest.update(np.ascontiguousarray(array).tobytes())
        digest.update(
            repr(
                (
                    self.arrivals,
                    self.completions,
                    self.saturated,
                    self.peak_active,
                    self.peak_window,
                    self.compactions,
                    self.preemptions,
                    self.decisions,
                    self.end_time,
                    self.busy_machine_seconds,
                )
            ).encode()
        )
        return digest.hexdigest()


class StreamingSimulator:
    """Rolling-horizon driver of on-line policies over workload streams.

    Parameters
    ----------
    kernel:
        Optional :class:`SimulationKernel` whose pooled buffers back the
        window vectors (a private one is created by default; sharing one
        with batch runs reuses its allocations).
    max_active:
        Saturation cap: the run stops (flagged ``saturated``) once more than
        this many jobs are live at once.
    validate_decisions:
        Validate every allocation against the window state (off by default:
        it costs O(window) Python work per event; the batch kernel already
        validates every policy on the finite tiers).
    compact_min:
        Minimum number of dead slots before a compaction fires (the window
        compacts when dead slots reach ``max(compact_min, live slots)``, so
        it never exceeds ``2 × peak live + compact_min``).  The default is
        right for production; tests lower it to exercise compaction timing.
    engine:
        ``"view"`` (default) runs the zero-copy fast core; ``"rebuild"``
        runs the frozen legacy rebuild-per-arrival loop
        (:mod:`repro.simulation._stream_legacy`), the byte-identity
        reference used by the A/B benches and tests.
    use_compiled:
        ``None`` (default) uses the numba-compiled inner kernels when the
        ``repro[compiled]`` extra is installed and falls back to pure numpy
        otherwise; ``True`` requires them (raises
        :class:`~repro.exceptions.SimulationError` when numba is absent —
        an explicit skip, mirroring the gated mypy runner); ``False`` never
        uses them.
    """

    def __init__(
        self,
        kernel: Optional[SimulationKernel] = None,
        *,
        max_active: int = 10_000,
        validate_decisions: bool = False,
        compact_min: int = _COMPACT_MIN,
        engine: str = "view",
        use_compiled: Optional[bool] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if max_active < 1:
            raise SimulationError("max_active must be at least 1")
        if compact_min < 1:
            raise SimulationError("compact_min must be at least 1")
        if engine not in _ENGINES:
            raise SimulationError(
                f"unknown streaming engine {engine!r}; available: {', '.join(_ENGINES)}"
            )
        if use_compiled and not _compiled.COMPILED_AVAILABLE:
            raise SimulationError(
                "use_compiled=True but numba is not installed; "
                "install the repro[compiled] extra or leave use_compiled=None "
                "to fall back to the pure-numpy path"
            )
        self.kernel = kernel if kernel is not None else SimulationKernel()
        self.max_active = max_active
        self.validate_decisions = validate_decisions
        self.compact_min = compact_min
        self.engine = engine
        self.use_compiled = use_compiled
        # Metrics are injected (or resolved from the process default at run
        # time); instrumented code never constructs a concrete recorder —
        # the obs-recorder-default lint rule enforces this.
        self.recorder = recorder
        enable_compiled = use_compiled is not False and _compiled.COMPILED_AVAILABLE
        self._advance = _compiled.advance_pairs if enable_compiled else None
        self._progress = _compiled.apply_progress if enable_compiled else None

    # ------------------------------------------------------------------ #
    def run(
        self,
        stream: WorkloadStream,
        scheduler,
        *,
        max_arrivals: Optional[int] = None,
        record_jobs: bool = True,
    ) -> StreamResult:
        """Drive ``scheduler`` over ``stream`` and collect streaming metrics.

        Parameters
        ----------
        stream:
            The workload stream (open-ended streams need ``max_arrivals``).
        scheduler:
            An :class:`~repro.heuristics.base.OnlineScheduler` (resolve one
            with :func:`repro.heuristics.make_scheduler`); array-aware
            policies are dispatched to ``decide_arrays`` as in the kernel.
        max_arrivals:
            Stop admitting after this many arrivals and drain the queue.
            Required for streams without a finite :attr:`WorkloadStream.length`.
        record_jobs:
            Record the per-completion metric series (flows, stretches);
            disable to shed even that O(completions) output buffer.
        """
        recorder = self.recorder if self.recorder is not None else get_recorder()
        if self.engine == "rebuild":
            from ._stream_legacy import run_rebuild

            result = run_rebuild(
                self, stream, scheduler, max_arrivals=max_arrivals, record_jobs=record_jobs
            )
            self._record_result(recorder, result)
            return result
        if max_arrivals is None and stream.length is None:
            raise SimulationError(
                "an open-ended stream needs max_arrivals (or a finite trace stream)"
            )
        label = stream.spec.label if stream.spec is not None else "trace"
        result = StreamResult(
            policy=getattr(scheduler, "name", scheduler.__class__.__name__),
            label=label,
            num_machines=stream.num_machines,
        )
        started = wall_clock()

        window = StreamWindow(self.kernel, stream.machines)
        view = window.view
        arrivals: Iterator[ArrivalEvent] = stream.jobs()
        pending: Optional[ArrivalEvent] = next(arrivals, None)
        if pending is None:
            result.elapsed_seconds = wall_clock() - started
            self._record_result(recorder, result)
            return result
        budget = max_arrivals if max_arrivals is not None else math.inf

        array_mode = bool(getattr(scheduler, "array_aware", False))
        decide_fn = scheduler.decide_arrays if array_mode else scheduler.decide
        advance = self._advance
        progress_fn = self._progress
        pure = advance is None

        active: List[int] = []  # sorted live window indices
        running: Dict[int, int] = {}  # machine -> exclusively running window slot
        time = pending.job.release_date
        result.start_time = time
        end_time = time

        flows: List[float] = []
        weighted: List[float] = []
        stretches: List[float] = []
        finished_ids: List[int] = []
        releases: List[float] = []
        queue_times: List[float] = []
        queue_lengths: List[int] = []
        sample_stride = 1

        # One pooled policy-facing snapshot for the whole run, updated in
        # place (the kernel's scheme); its buffer references are refreshed
        # whenever the window's capacity grows.
        state = SimulationState(
            instance=view,  # type: ignore[arg-type] — duck-typed zero-copy view
            time=time,
            jobs=window.mirrors,
            next_arrival=None,
            active=active,
            remaining_vector=window.remaining,
            # On the pure path rates live in a loop-local Python-float list
            # (same bits, no per-access float64 boxing); the pooled vector
            # is only bound when the compiled kernels maintain it, so a
            # policy reading a stale vector fails loudly instead of
            # silently seeing zeros.
            rate_vector=None if pure else window.rate,
        )
        costs = window.costs_base
        rows = window.costs_rows  # stable: inner lists mutate in place
        remaining = window.remaining
        remaining_item = remaining.item if remaining is not None else None
        rate = window.rate
        #: Pure-path per-slot rates and remaining fractions as Python floats
        #: (bit-identical to the float64 vector arithmetic the compiled
        #: kernels perform).  ``remaining_list`` is maintained in lockstep
        #: with the pooled vector — every write lands in both — and is the
        #: read side of the hot arithmetic; mutated in place so the state
        #: binding below stays current.
        rate_list: List[float] = []
        remaining_list: List[float] = []
        if pure:
            state.remaining_list = remaining_list
        mirrors = window.mirrors

        reset_done = False
        pending_compact = False
        stall_events = 0
        #: Window slots whose rate entries the previous decision set — the
        #: only entries that can be non-zero, so the next decision clears
        #: just these instead of the whole window.
        touched: List[int] = []
        due: List[ArrivalEvent] = []

        peak_active = 0
        peak_window = 0
        # Hot counters stay in locals; they land back on the result after
        # the loop (and are lost on an exception, like the legacy loop).
        n_events = 0
        n_arrivals = 0
        n_decisions = 0
        n_completions = 0
        n_preemptions = 0
        n_compactions = 0
        busy = 0.0
        saturated = False
        max_active_cap = self.max_active
        compact_min = self.compact_min
        validate = self.validate_decisions
        # Hoisted once: under the NullRecorder default the loop pays one
        # dead boolean test per admission batch — the zero-overhead
        # contract benchmarks/bench_obs_overhead.py asserts.
        observe_batches = recorder.enabled

        while True:
            n_events += 1
            progressed_this_event = False
            time_before = time

            # ---- admit due arrivals (batched) ----------------------------
            window_changed = False
            if pending is not None and n_arrivals < budget:
                threshold = time + 1e-12
                if pending.job.release_date <= threshold:
                    live_before = len(active)
                    while (
                        pending is not None
                        and n_arrivals < budget
                        and pending.job.release_date <= threshold
                    ):
                        due.append(pending)
                        n_arrivals += 1
                        if n_arrivals % sample_stride == 0:
                            queue_times.append(pending.job.release_date)
                            queue_lengths.append(live_before + len(due))
                            if len(queue_times) > _TRAJECTORY_CAP:
                                queue_times = queue_times[::2]
                                queue_lengths = queue_lengths[::2]
                                sample_stride *= 2
                        pending = next(arrivals, None)
                    first_slot = window.admit_batch(due)
                    count = len(due)
                    if observe_batches:
                        recorder.observe("stream.batch_size", float(count))
                    active.extend(range(first_slot, first_slot + count))
                    if pure:
                        rate_list.extend([0.0] * count)
                        remaining_list.extend([1.0] * count)
                    due.clear()
                    window_changed = True
                    progressed_this_event = True
            if n_arrivals >= budget:
                pending = None

            active_count = len(active)
            if active_count > peak_active:
                peak_active = active_count
            if len(window.jobs) > peak_window:
                peak_window = len(window.jobs)
            if active_count > max_active_cap:
                saturated = True
                end_time = time
                break

            if window_changed:
                # Zero-copy: the view already spans the grown window; only
                # the pooled buffer references may have moved on a capacity
                # doubling.
                costs = window.costs_base
                remaining = window.remaining
                remaining_item = remaining.item
                rate = window.rate
                mirrors = window.mirrors
                state.jobs = mirrors
                state.remaining_vector = remaining
                if not pure:
                    state.rate_vector = rate
                if not reset_done:
                    if hasattr(scheduler, "reset"):
                        scheduler.reset(view)
                    reset_done = True
                elif pending_compact:
                    scheduler.compact(view, {})
                    pending_compact = False
                else:
                    scheduler.rebind(view)

            next_arrival = pending.job.release_date if pending is not None else None

            if not active:
                if next_arrival is None:
                    end_time = time
                    break  # drained
                time = next_arrival
                continue

            # ---- one decision window (kernel semantics) ------------------
            state.time = time
            state.next_arrival = next_arrival
            decision: AllocationDecision = decide_fn(state)
            n_decisions += 1
            if validate:
                decision.validate(state)

            shares = decision.shares
            horizon = next_arrival if next_arrival is not None else math.inf
            if decision.wake_up_at is not None:
                horizon = min(horizon, max(decision.wake_up_at, time + _MIN_STEP))

            exclusive_only = pure and decision.all_exclusive
            if pure:
                # Pure path: clear last window's rate entries, apply this
                # decision's shares, bound the horizon by the earliest
                # projected completion — touching only allocated slots,
                # with plain Python-float arithmetic throughout (the same
                # IEEE-754 float64 operations the vector held).
                for job_index in touched:
                    rate_list[job_index] = 0.0
                del touched[:]
                if exclusive_only:
                    # exclusive_allocation guarantees one full (job, 1.0)
                    # share per machine, so the per-share bookkeeping
                    # collapses: the share literal is 1.0 and summing one
                    # 1.0 per machine equals float(len(shares)) exactly —
                    # the generic loop's arithmetic, bit for bit.
                    total_share = float(len(shares))
                    for machine_index, share_list in shares.items():
                        job_index = share_list[0][0]
                        rate_list[job_index] += 1.0 / rows[machine_index][job_index]
                        touched.append(job_index)
                else:
                    total_share = 0.0
                    flat = []
                    for machine_index, share_list in shares.items():
                        row = rows[machine_index]
                        exclusive = (
                            len(share_list) == 1 and share_list[0][1] >= _EXCLUSIVE_SHARE
                        )
                        for job_index, share in share_list:
                            rate_list[job_index] += share / row[job_index]
                            total_share += share
                            touched.append(job_index)
                            flat.append((machine_index, job_index, share, exclusive))
                for job_index in touched:
                    job_rate = rate_list[job_index]
                    if job_rate > 0.0:
                        candidate = time + remaining_list[job_index] / job_rate
                        if candidate < horizon:
                            horizon = candidate
                pair_arrays = None
            else:
                pair_machines: List[int] = []
                pair_shares: List[float] = []
                pair_exclusive: List[bool] = []
                new_touched: List[int] = []
                for machine_index, share_list in shares.items():
                    exclusive = len(share_list) == 1 and share_list[0][1] >= _EXCLUSIVE_SHARE
                    for job_index, share in share_list:
                        pair_machines.append(machine_index)
                        new_touched.append(job_index)
                        pair_shares.append(share)
                        pair_exclusive.append(exclusive)
                pair_arrays = (
                    np.asarray(pair_machines, dtype=np.int64),
                    np.asarray(new_touched, dtype=np.int64),
                    np.asarray(pair_shares, dtype=np.float64),
                    np.asarray(pair_exclusive, dtype=np.uint8),
                )
                horizon, total_share = advance(
                    np.asarray(touched, dtype=np.int64),
                    pair_arrays[0],
                    pair_arrays[1],
                    pair_arrays[2],
                    costs,
                    remaining,
                    rate,
                    time,
                    horizon,
                )
                horizon = float(horizon)
                total_share = float(total_share)
                touched = new_touched

            if horizon == math.inf:
                raise SimulationError(
                    f"policy {result.policy!r} left active jobs unscheduled "
                    f"with no future arrival (window of {len(active)} live jobs)"
                )
            window_span = max(horizon - time, 0.0)

            # Preemptions: an exclusive (machine, job) run no longer allocated
            # although the job is unfinished — the kernel's open-piece rule.
            if running:
                if exclusive_only:
                    assigned_now = {
                        (machine_index, share_list[0][0])
                        for machine_index, share_list in shares.items()
                    }
                else:
                    assigned_now = {
                        (machine_index, job_index)
                        for machine_index, share_list in shares.items()
                        for job_index, _ in share_list
                    }
                for machine_index in list(running):
                    job_index = running[machine_index]
                    if (machine_index, job_index) not in assigned_now:
                        if remaining_item(job_index) > _COMPLETION_DUST:
                            n_preemptions += 1
                        del running[machine_index]

            if window_span > 0:
                busy += window_span * total_share
                if exclusive_only:
                    for machine_index, share_list in shares.items():
                        job_index = share_list[0][0]
                        running[machine_index] = job_index
                        value = remaining_list[job_index] - window_span / rows[
                            machine_index
                        ][job_index]
                        if value < 0.0:
                            value = 0.0
                        remaining[job_index] = value
                        remaining_list[job_index] = value
                        if not array_mode:
                            mirrors[job_index].remaining_fraction = value
                elif pure:
                    for machine_index, job_index, share, exclusive in flat:
                        if exclusive:
                            running[machine_index] = job_index
                            value = remaining_list[job_index] - window_span / rows[
                                machine_index
                            ][job_index]
                            if value < 0.0:
                                value = 0.0
                            remaining[job_index] = value
                            remaining_list[job_index] = value
                            if not array_mode:
                                mirrors[job_index].remaining_fraction = value
                        else:
                            running.pop(machine_index, None)
                            progressed = (
                                share * window_span / rows[machine_index][job_index]
                            )
                            if progressed <= 0:
                                continue
                            value = remaining_list[job_index] - progressed
                            if value < 0.0:
                                value = 0.0
                            remaining[job_index] = value
                            remaining_list[job_index] = value
                            if not array_mode:
                                mirrors[job_index].remaining_fraction = value
                else:
                    for machine_index, share_list in shares.items():
                        if len(share_list) == 1 and share_list[0][1] >= _EXCLUSIVE_SHARE:
                            running[machine_index] = share_list[0][0]
                        else:
                            running.pop(machine_index, None)
                    progress_fn(
                        pair_arrays[0],
                        pair_arrays[1],
                        pair_arrays[2],
                        pair_arrays[3],
                        costs,
                        remaining,
                        window_span,
                    )
                    if not array_mode:
                        for job_index in touched:
                            mirrors[job_index].remaining_fraction = float(
                                remaining[job_index]
                            )
                time = horizon

                # ---- completions: only progressed slots can cross the
                # dust threshold; process them in ascending window index,
                # exactly like the legacy full-window scan.
                if pure:
                    completed_now = [
                        job_index
                        for job_index in touched
                        if remaining_list[job_index] <= _COMPLETION_DUST
                    ]
                else:
                    completed_now = [
                        job_index
                        for job_index in touched
                        if remaining_item(job_index) <= _COMPLETION_DUST
                    ]
                if completed_now:
                    if len(completed_now) > 1:
                        completed_now = sorted(set(completed_now))
                    for job_index in completed_now:
                        remaining[job_index] = 0.0
                        if pure:
                            remaining_list[job_index] = 0.0
                        mirror = mirrors[job_index]
                        mirror.remaining_fraction = 0.0
                        mirror.completion_time = time
                        window.live[job_index] = False
                        active.remove(job_index)
                        for machine_index in [
                            m for m, j in running.items() if j == job_index
                        ]:
                            del running[machine_index]
                        n_completions += 1
                        progressed_this_event = True
                        if record_jobs:
                            job = window.jobs[job_index]
                            flow = time - job.release_date
                            flows.append(flow)
                            weighted.append(job.weight * flow)
                            stretches.append(flow / window.min_costs[job_index])
                            finished_ids.append(window.global_ids[job_index])
                            releases.append(job.release_date)
            else:
                # Degenerate zero-width window: every active job still has
                # remaining work above the completion dust (completions are
                # drained eagerly each event and admissions start at 1.0),
                # so snap to the next real event (kernel semantics).
                time = next_arrival if next_arrival is not None else time + _MIN_STEP
            if time > end_time:
                end_time = time

            # ---- compaction ----------------------------------------------
            dead = len(window.jobs) - len(active)
            if dead >= compact_min and dead >= len(active):
                mapping = window.compact()
                active[:] = sorted(mapping[idx] for idx in active)
                running = {
                    machine: mapping[idx]
                    for machine, idx in running.items()
                    if idx in mapping
                }
                # compact() zeroed the rate block wholesale and remapped
                # every slot index.
                del touched[:]
                if pure:
                    rate_list = [0.0] * len(window.jobs)
                    # Same doubles: compact() fancy-copied the survivors'
                    # float64 entries, tolist() unboxes them bit-for-bit.
                    remaining_list[:] = remaining[: len(window.jobs)].tolist()
                if len(window.jobs) > 0:
                    scheduler.compact(view, mapping)
                else:
                    # Fully drained: notify the policy at the next
                    # admission (its index-keyed state is entirely stale
                    # by then).
                    pending_compact = True
                n_compactions += 1

            # ---- cycling guard -------------------------------------------
            if progressed_this_event or time > time_before:
                stall_events = 0
            else:
                stall_events += 1
                if stall_events > 50 * (len(window.jobs) + 10):
                    raise SimulationError(
                        f"policy {result.policy!r} made no progress for "
                        f"{stall_events} events; it may be cycling"
                    )

        result.arrivals = n_arrivals
        result.completions = n_completions
        result.saturated = saturated
        result.compactions = n_compactions
        result.preemptions = n_preemptions
        result.decisions = n_decisions
        result.events = n_events
        result.end_time = end_time
        result.busy_machine_seconds = busy
        result.peak_active = peak_active
        result.peak_window = peak_window
        result.elapsed_seconds = wall_clock() - started
        if record_jobs:
            result.completed_jobs = np.asarray(finished_ids, dtype=np.int64)
            result.flows = np.asarray(flows)
            result.weighted_flows = np.asarray(weighted)
            result.stretches = np.asarray(stretches)
            result.release_dates = np.asarray(releases)
        result.queue_times = np.asarray(queue_times)
        result.queue_lengths = np.asarray(queue_lengths, dtype=np.int64)
        self._record_result(recorder, result)
        return result

    @staticmethod
    def _record_result(recorder: Recorder, result: StreamResult) -> None:
        """Emit the run's aggregate counters: O(1) calls per run, after the
        hot loop, so the instrumented path is the measured path."""
        if not recorder.enabled:
            return
        recorder.count("stream.runs")
        recorder.count("stream.events", float(result.events))
        recorder.count("stream.arrivals", float(result.arrivals))
        recorder.count("stream.decisions", float(result.decisions))
        recorder.count("stream.completions", float(result.completions))
        recorder.count("stream.preemptions", float(result.preemptions))
        recorder.count("stream.compactions", float(result.compactions))
        if result.saturated:
            recorder.count("stream.saturated_runs")
        recorder.gauge("stream.peak_active", float(result.peak_active))
        recorder.gauge("stream.peak_window", float(result.peak_window))
