"""Array-backed simulation kernel: the engine's event loop and reusable state.

This module holds the actual event loop behind :func:`repro.simulation.simulate`.
The per-event bookkeeping is *array-backed*: remaining work fractions and
progress rates live in preallocated numpy vectors, so the O(n) parts of every
event (next-event computation, completion detection, degenerate-window
checks) are single vectorised expressions instead of per-job Python loops.
The set of active jobs is maintained incrementally (a sorted list updated at
arrivals and completions) rather than recomputed from scratch at every event,
and the policy-facing :class:`~repro.simulation.state.JobProgress` objects
are thin mirrors kept in sync with the vectors.

Compatibility contract
----------------------
The kernel reproduces the seed engine's output **byte for byte**: every
floating-point update that feeds a :class:`~repro.core.schedule.SchedulePiece`
or a completion time is performed as the same sequence of scalar IEEE-754
operations in the same order, and pieces are appended to the schedule in the
same order (the vectorised expressions only *select* which jobs to touch).
The regression bench ``benchmarks/bench_engine_regression.py`` checks both the
equality and the speed against a frozen copy of the seed engine.

Batch entry point
-----------------
:func:`simulate_many` runs one policy over many instances through a single
:class:`SimulationKernel`, reusing the allocated vectors and
:class:`~repro.simulation.state.JobProgress` pool across runs (instances of
the same size, e.g. one scenario swept over many seeds, allocate nothing after
the first run).
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..exceptions import SimulationError
from ..obs.metrics import get_recorder
from .result import EventRecord, SimulationResult
from .state import AllocationDecision, JobProgress, SimulationState

__all__ = ["SimulationKernel", "simulate_many"]

#: Remaining fractions below this value are treated as "job finished".
_COMPLETION_DUST = 1e-9

#: Minimum positive time step; guards against infinite loops on degenerate decisions.
_MIN_STEP = 1e-12

#: A share at least this large counts as exclusive use of the machine.
_EXCLUSIVE_SHARE = 1.0 - 1e-9


class _PieceBuilder:
    """Incremental builder of the executed schedule.

    A machine running a single job at full share keeps one *open* piece that
    grows across consecutive windows; time-shared windows are laid out
    sequentially and emitted immediately.  At most one open piece exists per
    machine, so the open set is a machine-keyed, insertion-ordered mapping
    (flush order — and hence the order of pieces in the schedule — matches
    the seed engine's ``(machine, job)``-keyed bookkeeping exactly).
    """

    __slots__ = ("schedule", "instance", "_open")

    def __init__(self, schedule: Schedule, instance: Instance) -> None:
        self.schedule = schedule
        self.instance = instance
        #: machine -> [job_index, start_time, accumulated_fraction]
        self._open: Dict[int, List] = {}

    def open_job(self, machine_index: int) -> int:
        """Job of the machine's open piece (``-1`` when the machine is idle)."""
        record = self._open.get(machine_index)
        return record[0] if record is not None else -1

    def extend(self, machine_index: int, job_index: int, time: float, progressed: float) -> None:
        """Grow (or start) the machine's open exclusive piece for ``job_index``."""
        record = self._open.get(machine_index)
        if record is not None and record[0] == job_index:
            record[2] += progressed
        else:
            if record is not None:  # pragma: no cover - preemption scan flushes first
                self.flush_machine(machine_index)
            self._open[machine_index] = [job_index, time, progressed]

    def flush_machine(self, machine_index: int) -> None:
        """Close the machine's open piece, if any."""
        record = self._open.pop(machine_index, None)
        if record is None:
            return
        job_index, start, fraction = record
        if fraction > _COMPLETION_DUST:
            duration = fraction * self.instance.cost(machine_index, job_index)
            self.schedule.add_piece(job_index, machine_index, start, start + duration, fraction)

    def flush_job(self, job_index: int) -> None:
        """Close every open piece of ``job_index`` (in machine-index order)."""
        machines = sorted(
            machine for machine, record in self._open.items() if record[0] == job_index
        )
        for machine_index in machines:
            self.flush_machine(machine_index)

    def open_items(self) -> List[Tuple[int, int]]:
        """Open ``(machine, job)`` pairs in insertion order."""
        return [(machine, record[0]) for machine, record in self._open.items()]

    def flush_all(self) -> None:
        """Close every open piece (insertion order)."""
        for machine_index in list(self._open):
            self.flush_machine(machine_index)


class SimulationKernel:
    """Reusable array-backed state for the discrete-event loop.

    A kernel owns preallocated numpy vectors (remaining fractions, progress
    rates), a pool of :class:`~repro.simulation.state.JobProgress` mirrors,
    and one pooled :class:`~repro.simulation.state.SimulationState` snapshot
    that is updated in place at every event (no per-event allocation).
    :meth:`run` binds them to an instance and executes the event loop;
    running another instance of the same (or smaller) size reuses every
    buffer.

    Kernels are cheap to create but not thread-safe; use one per thread.
    """

    def __init__(self) -> None:
        self._capacity = 0
        self._remaining: Optional[np.ndarray] = None
        self._rate: Optional[np.ndarray] = None
        self._job_pool: List[JobProgress] = []
        # One pooled policy-facing snapshot, rebound per run and updated in
        # place per event (policies receive the same object at every event
        # and must not retain it across decide() calls).
        self._state: Optional[SimulationState] = None

    # ------------------------------------------------------------------ #
    def _bind(self, num_jobs: int) -> Tuple[np.ndarray, np.ndarray, List[JobProgress]]:
        """Size the buffers for ``num_jobs`` and reset them for a fresh run."""
        if num_jobs > self._capacity:
            self._capacity = num_jobs
            self._remaining = np.empty(num_jobs, dtype=float)
            self._rate = np.empty(num_jobs, dtype=float)
            while len(self._job_pool) < num_jobs:
                self._job_pool.append(JobProgress(job_index=len(self._job_pool)))
        remaining = self._remaining[:num_jobs]
        rate = self._rate[:num_jobs]
        remaining.fill(1.0)
        rate.fill(0.0)
        jobs = self._job_pool[:num_jobs]
        for progress in jobs:
            progress.remaining_fraction = 1.0
            progress.arrived = False
            progress.completion_time = None
        return remaining, rate, jobs

    def bind_buffers(self, num_jobs: int) -> Tuple[np.ndarray, np.ndarray, List[JobProgress]]:
        """Size and reset the pooled buffers for ``num_jobs`` jobs.

        Public pool access for wrappers that drive their own event loop over
        the kernel's buffers — the rolling-horizon
        :class:`~repro.simulation.stream.StreamingSimulator` binds its active
        window here, so batch runs and streaming runs share one allocation
        pool.  Returns ``(remaining, rate, job_mirrors)`` views of length
        ``num_jobs``; the remaining vector is reset to 1.0, rates to 0.0 and
        the mirrors to their fresh-job state.  The views alias the pooled
        arrays: a later ``run``/``bind_buffers`` call invalidates them.
        """
        return self._bind(num_jobs)

    # ------------------------------------------------------------------ #
    def run(
        self,
        instance: Instance,
        scheduler,
        *,
        validate_decisions: bool = True,
        max_events: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate ``scheduler`` on ``instance`` (see :func:`repro.simulation.simulate`)."""
        n = instance.num_jobs
        if max_events is None:
            max_events = 50 * n + 1000

        remaining, rate, jobs = self._bind(n)

        release = np.fromiter((job.release_date for job in instance.jobs), dtype=float, count=n)
        # Arrival events ordered by (release date, job index), as in the seed.
        arrival_order = np.lexsort((np.arange(n), release)) if n else np.empty(0, dtype=int)
        arrival_times = release[arrival_order]
        next_pos = 0

        time = float(arrival_times[0]) if n else 0.0
        schedule = Schedule(instance=instance, divisible=getattr(scheduler, "divisible", True))
        events: List[EventRecord] = [EventRecord(time=time, kind="start")]
        pieces = _PieceBuilder(schedule, instance)
        active: List[int] = []  # sorted job indices, maintained incrementally
        num_calls = 0
        num_preemptions = 0

        if hasattr(scheduler, "reset"):
            scheduler.reset(instance)

        # Pooled snapshot: instance/jobs/active are fixed for the whole run,
        # only time and next_arrival change per event.  The kernel's numpy
        # vectors are bound so that array-aware policies (and the state's own
        # scalar accessors) read them directly.
        state = self._state
        if state is None:
            state = self._state = SimulationState(
                instance=instance, time=time, jobs=jobs, next_arrival=None, active=active
            )
        else:
            state.instance = instance
            state.jobs = jobs
            state.active = active
        state.remaining_vector = remaining
        state.rate_vector = rate

        # Capability dispatch: array-aware policies read the pooled vectors
        # through decide_arrays and never touch the JobProgress mirrors, so
        # the per-window mirror writes are skipped for them (the vectors stay
        # authoritative either way — every float written is the same).
        array_mode = bool(getattr(scheduler, "array_aware", False))
        decide_fn = scheduler.decide_arrays if array_mode else scheduler.decide

        event_count = 0
        while True:
            event_count += 1
            if event_count > max_events:
                raise SimulationError(
                    f"simulation exceeded the event budget ({max_events}); "
                    f"policy {getattr(scheduler, 'name', scheduler)!r} may be cycling"
                )

            # Mark arrivals at the current time.
            while next_pos < n and arrival_times[next_pos] <= time + 1e-12:
                job_index = int(arrival_order[next_pos])
                jobs[job_index].arrived = True
                insort(active, job_index)
                events.append(EventRecord(time=time, kind="arrival", job_index=job_index))
                next_pos += 1

            next_arrival = float(arrival_times[next_pos]) if next_pos < n else None

            if not active:
                if next_arrival is None:
                    break  # every job has completed
                time = next_arrival
                continue

            state.time = time
            state.next_arrival = next_arrival
            decision: AllocationDecision = decide_fn(state)
            num_calls += 1
            if validate_decisions:
                decision.validate(state)

            # Progress-rate vector: accumulate share / cost per allocated job in
            # decision order (np.add.at applies duplicates sequentially, so the
            # floating-point sums match the seed engine's dict accumulation).
            rate.fill(0.0)
            pair_jobs: List[int] = []
            pair_contrib: List[float] = []
            for machine_index, share_list in decision.shares.items():
                for job_index, share in share_list:
                    pair_jobs.append(job_index)
                    pair_contrib.append(share / instance.cost(machine_index, job_index))
            if pair_jobs:
                np.add.at(rate, pair_jobs, pair_contrib)

            # Horizon: next arrival, earliest completion, requested wake-up.
            horizon = math.inf
            if next_arrival is not None:
                horizon = min(horizon, next_arrival)
            if decision.wake_up_at is not None:
                horizon = min(horizon, max(decision.wake_up_at, time + _MIN_STEP))
            running = np.nonzero(rate > 0.0)[0]
            if running.size:
                horizon = min(
                    horizon, float(np.min(time + remaining[running] / rate[running]))
                )

            if math.isinf(horizon):
                raise SimulationError(
                    f"policy {getattr(scheduler, 'name', scheduler)!r} left active jobs "
                    f"{active} unscheduled with no future arrival"
                )

            window = max(horizon - time, 0.0)

            # Count preemptions: a previously running (machine, job) pair that is
            # no longer allocated although the job is unfinished.
            assigned_now = {
                (machine_index, job_index)
                for machine_index, share_list in decision.shares.items()
                for job_index, _ in share_list
            }
            for machine_index, job_index in pieces.open_items():
                if (machine_index, job_index) not in assigned_now:
                    still_unfinished = remaining[job_index] > _COMPLETION_DUST
                    pieces.flush_machine(machine_index)
                    if still_unfinished:
                        num_preemptions += 1

            if window > 0:
                for machine_index, share_list in decision.shares.items():
                    exclusive = (
                        len(share_list) == 1 and share_list[0][1] >= _EXCLUSIVE_SHARE
                    )
                    if exclusive:
                        job_index, _share = share_list[0]
                        progressed = window / instance.cost(machine_index, job_index)
                        pieces.extend(machine_index, job_index, time, progressed)
                        value = max(0.0, remaining[job_index] - progressed)
                        remaining[job_index] = value
                        if not array_mode:
                            jobs[job_index].remaining_fraction = value
                    else:
                        # Time-shared window: realise the shares sequentially.
                        pieces.flush_machine(machine_index)
                        cursor = time
                        for job_index, share in share_list:
                            progressed = share * window / instance.cost(machine_index, job_index)
                            if progressed <= 0:
                                continue
                            duration = share * window
                            schedule.add_piece(
                                job_index, machine_index, cursor, cursor + duration, progressed
                            )
                            cursor += duration
                            value = max(0.0, remaining[job_index] - progressed)
                            remaining[job_index] = value
                            if not array_mode:
                                jobs[job_index].remaining_fraction = value

            if window > 0:
                # Snap exactly to the event time (advancing by `time + window`
                # would drift the clock by one ulp per event).
                time = horizon
            elif not bool(np.any(remaining[active] <= _COMPLETION_DUST)):
                # Degenerate zero-width window with nothing completing right now:
                # snap to the next real event instead of accumulating _MIN_STEP
                # dust.  (When a completion is pending it fires below at the
                # current, exact time.)
                time = next_arrival if next_arrival is not None else time + _MIN_STEP

            # Completions (ascending job index, exactly like the seed's scan).
            active_arr = np.asarray(active, dtype=int)
            for job_index in active_arr[remaining[active_arr] <= _COMPLETION_DUST]:
                job_index = int(job_index)
                progress = jobs[job_index]
                progress.remaining_fraction = 0.0
                remaining[job_index] = 0.0
                progress.completion_time = time
                active.remove(job_index)
                events.append(EventRecord(time=time, kind="completion", job_index=job_index))
                pieces.flush_job(job_index)

        # Close any remaining open pieces (there should be none, but be safe).
        pieces.flush_all()

        unfinished = [j for j in range(n) if jobs[j].completion_time is None]
        if unfinished:
            raise SimulationError(
                f"simulation ended with unfinished jobs: "
                f"{[instance.jobs[j].name for j in unfinished]}"
            )

        # Aggregate instrumentation after the loop: O(1) recorder calls per
        # run, nothing on the per-event path (injected via the process
        # default; NullRecorder makes this a single dead branch).
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("kernel.runs")
            recorder.count("kernel.decisions", float(num_calls))
            recorder.count("kernel.preemptions", float(num_preemptions))
            recorder.observe("kernel.jobs", float(n))

        return SimulationResult(
            scheduler_name=getattr(scheduler, "name", scheduler.__class__.__name__),
            schedule=schedule.compact(),
            events=events,
            num_scheduler_calls=num_calls,
            num_preemptions=num_preemptions,
            completion_times={j: jobs[j].completion_time for j in range(n)},
        )


def simulate_many(
    instances: Iterable[Instance],
    scheduler: Union[object, Callable[[], object]],
    *,
    validate_decisions: bool = True,
    max_events: Optional[int] = None,
    kernel: Optional[SimulationKernel] = None,
) -> List[SimulationResult]:
    """Simulate one policy over many instances, reusing kernel state.

    Parameters
    ----------
    instances:
        The instances to replay (e.g. one scenario over many seeds).
    scheduler:
        Either a scheduler object (its ``reset`` hook is invoked before every
        run) or a zero-argument factory returning a fresh scheduler per
        instance (anything callable without a ``decide`` attribute).
    validate_decisions, max_events:
        Forwarded to every run.
    kernel:
        Optional :class:`SimulationKernel` to (re)use; a private one is
        created by default.  All runs share its buffers, so instances of the
        same size allocate nothing after the first run.
    """
    kern = kernel if kernel is not None else SimulationKernel()
    is_factory = callable(scheduler) and not hasattr(scheduler, "decide")
    results: List[SimulationResult] = []
    for instance in instances:
        policy = scheduler() if is_factory else scheduler
        results.append(
            kern.run(
                instance,
                policy,
                validate_decisions=validate_decisions,
                max_events=max_events,
            )
        )
    return results
