"""Discrete-event simulation engine for on-line scheduling policies.

The engine replays an off-line instance *on line*: jobs become visible to the
policy only at their release dates, exactly as in the paper's "preliminary
simulations" (Section 5) where the on-line adaptation of the off-line
algorithm is compared against Minimum Completion Time.

Event loop
----------
1. The engine advances to the next event (arrival, completion or requested
   wake-up) and updates every job's remaining fraction according to the
   shares chosen at the previous event.
2. The policy is invoked with the current :class:`~repro.simulation.state.SimulationState`
   and returns an :class:`~repro.simulation.state.AllocationDecision`.
3. The engine computes when the next event occurs under those shares
   (the earliest of: next arrival, earliest job completion, requested
   wake-up) and loops.

Since PR 2 the per-event bookkeeping is array-backed: remaining-work and
progress-rate vectors, arrival/completion flags and the next-event
computation live in preallocated numpy arrays inside a reusable
:class:`~repro.simulation.kernel.SimulationKernel` (see that module for the
byte-for-byte compatibility contract with the seed engine, and for
:func:`~repro.simulation.kernel.simulate_many`, the batch entry point that
reuses the allocated state across runs).

Piece recording
---------------
Executed work is recorded as regular :class:`~repro.core.schedule.SchedulePiece`
objects so simulation results validate and measure exactly like off-line
optima:

* a machine running a *single* job at full share keeps one open piece that
  grows across consecutive windows (the common case for MCT, FIFO, SPT, SRPT
  and the plan-following policy);
* a machine that time-shares several jobs during a window has the window laid
  out sequentially (the standard realisation of a divisible allocation), which
  keeps machine timelines overlap-free.
"""

from __future__ import annotations

from typing import Optional

from ..core.instance import Instance
from .kernel import SimulationKernel
from .result import SimulationResult

__all__ = ["simulate"]


def simulate(
    instance: Instance,
    scheduler,
    *,
    validate_decisions: bool = True,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Simulate ``scheduler`` on ``instance`` and return the executed schedule.

    Parameters
    ----------
    instance:
        The scheduling instance; release dates drive the arrival events.
    scheduler:
        An object implementing the :class:`repro.heuristics.base.OnlineScheduler`
        protocol (``name``, ``divisible`` and ``decide(state)``).
    validate_decisions:
        When ``True`` (default) every allocation returned by the policy is
        checked before being applied; disable only in benchmarks where the
        policy is already trusted.
    max_events:
        Safety cap on the number of processed events; defaults to
        ``50 * n + 1000``.

    Raises
    ------
    SimulationError
        If the policy returns an invalid allocation or the simulation does
        not terminate within the event budget.

    See Also
    --------
    repro.simulation.kernel.simulate_many :
        Batch variant that reuses the kernel's allocated state across many
        instances (e.g. a scenario swept over seeds).
    """
    return SimulationKernel().run(
        instance,
        scheduler,
        validate_decisions=validate_decisions,
        max_events=max_events,
    )
