"""Result object of an on-line simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.schedule import Schedule, ScheduleMetrics

__all__ = ["SimulationResult", "EventRecord"]


@dataclass(frozen=True)
class EventRecord:
    """One event processed by the engine (kept for traces and debugging).

    Attributes
    ----------
    time:
        Event time.
    kind:
        ``"arrival"``, ``"completion"``, ``"wake-up"`` or ``"start"``.
    job_index:
        Job concerned by the event (``-1`` for pure wake-ups).
    """

    time: float
    kind: str
    job_index: int = -1


@dataclass
class SimulationResult:
    """Outcome of simulating an on-line policy over an instance.

    Attributes
    ----------
    scheduler_name:
        Name of the policy that produced the schedule.
    schedule:
        The complete executed schedule (validates like any off-line schedule).
    events:
        The chronological list of processed events.
    num_scheduler_calls:
        How many times the policy was invoked.
    num_preemptions:
        Number of times a job's execution on a machine was interrupted before
        the job was finished (a change of machine or a pause both count).
    completion_times:
        Completion time of every job.
    """

    scheduler_name: str
    schedule: Schedule
    events: List[EventRecord]
    num_scheduler_calls: int
    num_preemptions: int
    completion_times: Dict[int, float]

    def metrics(self) -> ScheduleMetrics:
        """Aggregate schedule metrics (makespan, flows, stretch)."""
        return self.schedule.metrics()

    @property
    def max_weighted_flow(self) -> float:
        """Maximum weighted flow achieved by the policy."""
        return self.schedule.max_weighted_flow

    @property
    def max_stretch(self) -> float:
        """Maximum stretch achieved by the policy."""
        return self.schedule.max_stretch

    @property
    def makespan(self) -> float:
        """Makespan achieved by the policy."""
        return self.schedule.makespan

    def summary(self) -> str:
        """One-line summary used by the examples and benches."""
        metrics = self.metrics()
        return (
            f"{self.scheduler_name:<24} max_wflow={metrics.max_weighted_flow:10.4f}  "
            f"max_stretch={metrics.max_stretch if metrics.max_stretch is not None else float('nan'):10.4f}  "
            f"makespan={metrics.makespan:10.3f}  preemptions={self.num_preemptions}"
        )
