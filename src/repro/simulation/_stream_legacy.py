"""Frozen legacy streaming loop: the rebuild-per-arrival reference.

This module preserves, essentially verbatim, the original
:class:`~repro.simulation.stream.StreamingSimulator` event loop in which the
active window materialised a fresh, fully-validated
:class:`~repro.core.instance.Instance` on every arrival and compaction
(``_Window.rebuild_instance``).  It plays the same role for the zero-copy
streaming core that ``benchmarks/_seed_engine.py`` plays for the batch
kernel: a full-fidelity reference whose outputs the fast path must match
byte for byte.

Do not optimise this file.  It is selected with
``StreamingSimulator(engine="rebuild")`` and exercised by:

* the per-policy byte-identity tests (view path vs rebuild path, at every
  compaction timing, and through trace replays);
* the quick-bench streaming row and ``benchmarks/bench_streaming.py``,
  which measure the view path's speedup *against this loop* and assert the
  ratio.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..exceptions import SimulationError
from ..obs.clock import wall_clock
from ..workload.streams import ArrivalEvent, WorkloadStream
from .kernel import SimulationKernel, _COMPLETION_DUST, _EXCLUSIVE_SHARE, _MIN_STEP
from .state import AllocationDecision, SimulationState

__all__ = ["run_rebuild"]


class _Window:
    """The active window: slots, pooled vectors and the policy-facing instance."""

    def __init__(self, kernel: SimulationKernel, machines: Tuple) -> None:
        self.kernel = kernel
        self.machines = machines
        self.num_machines = len(machines)
        self.capacity = 0
        self.jobs: List[Job] = []  # window slot -> Job
        self.global_ids: List[int] = []  # window slot -> arrival index
        self.min_costs: List[float] = []  # window slot -> fastest processing time
        self.live: List[bool] = []
        self.costs = np.empty((self.num_machines, 0))
        self.remaining: Optional[np.ndarray] = None
        self.rate: Optional[np.ndarray] = None
        self.mirrors: List = []
        self.instance: Optional[Instance] = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.jobs)

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self.capacity:
            return
        new_capacity = max(64, 2 * self.capacity, needed)
        width = len(self.jobs)
        saved_remaining = self.remaining[:width].copy() if self.remaining is not None else None
        remaining, rate, mirrors = self.kernel.bind_buffers(new_capacity)
        grown = np.empty((self.num_machines, new_capacity))
        grown[:, :width] = self.costs[:, :width]
        self.costs = grown
        if saved_remaining is not None:
            remaining[:width] = saved_remaining
        self.remaining = remaining
        self.rate = rate
        self.mirrors = mirrors
        # bind_buffers reset the mirrors; restore the live window's state.
        for slot in range(width):
            mirror = mirrors[slot]
            mirror.arrived = True
            mirror.remaining_fraction = float(remaining[slot])
            mirror.completion_time = None if self.live[slot] else 0.0
        self.capacity = new_capacity

    def admit(self, event: ArrivalEvent) -> int:
        """Append one arrival; returns its window index."""
        slot = len(self.jobs)
        self._ensure_capacity(slot + 1)
        self.jobs.append(event.job)
        self.global_ids.append(event.index)
        self.min_costs.append(event.min_cost)
        self.live.append(True)
        self.costs[:, slot] = event.costs
        self.remaining[slot] = 1.0
        self.rate[slot] = 0.0
        mirror = self.mirrors[slot]
        mirror.arrived = True
        mirror.remaining_fraction = 1.0
        mirror.completion_time = None
        return slot

    def rebuild_instance(self) -> Instance:
        """Materialise the policy-facing instance of the current window."""
        width = len(self.jobs)
        self.instance = Instance(
            jobs=tuple(self.jobs),
            machines=self.machines,
            costs=self.costs[:, :width],
        )
        return self.instance

    def dead_count(self) -> int:
        return sum(1 for alive in self.live if not alive)

    def compact(self) -> Dict[int, int]:
        """Drop dead slots; returns the old→new mapping of survivors."""
        survivors = [slot for slot, alive in enumerate(self.live) if alive]
        mapping = {old: new for new, old in enumerate(survivors)}
        width = len(survivors)
        self.costs[:, :width] = self.costs[:, survivors]
        self.remaining[:width] = self.remaining[survivors]
        self.rate[:width] = 0.0
        self.jobs = [self.jobs[slot] for slot in survivors]
        self.global_ids = [self.global_ids[slot] for slot in survivors]
        self.min_costs = [self.min_costs[slot] for slot in survivors]
        self.live = [True] * width
        for new in range(width):
            mirror = self.mirrors[new]
            mirror.arrived = True
            mirror.remaining_fraction = float(self.remaining[new])
            mirror.completion_time = None
        return mapping


def run_rebuild(
    simulator,
    stream: WorkloadStream,
    scheduler,
    *,
    max_arrivals: Optional[int] = None,
    record_jobs: bool = True,
):
    """Drive ``scheduler`` over ``stream`` with the legacy rebuild loop.

    ``simulator`` supplies the configuration (kernel, ``max_active``,
    ``validate_decisions``, ``compact_min``) and the loop returns the same
    :class:`~repro.simulation.stream.StreamResult` as the view path —
    byte-identical fingerprints included.
    """
    from .stream import StreamResult, _TRAJECTORY_CAP

    if max_arrivals is None and stream.length is None:
        raise SimulationError(
            "an open-ended stream needs max_arrivals (or a finite trace stream)"
        )
    label = stream.spec.label if stream.spec is not None else "trace"
    result = StreamResult(
        policy=getattr(scheduler, "name", scheduler.__class__.__name__),
        label=label,
        num_machines=stream.num_machines,
    )
    started = wall_clock()

    window = _Window(simulator.kernel, stream.machines)
    arrivals: Iterator[ArrivalEvent] = stream.jobs()
    pending: Optional[ArrivalEvent] = next(arrivals, None)
    if pending is None:
        result.elapsed_seconds = wall_clock() - started
        return result
    budget = max_arrivals if max_arrivals is not None else math.inf

    array_mode = bool(getattr(scheduler, "array_aware", False))
    decide_fn = scheduler.decide_arrays if array_mode else scheduler.decide

    active: List[int] = []  # sorted live window indices
    running: Dict[int, int] = {}  # machine -> exclusively running window slot
    time = pending.job.release_date
    result.start_time = time
    result.end_time = time

    flows: List[float] = []
    weighted: List[float] = []
    stretches: List[float] = []
    finished_ids: List[int] = []
    releases: List[float] = []
    queue_times: List[float] = []
    queue_lengths: List[int] = []
    sample_stride = 1

    state: Optional[SimulationState] = None
    reset_done = False
    pending_compact = False
    stall_events = 0

    def bind_state() -> SimulationState:
        width = len(window)
        return SimulationState(
            instance=window.instance,
            time=time,
            jobs=window.mirrors[:width],
            next_arrival=None,
            active=active,
            remaining_vector=window.remaining[:width],
            rate_vector=window.rate[:width],
        )

    while True:
        result.events += 1
        progressed_this_event = False
        time_before = time

        # ---- admit due arrivals --------------------------------------
        window_changed = False
        while (
            pending is not None
            and result.arrivals < budget
            and pending.job.release_date <= time + 1e-12
        ):
            slot = window.admit(pending)
            insort(active, slot)
            result.arrivals += 1
            window_changed = True
            progressed_this_event = True
            if result.arrivals % sample_stride == 0:
                queue_times.append(pending.job.release_date)
                queue_lengths.append(len(active))
                if len(queue_times) > _TRAJECTORY_CAP:
                    queue_times = queue_times[::2]
                    queue_lengths = queue_lengths[::2]
                    sample_stride *= 2
            pending = next(arrivals, None)
        if result.arrivals >= budget:
            pending = None

        result.peak_active = max(result.peak_active, len(active))
        result.peak_window = max(result.peak_window, len(window))
        if len(active) > simulator.max_active:
            result.saturated = True
            result.end_time = time
            break

        if window_changed:
            window.rebuild_instance()
            if not reset_done:
                if hasattr(scheduler, "reset"):
                    scheduler.reset(window.instance)
                reset_done = True
            elif pending_compact:
                scheduler.compact(window.instance, {})
                pending_compact = False
            else:
                scheduler.rebind(window.instance)
            state = bind_state()

        next_arrival = pending.job.release_date if pending is not None else None

        if not active:
            if next_arrival is None:
                result.end_time = time
                break  # drained
            time = next_arrival
            continue

        # ---- one decision window (kernel semantics) ------------------
        state.time = time
        state.next_arrival = next_arrival
        decision: AllocationDecision = decide_fn(state)
        result.decisions += 1
        if simulator.validate_decisions:
            decision.validate(state)

        remaining = window.remaining
        rate = window.rate
        width = len(window)
        rate[:width] = 0.0
        pair_jobs: List[int] = []
        pair_contrib: List[float] = []
        total_share = 0.0
        for machine_index, share_list in decision.shares.items():
            for job_index, share in share_list:
                pair_jobs.append(job_index)
                pair_contrib.append(share / window.costs[machine_index, job_index])
                total_share += share
        if pair_jobs:
            np.add.at(rate, pair_jobs, pair_contrib)

        horizon = math.inf
        if next_arrival is not None:
            horizon = min(horizon, next_arrival)
        if decision.wake_up_at is not None:
            horizon = min(horizon, max(decision.wake_up_at, time + _MIN_STEP))
        rate_view = rate[:width]
        running_jobs = np.nonzero(rate_view > 0.0)[0]
        if running_jobs.size:
            horizon = min(
                horizon,
                float(np.min(time + remaining[running_jobs] / rate_view[running_jobs])),
            )
        if math.isinf(horizon):
            raise SimulationError(
                f"policy {result.policy!r} left active jobs unscheduled "
                f"with no future arrival (window of {len(active)} live jobs)"
            )
        window_span = max(horizon - time, 0.0)

        # Preemptions: an exclusive (machine, job) run no longer allocated
        # although the job is unfinished — the kernel's open-piece rule.
        assigned_now = {
            (machine_index, job_index)
            for machine_index, share_list in decision.shares.items()
            for job_index, _ in share_list
        }
        for machine_index in list(running):
            job_index = running[machine_index]
            if (machine_index, job_index) not in assigned_now:
                if remaining[job_index] > _COMPLETION_DUST:
                    result.preemptions += 1
                del running[machine_index]

        if window_span > 0:
            result.busy_machine_seconds += window_span * total_share
            for machine_index, share_list in decision.shares.items():
                exclusive = (
                    len(share_list) == 1 and share_list[0][1] >= _EXCLUSIVE_SHARE
                )
                if exclusive:
                    job_index, _share = share_list[0]
                    running[machine_index] = job_index
                    progressed = window_span / window.costs[machine_index, job_index]
                    value = max(0.0, remaining[job_index] - progressed)
                    remaining[job_index] = value
                    if not array_mode:
                        window.mirrors[job_index].remaining_fraction = value
                else:
                    running.pop(machine_index, None)
                    for job_index, share in share_list:
                        progressed = (
                            share * window_span / window.costs[machine_index, job_index]
                        )
                        if progressed <= 0:
                            continue
                        value = max(0.0, remaining[job_index] - progressed)
                        remaining[job_index] = value
                        if not array_mode:
                            window.mirrors[job_index].remaining_fraction = value
            time = horizon
        elif not bool(np.any(remaining[active] <= _COMPLETION_DUST)):
            # Degenerate zero-width window with nothing completing now:
            # snap to the next real event (kernel semantics).
            time = next_arrival if next_arrival is not None else time + _MIN_STEP

        # ---- completions (ascending window index) --------------------
        active_arr = np.asarray(active, dtype=np.intp)
        completed_now = active_arr[remaining[active_arr] <= _COMPLETION_DUST]
        for job_index in completed_now:
            job_index = int(job_index)
            remaining[job_index] = 0.0
            mirror = window.mirrors[job_index]
            mirror.remaining_fraction = 0.0
            mirror.completion_time = time
            window.live[job_index] = False
            active.remove(job_index)
            for machine_index in [
                m for m, j in running.items() if j == job_index
            ]:
                del running[machine_index]
            result.completions += 1
            progressed_this_event = True
            if record_jobs:
                job = window.jobs[job_index]
                flow = time - job.release_date
                flows.append(flow)
                weighted.append(job.weight * flow)
                stretches.append(flow / window.min_costs[job_index])
                finished_ids.append(window.global_ids[job_index])
                releases.append(job.release_date)
        result.end_time = max(result.end_time, time)

        # ---- compaction ----------------------------------------------
        dead = len(window) - len(active)
        if dead >= max(simulator.compact_min, len(active)):
            mapping = window.compact()
            active = sorted(mapping[idx] for idx in active)
            running = {
                machine: mapping[idx]
                for machine, idx in running.items()
                if idx in mapping
            }
            if len(window) > 0:
                window.rebuild_instance()
                scheduler.compact(window.instance, mapping)
                state = bind_state()
            else:
                # Fully drained: the window is empty and an Instance
                # cannot be; notify the policy at the next admission
                # (its index-keyed state is entirely stale by then).
                pending_compact = True
            result.compactions += 1

        # ---- cycling guard -------------------------------------------
        if progressed_this_event or time > time_before:
            stall_events = 0
        else:
            stall_events += 1
            if stall_events > 50 * (len(window) + 10):
                raise SimulationError(
                    f"policy {result.policy!r} made no progress for "
                    f"{stall_events} events; it may be cycling"
                )

    result.elapsed_seconds = wall_clock() - started
    if record_jobs:
        result.completed_jobs = np.asarray(finished_ids, dtype=np.int64)
        result.flows = np.asarray(flows)
        result.weighted_flows = np.asarray(weighted)
        result.stretches = np.asarray(stretches)
        result.release_dates = np.asarray(releases)
    result.queue_times = np.asarray(queue_times)
    result.queue_lengths = np.asarray(queue_lengths, dtype=np.int64)
    return result
