"""Optional compiled inner kernels for the streaming event core (numba).

Gated exactly like the mypy runner in :mod:`repro.lint.typecheck`: numba is
**not** a dependency of the package — it is the ``repro[compiled]`` extra in
``setup.cfg`` — and when it is absent this module degrades explicitly:
:data:`COMPILED_AVAILABLE` is ``False``, the jitted entry points are ``None``
and :class:`~repro.simulation.stream.StreamingSimulator` falls back to the
pure-numpy path (requesting ``use_compiled=True`` then raises, it never
silently downgrades).  Tests that need the compiled path ``skipif`` on
:data:`COMPILED_AVAILABLE`, mirroring how the typecheck tier skips when mypy
is missing.

The kernels are **op-for-op twins** of the inline scalar code in the view
loop: the same IEEE-754 operations on the same float64 slots in the same
order, so jit compilation cannot change a single output bit — the same
contract :mod:`benchmarks._seed_engine` pins for the batch kernel.  The
un-jitted Python originals are exported as ``python_advance_pairs`` /
``python_apply_progress`` so tier-1 can assert twin-ness byte-for-byte even
on hosts without numba.

Determinism note: nothing here reads clocks or draws randomness — the gated
import is the only environment-dependent branch, and it only selects between
two byte-identical implementations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "COMPILED_AVAILABLE",
    "advance_pairs",
    "apply_progress",
    "python_advance_pairs",
    "python_apply_progress",
]

try:  # pragma: no cover - exercised only when the extra is installed
    from numba import njit  # type: ignore

    COMPILED_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError and broken installs alike
    njit = None  # type: ignore
    COMPILED_AVAILABLE = False


def _advance_pairs(
    prev: np.ndarray,
    pair_machines: np.ndarray,
    pair_jobs: np.ndarray,
    pair_shares: np.ndarray,
    costs: np.ndarray,
    remaining: np.ndarray,
    rate: np.ndarray,
    time: float,
    horizon: float,
) -> Tuple[float, float]:
    """Clear last window's rates, apply this decision's shares, bound the horizon.

    ``prev`` holds the job slots whose rate entries the previous window set
    (everything else is already zero); the pair arrays list this decision's
    ``(machine, job, share)`` triples in ``decision.shares`` iteration order.
    Returns ``(horizon, total_share)`` with ``horizon`` lowered to the
    earliest projected completion ``time + remaining[j] / rate[j]``.
    """
    for k in range(prev.shape[0]):
        rate[prev[k]] = 0.0
    total_share = 0.0
    for k in range(pair_jobs.shape[0]):
        job = pair_jobs[k]
        share = pair_shares[k]
        rate[job] += share / costs[pair_machines[k], job]
        total_share += share
    for k in range(pair_jobs.shape[0]):
        job = pair_jobs[k]
        job_rate = rate[job]
        if job_rate > 0.0:
            candidate = time + remaining[job] / job_rate
            if candidate < horizon:
                horizon = candidate
    return horizon, total_share


def _apply_progress(
    pair_machines: np.ndarray,
    pair_jobs: np.ndarray,
    pair_shares: np.ndarray,
    pair_exclusive: np.ndarray,
    costs: np.ndarray,
    remaining: np.ndarray,
    window_span: float,
) -> None:
    """Advance ``remaining`` over one window, pair by pair in decision order.

    Exclusive pairs progress by ``window_span / cost`` (the share is within
    dust of 1 and the legacy loop drops it); shared pairs progress by
    ``share * window_span / cost``.  Both clamp at zero — the identical
    sequence of float64 operations the inline scalar path performs.
    """
    for k in range(pair_jobs.shape[0]):
        job = pair_jobs[k]
        if pair_exclusive[k]:
            progressed = window_span / costs[pair_machines[k], job]
        else:
            progressed = pair_shares[k] * window_span / costs[pair_machines[k], job]
            if progressed <= 0.0:
                continue
        value = remaining[job] - progressed
        if value < 0.0:
            value = 0.0
        remaining[job] = value


#: Un-jitted originals, importable for twin-identity tests on any host.
python_advance_pairs = _advance_pairs
python_apply_progress = _apply_progress

advance_pairs: Optional[object]
apply_progress: Optional[object]
if COMPILED_AVAILABLE:  # pragma: no cover - exercised only with the extra
    advance_pairs = njit(cache=True, fastmath=False)(_advance_pairs)
    apply_progress = njit(cache=True, fastmath=False)(_apply_progress)
else:
    advance_pairs = None
    apply_progress = None
