"""Discrete-event simulation of on-line scheduling policies (substrate S10).

The paper's conclusion reports "preliminary simulations" in which an on-line
adaptation of the off-line algorithm outperforms classical heuristics such as
Minimum Completion Time.  This subpackage provides the simulator used to
reproduce that claim (experiment E4 in DESIGN.md).

Public API
----------
:func:`simulate`
    Run an on-line policy over an instance and obtain a validated schedule.
:class:`SimulationResult`
    Executed schedule, events, preemption counts and metrics.
:class:`SimulationState`, :class:`AllocationDecision`
    The engine/policy interface (see :mod:`repro.heuristics.base`).
"""

from .engine import simulate
from .result import EventRecord, SimulationResult
from .state import AllocationDecision, JobProgress, MachineShare, SimulationState

__all__ = [
    "AllocationDecision",
    "EventRecord",
    "JobProgress",
    "MachineShare",
    "SimulationResult",
    "SimulationState",
    "simulate",
]
