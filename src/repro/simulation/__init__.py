"""Discrete-event simulation of on-line scheduling policies (substrate S10).

The paper's conclusion reports "preliminary simulations" in which an on-line
adaptation of the off-line algorithm outperforms classical heuristics such as
Minimum Completion Time.  This subpackage provides the simulator used to
reproduce that claim (experiment E4 in DESIGN.md).

Public API
----------
:func:`simulate`
    Run an on-line policy over an instance and obtain a validated schedule.
:func:`simulate_many`, :class:`SimulationKernel`
    Batch entry point and the reusable array-backed kernel behind the event
    loop (buffers are shared across runs; see :mod:`repro.simulation.kernel`).
:class:`SimulationResult`
    Executed schedule, events, preemption counts and metrics.
:class:`SimulationState`, :class:`AllocationDecision`
    The engine/policy interface (see :mod:`repro.heuristics.base`).
:class:`StreamingSimulator`, :class:`StreamResult`, :class:`InstanceView`
    The rolling-horizon streaming runtime and the zero-copy instance facade
    its policies see (see :mod:`repro.simulation.window`).
"""

from .engine import simulate
from .kernel import SimulationKernel, simulate_many
from .result import EventRecord, SimulationResult
from .state import AllocationDecision, JobProgress, MachineShare, SimulationState
from .stream import StreamingSimulator, StreamResult
from .window import InstanceView, StreamWindow

__all__ = [
    "AllocationDecision",
    "EventRecord",
    "InstanceView",
    "JobProgress",
    "MachineShare",
    "SimulationKernel",
    "SimulationResult",
    "SimulationState",
    "StreamResult",
    "StreamWindow",
    "StreamingSimulator",
    "simulate",
    "simulate_many",
]
