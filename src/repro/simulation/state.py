"""Simulation state shared between the discrete-event engine and the schedulers.

The engine (:mod:`repro.simulation.engine`) advances virtual time between
*events* (job arrivals, job completions, scheduler wake-ups).  At every event
it hands the scheduling policy a read-only :class:`SimulationState` and gets
back an :class:`AllocationDecision`: the machine shares to apply until the
next event, plus an optional wake-up request.

The share model is the divisible-load model of the paper: during a window a
machine ``i`` may devote a fraction ``s`` of its time to job ``j``, making the
job progress at rate ``s / c[i, j]`` (fraction of the job per second).
Non-divisible policies simply return one job per machine with share 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.instance import Instance
from ..exceptions import SimulationError

__all__ = ["JobProgress", "SimulationState", "AllocationDecision", "MachineShare"]

#: A machine's allocation: list of ``(job_index, share)`` pairs, shares summing to at most 1.
MachineShare = List[Tuple[int, float]]


@dataclass
class JobProgress:
    """Dynamic state of one job during the simulation.

    Attributes
    ----------
    job_index:
        Index of the job in the instance.
    remaining_fraction:
        Fraction of the job still to be processed (1.0 at arrival, 0.0 when
        done).
    arrived:
        Whether the job's release date has passed.
    completion_time:
        Set when the job finishes.
    """

    job_index: int
    remaining_fraction: float = 1.0
    arrived: bool = False
    completion_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        """Return ``True`` once the job has been fully processed."""
        return self.completion_time is not None


@dataclass
class SimulationState:
    """Snapshot handed to the scheduling policy at every event.

    The array-backed kernel pools one state object per kernel and updates it
    in place between events, so policies must read what they need inside
    ``decide`` and must not retain the object (or its ``jobs``/``active``
    lists) across calls.

    Attributes
    ----------
    instance:
        The full scheduling instance (costs, weights, release dates).
    time:
        Current simulation time.
    jobs:
        Per-job dynamic state, indexed like ``instance.jobs``.
    next_arrival:
        Release date of the next not-yet-arrived job (``None`` when all jobs
        have arrived).  On-line policies are allowed to *peek* at this value
        only to bound their planning horizon; clairvoyant policies that
        exploit it further should say so in their documentation.
    active:
        Optional precomputed sorted list of active job indices.  The engine
        maintains this incrementally and passes it in so that
        :meth:`active_jobs` does not rescan every job at every event; states
        built by hand may leave it ``None``.
    remaining_vector, rate_vector:
        The array-backed kernel's pooled numpy vectors, bound once per run:
        per-job remaining fractions (authoritative — identical to the
        ``jobs`` mirrors whenever those are maintained) and the progress
        rates applied during the *previous* window.  Array-aware policies
        (``array_aware = True`` on the scheduler) read these directly; for
        such policies the kernel skips the per-event ``jobs`` mirror updates
        entirely, so the mirrors must not be read — the scalar accessors
        below already prefer the vector when it is bound.  States built by
        hand leave both ``None`` and fall back to the mirrors.
    remaining_list:
        Python-float twin of ``remaining_vector``, bound only by the
        streaming fast core's pure path (which maintains both in lockstep —
        the list holds the very doubles the vector stores).  Policies may
        read it in scalar ranking loops to skip per-element float64 boxing;
        everywhere else it is ``None``.
    """

    instance: Instance
    time: float
    jobs: List[JobProgress]
    next_arrival: Optional[float]
    active: Optional[List[int]] = None
    remaining_vector: Optional[np.ndarray] = None
    rate_vector: Optional[np.ndarray] = None
    remaining_list: Optional[List[float]] = None

    # ------------------------------------------------------------------ #
    def active_jobs(self) -> List[int]:
        """Indices of jobs that have arrived and are not finished."""
        if self.active is not None:
            return list(self.active)
        return [
            progress.job_index
            for progress in self.jobs
            if progress.arrived and not progress.finished
        ]

    def remaining_fraction(self, job_index: int) -> float:
        """Remaining fraction of job ``job_index``."""
        if self.remaining_vector is not None:
            return float(self.remaining_vector[job_index])
        return self.jobs[job_index].remaining_fraction

    def remaining_work(self, job_index: int, machine_index: int) -> float:
        """Remaining processing time of job ``job_index`` if run only on ``machine_index``."""
        return self.remaining_fraction(job_index) * self.instance.cost(
            machine_index, job_index
        )

    def fastest_remaining_work(self, job_index: int) -> float:
        """Remaining processing time of the job on its fastest machine."""
        return self.remaining_fraction(job_index) * self.instance.min_cost(job_index)

    def current_weighted_flow(self, job_index: int) -> float:
        """Weighted flow the job would have if it completed right now."""
        job = self.instance.jobs[job_index]
        return job.weight * (self.time - job.release_date)


@dataclass
class AllocationDecision:
    """A policy's answer: machine shares to apply until the next event.

    Attributes
    ----------
    shares:
        Mapping ``machine_index -> [(job_index, share), ...]``.  Shares on a
        machine must be positive and sum to at most 1; jobs must be active
        and runnable on the machine.  Machines absent from the mapping stay
        idle.
    wake_up_at:
        Optional absolute time at which the policy wants to be invoked again
        even if no arrival/completion happens before (used by plan-following
        policies).
    all_exclusive:
        Structural guarantee set by
        :func:`~repro.heuristics.base.exclusive_allocation`: every entry of
        ``shares`` is a single full ``(job, 1.0)`` share.  The streaming
        fast core specialises its advance/progress arithmetic on it; a
        hand-built decision may leave it ``False`` even when the shape
        happens to match (only the generic path is taken then).
    """

    shares: Dict[int, MachineShare] = field(default_factory=dict)
    wake_up_at: Optional[float] = None
    all_exclusive: bool = False

    def validate(self, state: SimulationState, tol: float = 1e-9) -> None:
        """Check the decision against the current state; raise :class:`SimulationError`."""
        instance = state.instance
        active = set(state.active_jobs())
        for machine_index, share_list in self.shares.items():
            if not (0 <= machine_index < instance.num_machines):
                raise SimulationError(f"allocation references unknown machine #{machine_index}")
            total = 0.0
            for job_index, share in share_list:
                if not (0 <= job_index < instance.num_jobs):
                    raise SimulationError(f"allocation references unknown job #{job_index}")
                if job_index not in active:
                    raise SimulationError(
                        f"allocation gives machine #{machine_index} to job #{job_index}, "
                        "which is not active"
                    )
                if share <= tol:
                    raise SimulationError(
                        f"allocation share {share} for job #{job_index} must be positive"
                    )
                cost = instance.cost(machine_index, job_index)
                if cost == float("inf"):
                    raise SimulationError(
                        f"job #{job_index} cannot run on machine #{machine_index} "
                        "(required databank missing)"
                    )
                total += share
            if total > 1.0 + 1e-6:
                raise SimulationError(
                    f"machine #{machine_index} is allocated {total:.6g} > 1 of its capacity"
                )
        if self.wake_up_at is not None and self.wake_up_at < state.time - tol:
            raise SimulationError(
                f"wake-up requested at {self.wake_up_at}, before current time {state.time}"
            )

    def job_rates(self, state: SimulationState) -> Dict[int, float]:
        """Return the progress rate (fraction per second) of every allocated job."""
        rates: Dict[int, float] = {}
        for machine_index, share_list in self.shares.items():
            for job_index, share in share_list:
                cost = state.instance.cost(machine_index, job_index)
                rates[job_index] = rates.get(job_index, 0.0) + share / cost
        return rates
