"""``repro.lint`` — the project-invariant static analyzer.

Every correctness claim of this reproduction bottoms out in determinism
invariants: byte-identical kernels, SeedSequence-derived randomness,
content-addressed store cells keyed by ``CODE_EPOCH``.  Until this subsystem
they were enforced only *dynamically* — by benches and round-trip tests, and
only on the paths those happen to exercise.  ``repro.lint`` enforces them
statically, over every module, on every run:

* **determinism rules** (:mod:`repro.lint.determinism`) — no wall-clock
  reads, no unseeded/global-state RNG, no bare-set iteration feeding ordered
  output, no exact float equality in hot-path branches;
* **digest-epoch guard** (:mod:`repro.lint.epoch`) — a declared manifest of
  semantics-bearing modules and a git-diff-aware check that edits to them
  bump ``CODE_EPOCH``;
* **policy-protocol conformance** (:mod:`repro.lint.protocol`) — every
  registered policy defines its streaming hooks, honours its ``array_aware``
  promise, and declares a parameter schema its constructor accepts;
* **observability defaults** (:mod:`repro.lint.observability`) — runtime
  modules never construct or install concrete metrics recorders, so the
  disabled-mode zero-overhead contract of :mod:`repro.obs` cannot silently
  regress.

Rules live in a registry mirroring ``heuristics.registry``
(:mod:`repro.lint.registry`); intentional violations are allowlisted, with
mandatory justifications, in the committed ``.reprolint.json`` baseline
(:mod:`repro.lint.baseline`).  Run it as ``repro-sched lint`` or
``python -m repro.lint``; the tier-1 suite runs the full analyzer as a
standing gate (``tests/lint/test_selfcheck.py``), and
``benchmarks/run_quick_bench.py`` records finding counts and analyzer
wall-clock next to the perf rows.
"""

from .baseline import Baseline, BaselineEntry, load_baseline
from .engine import LintReport, find_project_root, run_lint
from .findings import ERROR, NOTE, SEVERITIES, WARNING, Finding
from .registry import (
    Rule,
    RuleSpec,
    available_rules,
    register_rule,
    rule_spec,
    unregister_rule,
)
from .sources import ModuleSource, ProjectContext, load_project
from .typecheck import TypecheckResult, mypy_available, run_typecheck

# Importing the rule modules registers the built-in rules.
from . import determinism as _determinism  # noqa: F401  (registration side effect)
from . import epoch as _epoch  # noqa: F401
from . import observability as _observability  # noqa: F401
from . import protocol as _protocol  # noqa: F401
from .epoch import DIGEST_MODULE, SEMANTIC_MANIFEST, changed_semantic_paths

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DIGEST_MODULE",
    "ERROR",
    "Finding",
    "LintReport",
    "ModuleSource",
    "NOTE",
    "ProjectContext",
    "Rule",
    "RuleSpec",
    "SEMANTIC_MANIFEST",
    "SEVERITIES",
    "TypecheckResult",
    "WARNING",
    "available_rules",
    "changed_semantic_paths",
    "find_project_root",
    "load_baseline",
    "load_project",
    "mypy_available",
    "register_rule",
    "rule_spec",
    "run_lint",
    "run_typecheck",
    "unregister_rule",
]
