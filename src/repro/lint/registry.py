"""Rule registry — the analyzer's mirror of ``heuristics.registry``.

Every check the analyzer performs is a registered :class:`RuleSpec`, the
exact pattern the policy runtime uses for :class:`~repro.heuristics.registry.
PolicySpec`: a module-level name → spec mapping, a factory per spec, and
``register_rule`` for downstream additions.  The engine resolves rules by
name, so the CLI can select subsets (``--rules``) and the tests can exercise
one rule in isolation.

Rules come in two scopes:

* ``"module"`` — the rule's :meth:`Rule.check_module` is called once per
  parsed source module (optionally restricted to path prefixes via
  :attr:`RuleSpec.applies_to`);
* ``"project"`` — the rule's :meth:`Rule.check_project` is called once with
  the whole :class:`~repro.lint.sources.ProjectContext` (cross-file
  invariants: the digest-epoch guard, policy-protocol conformance).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .findings import ERROR, Finding, severity_rank

__all__ = [
    "Rule",
    "RuleSpec",
    "available_rules",
    "register_rule",
    "rule_spec",
    "unregister_rule",
]


class Rule(abc.ABC):
    """Base class of every analyzer rule.

    Subclasses override :meth:`check_module` (scope ``"module"``) or
    :meth:`check_project` (scope ``"project"``); the engine calls the one
    matching the registered scope.  ``self.spec`` is stamped by the engine
    before any check runs, so rules emit findings under their registered
    name and severity via :meth:`finding`.
    """

    spec: "RuleSpec"

    def check_module(self, module, project) -> Iterable[Finding]:
        """Check one parsed module (module-scope rules)."""
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        """Check the whole project (project-scope rules)."""
        return ()

    def finding(self, path: str, line: int, message: str, context: str = "") -> Finding:
        """Build a finding under this rule's registered name and severity."""
        return Finding(
            rule=self.spec.name,
            severity=self.spec.severity,
            path=path,
            line=line,
            message=message,
            context=context,
        )


@dataclass(frozen=True)
class RuleSpec:
    """One registered analyzer rule.

    Attributes
    ----------
    name:
        Registry key; what ``--rules`` and baseline entries reference.
    scope:
        ``"module"`` (per-file AST check) or ``"project"`` (cross-file).
    factory:
        Callable returning a ready :class:`Rule` instance.
    severity:
        Default severity of the rule's findings.
    description:
        One line for ``repro-sched lint --list`` and the docs.
    applies_to:
        For module-scope rules, path prefixes (project-root-relative, POSIX)
        the rule is restricted to; empty means every analyzed module.
    """

    name: str
    scope: str
    factory: Callable[[], Rule]
    severity: str = ERROR
    description: str = ""
    applies_to: Tuple[str, ...] = ()

    def applies_to_path(self, relpath: str) -> bool:
        """Whether a module path falls inside the rule's restriction."""
        if not self.applies_to:
            return True
        return any(relpath.startswith(prefix) for prefix in self.applies_to)


_RULES: Dict[str, RuleSpec] = {}


def register_rule(spec: RuleSpec, *, replace: bool = False) -> RuleSpec:
    """Add a rule to the registry (``replace=True`` to override a name)."""
    if spec.scope not in ("module", "project"):
        raise ValueError(f"rule scope must be 'module' or 'project', got {spec.scope!r}")
    severity_rank(spec.severity)  # validates
    if not replace and spec.name in _RULES:
        raise ValueError(f"rule {spec.name!r} is already registered (pass replace=True)")
    _RULES[spec.name] = spec
    return spec


def unregister_rule(name: str) -> None:
    """Remove a rule from the registry (no-op when absent)."""
    _RULES.pop(name, None)


def rule_spec(name: str) -> RuleSpec:
    """Return the :class:`RuleSpec` registered under ``name``."""
    try:
        return _RULES[name]
    except KeyError:
        raise KeyError(
            f"unknown rule {name!r}; available: {', '.join(available_rules())}"
        ) from None


def available_rules(scope: Optional[str] = None) -> List[str]:
    """Sorted names of registered rules, optionally filtered by scope."""
    return sorted(
        name for name, spec in _RULES.items() if scope is None or spec.scope == scope
    )
