"""Policy-protocol conformance: cross-file invariants of the policy runtime.

The streaming simulator and the array-backed kernel call optional hooks on
every registered policy (``rebind``/``compact`` when the window grows or
compacts, ``decide_arrays`` when ``array_aware`` is set) and campaigns sweep
parameters through each policy's :class:`~repro.heuristics.registry.
PolicyParam` schema.  All of these contracts span files — a policy lives in
one module, its registration in another, the caller in a third — so a
violation used to surface only when a simulation happened to exercise the
hook, if at all.

These rules check the contracts *statically*: they introspect the registered
policy classes' definitions (no simulation runs) and anchor every finding to
the class's own source line.

* ``policy-explicit-hooks`` — every registered on-line scheduler class must
  *define* ``rebind`` and ``compact`` somewhere in its own MRO (above the
  abstract :class:`~repro.heuristics.base.OnlineScheduler` defaults).  The
  base defaults are safe but implicit; the streaming runtime's byte-identity
  guarantees rest on each policy having made the choice deliberately.
* ``policy-array-aware`` — ``array_aware = True`` promises the kernel an
  array path: the class must define ``decide_arrays`` (inheriting the base's
  scalar delegation silently re-enters the path the flag claims to replace).
* ``policy-param-schema`` — every :class:`PolicyParam` name must be a
  keyword the policy's constructor accepts, else variant resolution builds
  kwargs the factory rejects at sweep time.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from .findings import Finding
from .registry import Rule, RuleSpec, register_rule

__all__ = [
    "PolicyArrayAwareRule",
    "PolicyExplicitHooksRule",
    "PolicyParamSchemaRule",
]


def _registered_specs():
    """(name, spec) pairs of the live policy registry."""
    from ..heuristics import registry as policies

    return [(name, policies.policy_spec(name)) for name in policies.available_policies()]


def _policy_class(spec) -> Optional[type]:
    """The concrete class behind a spec, when it is introspectable."""
    if inspect.isclass(spec.scheduler_factory):
        return spec.scheduler_factory
    if inspect.isclass(spec.factory):
        return spec.factory
    return None


def _anchor(cls: type, project) -> Tuple[str, int]:
    """(relpath, line) of a class definition, project-relative when possible."""
    try:
        path = Path(inspect.getsourcefile(cls) or "")
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return cls.__module__, 0
    try:
        relpath = path.resolve().relative_to(project.root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return relpath, line


def _defines(cls: type, method: str, *, above: type) -> bool:
    """Whether ``cls`` defines ``method`` in its MRO above the ``above`` base."""
    for klass in cls.__mro__:
        if klass is above:
            break
        if method in vars(klass):
            return True
    return False


class _RegistryRule(Rule):
    """Shared plumbing: iterate registered policy classes.

    ``specs`` injects a fixed (name, spec) list for tests; the default reads
    the live registry at check time.
    """

    def __init__(self, specs=None) -> None:
        self._specs = specs

    def _policy_classes(self):
        specs = self._specs if self._specs is not None else _registered_specs()
        from ..heuristics.base import OnlineScheduler

        for name, spec in specs:
            cls = _policy_class(spec)
            if cls is None:
                continue
            yield name, spec, cls, OnlineScheduler


class PolicyExplicitHooksRule(_RegistryRule):
    """Every registered on-line scheduler defines ``rebind`` and ``compact``."""

    def check_project(self, project) -> Iterable[Finding]:
        for name, spec, cls, base in self._policy_classes():
            if not (isinstance(cls, type) and issubclass(cls, base)):
                continue
            for hook, consequence in (
                (
                    "rebind",
                    "window growth falls back to the base no-op without the "
                    "policy having asserted that no per-instance state needs "
                    "refreshing",
                ),
                (
                    "compact",
                    "window compaction falls back to reset(), which forgets "
                    "cross-event state (plans, commitments) and makes the "
                    "streamed behaviour depend on when compaction happens",
                ),
            ):
                if not _defines(cls, hook, above=base):
                    path, line = _anchor(cls, project)
                    yield self.finding(
                        path,
                        line,
                        f"policy {name!r} ({cls.__name__}) does not define "
                        f"{hook}(): {consequence} — define it explicitly "
                        "(a documented no-op is fine when that is the choice)",
                        context=f"class {cls.__name__}",
                    )


class PolicyArrayAwareRule(_RegistryRule):
    """``array_aware = True`` implies a ``decide_arrays`` definition."""

    def check_project(self, project) -> Iterable[Finding]:
        for name, spec, cls, base in self._policy_classes():
            if not (isinstance(cls, type) and issubclass(cls, base)):
                continue
            if not getattr(cls, "array_aware", False):
                continue
            if not _defines(cls, "decide_arrays", above=base):
                path, line = _anchor(cls, project)
                yield self.finding(
                    path,
                    line,
                    f"policy {name!r} ({cls.__name__}) sets array_aware=True "
                    "but does not define decide_arrays(): the kernel would "
                    "dispatch to the base delegation, silently re-entering "
                    "the scalar path the flag claims to replace — define "
                    "decide_arrays (an explicit scalar delegation documents "
                    "that the accessors are already vector-backed)",
                    context=f"class {cls.__name__}",
                )


class PolicyParamSchemaRule(_RegistryRule):
    """Every ``PolicyParam`` name is a constructor keyword of its policy."""

    def check_project(self, project) -> Iterable[Finding]:
        for name, spec, cls, base in self._policy_classes():
            if not spec.params:
                continue
            try:
                signature = inspect.signature(cls.__init__)
            except (TypeError, ValueError):
                continue
            parameters = signature.parameters
            if any(
                parameter.kind is inspect.Parameter.VAR_KEYWORD
                for parameter in parameters.values()
            ):
                continue
            accepted = {
                key
                for key, parameter in parameters.items()
                if key != "self"
                and parameter.kind
                in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY,
                )
            }
            for param in spec.params:
                if param.name not in accepted:
                    path, line = _anchor(cls, project)
                    yield self.finding(
                        path,
                        line,
                        f"policy {name!r} declares sweepable parameter "
                        f"{param.name!r} but {cls.__name__}.__init__ accepts "
                        f"only ({', '.join(sorted(accepted)) or 'nothing'}): "
                        "variant resolution would build kwargs the factory "
                        "rejects at sweep time",
                        context=f"class {cls.__name__}",
                    )


register_rule(
    RuleSpec(
        name="policy-explicit-hooks",
        scope="project",
        factory=PolicyExplicitHooksRule,
        severity="error",
        description="registered schedulers define rebind() and compact() explicitly",
    )
)
register_rule(
    RuleSpec(
        name="policy-array-aware",
        scope="project",
        factory=PolicyArrayAwareRule,
        severity="error",
        description="array_aware=True policies define decide_arrays()",
    )
)
register_rule(
    RuleSpec(
        name="policy-param-schema",
        scope="project",
        factory=PolicyParamSchemaRule,
        severity="error",
        description="PolicyParam schema names match the policy constructor's kwargs",
    )
)
