"""Observability rule: concrete recorders are injected, never constructed.

The zero-overhead-when-disabled contract of :mod:`repro.obs` rests on one
convention: instrumented runtime modules (simulation, core, lp, analysis,
store, gripps) take their metrics sink by *injection* — a constructor
argument defaulting to ``None`` resolved against
:func:`repro.obs.metrics.get_recorder`, or a scoped
:func:`repro.obs.metrics.collecting` installed by the driver.  The moment
an instrumented module constructs a :class:`~repro.obs.metrics.MetricsRecorder`
(or installs one process-wide) itself, metrics silently turn on for every
caller and the disabled-mode ≤ 3 % overhead bound of
``benchmarks/bench_obs_overhead.py`` can regress without any test noticing.

``obs-recorder-default`` therefore flags, inside the instrumented subtrees:

* any call constructing ``MetricsRecorder`` (however imported — the check
  is on the resolved *or* literal dotted tail, so relative imports and
  aliases are covered), and
* any call to ``install_recorder`` (drivers outside the runtime subtrees —
  the CLI, benches, ``repro.obs`` itself — are the legal installers).

``NullRecorder`` / ``NULL_RECORDER`` remain freely usable: a no-op default
cannot regress the disabled path.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .findings import Finding
from .registry import Rule, RuleSpec, register_rule

__all__ = ["ObsRecorderDefaultRule"]

#: Call-target tails that turn metrics on when reached from runtime code.
_FORBIDDEN_TAILS = frozenset({"MetricsRecorder", "install_recorder"})


class ObsRecorderDefaultRule(Rule):
    """Flag concrete-recorder construction/installation in runtime modules."""

    def check_module(self, module, project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            tail = None
            if isinstance(func, ast.Name):
                tail = func.id
            elif isinstance(func, ast.Attribute):
                tail = func.attr
            if tail not in _FORBIDDEN_TAILS:
                continue
            if tail == "MetricsRecorder":
                message = (
                    "concrete recorder constructed in an instrumented module: "
                    "recorders are injected (constructor argument, "
                    "obs.metrics.collecting(), or the process default) — "
                    "NullRecorder is the only legal module-level default"
                )
            else:
                message = (
                    "install_recorder() called from an instrumented module: "
                    "only drivers (CLI, benches, repro.obs scopes) may switch "
                    "the process-wide recorder — accept an injected recorder "
                    "or use obs.metrics.collecting() at the call boundary"
                )
            yield self.finding(
                module.relpath,
                node.lineno,
                message,
                context=module.line_context(node.lineno),
            )


register_rule(
    RuleSpec(
        name="obs-recorder-default",
        scope="module",
        factory=ObsRecorderDefaultRule,
        severity="error",
        description=(
            "instrumented modules never construct or install concrete "
            "recorders (NullRecorder is the only default)"
        ),
        applies_to=(
            "src/repro/analysis/",
            "src/repro/core/",
            "src/repro/gripps/",
            "src/repro/heuristics/",
            "src/repro/lp/",
            "src/repro/simulation/",
            "src/repro/store/",
            "src/repro/workload/",
        ),
    )
)
