"""Source loading: the parsed project the rules walk.

A :class:`ProjectContext` is a project root (usually the repository root)
plus the parsed modules of one package subtree (usually ``src/repro``).
Modules are parsed once; every rule shares the same ASTs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .findings import ERROR, Finding

__all__ = ["ModuleSource", "ProjectContext", "load_project"]


@dataclass
class ModuleSource:
    """One parsed source module."""

    path: Path
    relpath: str  # project-root-relative, POSIX separators
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line_context(self, lineno: int) -> str:
        """Stripped text of a 1-based source line (the baseline fingerprint)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass
class ProjectContext:
    """The analyzed project: root directory plus parsed package modules."""

    root: Path
    package_root: Path
    modules: List[ModuleSource] = field(default_factory=list)
    #: Files that failed to parse (surfaced as findings by the engine).
    parse_failures: List[Finding] = field(default_factory=list)
    _by_relpath: Dict[str, ModuleSource] = field(default_factory=dict, repr=False)

    def module(self, relpath: str) -> Optional[ModuleSource]:
        """Look a module up by its project-root-relative path."""
        return self._by_relpath.get(relpath)

    def add(self, module: ModuleSource) -> None:
        self.modules.append(module)
        self._by_relpath[module.relpath] = module


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_project(
    root: Path,
    package_root: Optional[Path] = None,
    *,
    paths: Optional[Iterable[Path]] = None,
) -> ProjectContext:
    """Parse a package subtree into a :class:`ProjectContext`.

    Parameters
    ----------
    root:
        Project root; findings and baseline entries use paths relative to it.
    package_root:
        Directory whose ``*.py`` files are analyzed (default:
        ``root / "src" / "repro"``).
    paths:
        Explicit file/directory subset to analyze instead of the whole
        package (the CLI's positional arguments).
    """
    root = Path(root)
    if package_root is None:
        package_root = root / "src" / "repro"
    package_root = Path(package_root)
    project = ProjectContext(root=root, package_root=package_root)

    if paths is not None:
        files: List[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            else:
                files.append(entry)
    else:
        files = sorted(package_root.rglob("*.py")) if package_root.is_dir() else []

    for path in files:
        relpath = _relpath(path, root)
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, ValueError) as error:
            project.parse_failures.append(
                Finding(
                    rule="lint-parse",
                    severity=ERROR,
                    path=relpath,
                    line=getattr(error, "lineno", 0) or 0,
                    message=f"cannot analyze module: {error}",
                )
            )
            continue
        project.add(
            ModuleSource(
                path=path,
                relpath=relpath,
                text=text,
                tree=tree,
                lines=text.splitlines(),
            )
        )
    return project
