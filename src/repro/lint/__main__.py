"""``python -m repro.lint`` — the analyzer as a standalone module.

Delegates to the ``repro-sched lint`` subcommand so both entry points share
one argument surface and one exit-code contract.
"""

from __future__ import annotations

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
