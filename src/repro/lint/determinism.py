"""Determinism rules: the AST checks behind the repository's core claim.

Every result in this reproduction is supposed to be a pure function of
(instance content, policy, seed, ``CODE_EPOCH``) — that is what makes store
cells resumable and benches byte-comparable.  These rules fence the three
classic ways Python code silently breaks that property:

* ``wall-clock`` — reading the host clock (``time.time``,
  ``time.perf_counter``, ``datetime.now``, …).  Legitimate uses (throughput
  stats, provenance timestamps) are few and baselined with justifications.
* ``unseeded-rng`` — randomness not derived from an explicit seed:
  ``np.random.default_rng()`` with no seed, the legacy global
  ``np.random.*`` functions (hidden shared state), and the stdlib ``random``
  module's global functions.
* ``set-iteration`` — iterating directly over a freshly built ``set`` /
  ``frozenset`` where the iteration order can leak into ordered output
  (Python sets iterate in hash order, which varies across processes for
  ``str`` keys).  Restricted to the core/simulation/store subtrees, where
  ordering feeds schedules and persisted records.
* ``float-equality`` — ``==`` / ``!=`` against a float literal in a boolean
  context inside the numeric hot paths (core/lp/simulation).  The PR 5
  simplex defect (a 1e-10 coefficient selecting a suboptimal vertex) is the
  canonical instance of the bug class; exact-zero tests that are correct by
  construction are baselined, not waived wholesale.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from .findings import Finding, WARNING
from .registry import Rule, RuleSpec, register_rule

__all__ = [
    "FloatEqualityRule",
    "SetIterationRule",
    "UnseededRngRule",
    "WallClockRule",
]

#: ``time`` module attributes that read the host clock.
_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)
#: ``time`` functions that read the host clock *only when called without a
#: time argument* (``time.localtime()`` vs ``time.localtime(ts)``).
_CLOCK_WHEN_NO_TIME_ARG = frozenset({"localtime", "gmtime", "ctime", "asctime"})
#: ``datetime``/``date`` classmethods that read the host clock.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _implicit_clock_read(attr: str, node: ast.Call) -> bool:
    """Whether calling ``time.<attr>`` with this arg shape reads the clock.

    ``localtime``/``gmtime``/``ctime``/``asctime`` fall back to "now" when
    given no time value; ``strftime(fmt)`` with only a format string does
    the same.  With an explicit time tuple/seconds argument they are pure
    conversions and stay unflagged.
    """
    if attr in _CLOCK_WHEN_NO_TIME_ARG:
        return not node.args and not node.keywords
    if attr == "strftime":
        return len(node.args) == 1 and not node.keywords
    return False

#: Legacy global-state ``numpy.random`` functions (shared hidden RNG).
_NP_GLOBAL_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "pareto",
        "beta",
        "gamma",
        "binomial",
    }
)
#: Stdlib ``random`` module global functions (module-level Mersenne state).
_STDLIB_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "paretovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "seed",
        "getrandbits",
        "randbytes",
    }
)


class _ImportTable:
    """Per-module import aliases the determinism rules resolve names through."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}  # local name -> imported module
        self.from_imports: Dict[str, Tuple[str, str]] = {}  # local -> (module, attr)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def aliases_of(self, module: str) -> Set[str]:
        """Local names bound to ``module`` by a plain ``import``."""
        return {
            local for local, imported in self.module_aliases.items() if imported == module
        }

    def names_from(self, module: str) -> Dict[str, str]:
        """Local names bound by ``from module import ...`` → original attr."""
        return {
            local: attr
            for local, (mod, attr) in self.from_imports.items()
            if mod == module
        }


def _call_target(node: ast.Call) -> Tuple[List[str], ast.AST]:
    """Dotted-name chain of a call's function (``np.random.default_rng`` →
    ``["np", "random", "default_rng"]``); empty for non-name targets."""
    chain: List[str] = []
    func: ast.AST = node.func
    while isinstance(func, ast.Attribute):
        chain.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        chain.append(func.id)
        chain.reverse()
        return chain, func
    return [], func


#: The single module allowed to read the host clock: every other site goes
#: through its ``wall_clock()`` / ``utc_now()`` accessors (PR 8).
_SANCTIONED_CLOCK_MODULE = "src/repro/obs/clock.py"


class WallClockRule(Rule):
    """Flag host-clock reads (``time.time()``, ``datetime.now()``, …).

    Implicit reads count too: ``time.localtime()`` / ``gmtime()`` /
    ``ctime()`` / ``asctime()`` with no time argument, and
    ``time.strftime(fmt)`` with only a format string, all silently fall
    back to "now" — journal timestamps must instead flow through
    ``repro.obs.clock.unix_time()``.

    ``repro.obs.clock`` is the one sanctioned exemption — it *is* the
    accessor every legitimate wall-clock consumer (throughput stats,
    provenance timestamps, the phase profiler) must call, so the baseline
    carries no wall-clock entries at all.
    """

    def check_module(self, module, project) -> Iterable[Finding]:
        if module.relpath == _SANCTIONED_CLOCK_MODULE:
            return
        imports = _ImportTable(module.tree)
        time_aliases = imports.aliases_of("time")
        datetime_module_aliases = imports.aliases_of("datetime")
        time_fns = {
            local
            for local, attr in imports.names_from("time").items()
            if attr in _CLOCK_ATTRS
        }
        time_implicit_fns = {
            local: attr
            for local, attr in imports.names_from("time").items()
            if attr in _CLOCK_WHEN_NO_TIME_ARG or attr == "strftime"
        }
        datetime_classes = {
            local
            for local, attr in imports.names_from("datetime").items()
            if attr in ("datetime", "date")
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain, _ = _call_target(node)
            if not chain:
                continue
            flagged = None
            if len(chain) == 2 and chain[0] in time_aliases and chain[1] in _CLOCK_ATTRS:
                flagged = f"{chain[0]}.{chain[1]}()"
            elif (
                len(chain) == 2
                and chain[0] in time_aliases
                and _implicit_clock_read(chain[1], node)
            ):
                flagged = f"{chain[0]}.{chain[1]}(...)"
            elif len(chain) == 1 and chain[0] in time_fns:
                flagged = f"{chain[0]}()"
            elif len(chain) == 1 and _implicit_clock_read(
                time_implicit_fns.get(chain[0], ""), node
            ):
                flagged = f"{chain[0]}(...)"
            elif (
                len(chain) == 2
                and chain[0] in datetime_classes
                and chain[1] in _DATETIME_ATTRS
            ):
                flagged = f"{chain[0]}.{chain[1]}()"
            elif (
                len(chain) == 3
                and chain[0] in datetime_module_aliases
                and chain[1] in ("datetime", "date")
                and chain[2] in _DATETIME_ATTRS
            ):
                flagged = ".".join(chain) + "()"
            if flagged is not None:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"wall-clock read {flagged}: results must be pure functions "
                    "of (content, seed, epoch) — derive times from simulation "
                    "state, or go through repro.obs.clock (wall_clock() for "
                    "throughput stats, utc_now() for provenance timestamps)",
                    context=module.line_context(node.lineno),
                )


class UnseededRngRule(Rule):
    """Flag randomness that is not derived from an explicit seed."""

    def check_module(self, module, project) -> Iterable[Finding]:
        imports = _ImportTable(module.tree)
        numpy_aliases = imports.aliases_of("numpy")
        np_random_aliases = imports.aliases_of("numpy.random") | {
            local
            for local, attr in imports.names_from("numpy").items()
            if attr == "random"
        }
        random_aliases = imports.aliases_of("random")
        stdlib_fns = {
            local
            for local, attr in imports.names_from("random").items()
            if attr in _STDLIB_RANDOM_FNS
        }
        ctor_names = {
            local
            for local, attr in imports.names_from("numpy.random").items()
            if attr in ("default_rng", "RandomState")
        }

        def has_seed(call: ast.Call) -> bool:
            if call.args:
                seed = call.args[0]
                return not (isinstance(seed, ast.Constant) and seed.value is None)
            for keyword in call.keywords:
                if keyword.arg == "seed":
                    return not (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is None
                    )
            return False

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain, _ = _call_target(node)
            if not chain:
                continue
            dotted = ".".join(chain)
            is_np_random = (
                len(chain) >= 2 and chain[0] in numpy_aliases and chain[1] == "random"
            ) or (len(chain) >= 1 and chain[0] in np_random_aliases)
            tail = chain[-1]
            if is_np_random and tail in ("default_rng", "RandomState", "Generator"):
                if not has_seed(node):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"unseeded RNG {dotted}(): entropy comes from the OS, so "
                        "two runs differ — pass a seed (SeedSequence-derived)",
                        context=module.line_context(node.lineno),
                    )
            elif len(chain) == 1 and chain[0] in ctor_names:
                if not has_seed(node):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"unseeded RNG {dotted}(): pass an explicit seed",
                        context=module.line_context(node.lineno),
                    )
            elif is_np_random and tail in _NP_GLOBAL_FNS and len(chain) > 1:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"global-state RNG {dotted}(): the legacy numpy.random "
                    "functions share one hidden RNG whose state depends on "
                    "call order — use a seeded Generator instead",
                    context=module.line_context(node.lineno),
                )
            elif len(chain) == 2 and chain[0] in random_aliases:
                if tail in _STDLIB_RANDOM_FNS:
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"global-state RNG {dotted}(): the stdlib random module "
                        "functions share one hidden RNG — use a seeded "
                        "random.Random or numpy Generator",
                        context=module.line_context(node.lineno),
                    )
                elif tail == "Random" and not node.args:
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"unseeded RNG {dotted}(): pass an explicit seed",
                        context=module.line_context(node.lineno),
                    )
            elif len(chain) == 1 and chain[0] in stdlib_fns:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"global-state RNG {dotted}(): use a seeded random.Random "
                    "or numpy Generator",
                    context=module.line_context(node.lineno),
                )


def _is_bare_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a freshly built set (literal/comp/call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    """Flag direct iteration over a freshly built set (hash-order leak)."""

    def check_module(self, module, project) -> Iterable[Finding]:
        iterables: List[Tuple[ast.AST, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append((node.iter, node.lineno))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    iterables.append((comp.iter, comp.iter.lineno))
        for iterable, lineno in iterables:
            if _is_bare_set_expression(iterable):
                yield self.finding(
                    module.relpath,
                    lineno,
                    "iteration over a bare set: Python set order is hash order "
                    "(process-dependent for str keys) — wrap in sorted(...) "
                    "before the order can reach schedules or persisted output",
                    context=module.line_context(lineno),
                )


def _float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` against float literals in boolean contexts."""

    def check_module(self, module, project) -> Iterable[Finding]:
        # Collect every node living inside a boolean-decision subtree: the
        # tests of if/while/assert/ternary, comprehension filters, operands
        # of boolean operators and not, and arguments of all()/any().
        boolean_roots: List[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                boolean_roots.append(node.test)
            elif isinstance(node, ast.Assert):
                boolean_roots.append(node.test)
            elif isinstance(node, ast.BoolOp):
                boolean_roots.extend(node.values)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                boolean_roots.append(node.operand)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    boolean_roots.extend(comp.ifs)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("all", "any")
            ):
                boolean_roots.extend(node.args)
        in_boolean_context: Set[int] = set()
        for root in boolean_roots:
            for node in ast.walk(root):
                in_boolean_context.add(id(node))

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare) or id(node) not in in_boolean_context:
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _float_literal(left) or _float_literal(right):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        "exact float equality in a hot-path branch: rounding "
                        "makes the comparison unstable (the PR 5 simplex bug "
                        "class) — compare against a tolerance from "
                        "core.tolerances, or baseline a correct-by-construction "
                        "exact-zero test with a justification",
                        context=module.line_context(node.lineno),
                    )
                    break


register_rule(
    RuleSpec(
        name="wall-clock",
        scope="module",
        factory=WallClockRule,
        severity="error",
        description="no host-clock reads outside the repro.obs.clock accessors",
    )
)
register_rule(
    RuleSpec(
        name="unseeded-rng",
        scope="module",
        factory=UnseededRngRule,
        severity="error",
        description="all randomness flows from explicit seeds (no global RNG state)",
    )
)
register_rule(
    RuleSpec(
        name="set-iteration",
        scope="module",
        factory=SetIterationRule,
        severity="warning",
        description="no bare-set iteration where hash order could reach ordered output",
        applies_to=(
            "src/repro/core/",
            "src/repro/simulation/",
            "src/repro/store/",
        ),
    )
)
register_rule(
    RuleSpec(
        name="float-equality",
        scope="module",
        factory=FloatEqualityRule,
        severity="warning",
        description="no exact float-literal ==/!= in core/lp/simulation branches",
        applies_to=(
            "src/repro/core/",
            "src/repro/lp/",
            "src/repro/simulation/",
        ),
    )
)
