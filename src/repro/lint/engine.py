"""The analyzer engine: load sources once, run every rule, apply the baseline.

:func:`run_lint` is the one entry point the CLI, the tier-1 self-test and
``run_quick_bench.py`` all share: it parses the package, instantiates the
registered rules, collects findings, subtracts the baseline, and returns a
:class:`LintReport` with the verdict and the reporters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..obs.clock import wall_clock
from .baseline import DEFAULT_BASELINE_NAME, Baseline, load_baseline
from .findings import ERROR, Finding, severity_rank
from .registry import available_rules, rule_spec
from .sources import ProjectContext, load_project

__all__ = ["LintReport", "find_project_root", "run_lint"]


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)  # every finding, ordered
    new_findings: List[Finding] = field(default_factory=list)  # not baselined
    baselined_findings: List[Finding] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)
    modules_analyzed: int = 0
    elapsed_seconds: float = 0.0

    def counts_by_severity(self, *, new_only: bool = True) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.new_findings if new_only else self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def failed(self, fail_on: str = ERROR) -> bool:
        """Whether any non-baselined finding meets the ``fail_on`` threshold."""
        threshold = severity_rank(fail_on)
        return any(
            severity_rank(finding.severity) >= threshold
            for finding in self.new_findings
        )

    # -- reporters --------------------------------------------------------- #
    def render_text(self, *, show_baselined: bool = False) -> str:
        lines: List[str] = []
        for finding in self.new_findings:
            lines.append(
                f"{finding.location}: {finding.severity}: "
                f"[{finding.rule}] {finding.message}"
            )
            if finding.context:
                lines.append(f"    {finding.context}")
        if show_baselined:
            for finding in self.baselined_findings:
                lines.append(
                    f"{finding.location}: baselined: [{finding.rule}] "
                    f"{finding.justification or finding.message}"
                )
        counts = self.counts_by_severity()
        summary = ", ".join(f"{count} {name}(s)" for name, count in sorted(counts.items()))
        lines.append(
            f"repro.lint: {len(self.new_findings)} finding(s) ({summary or 'none'}), "
            f"{len(self.baselined_findings)} baselined, "
            f"{self.modules_analyzed} module(s), {len(self.rules_run)} rule(s), "
            f"{self.elapsed_seconds:.2f}s"
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "new_findings": [finding.as_dict() for finding in self.new_findings],
            "baselined_findings": [
                finding.as_dict() for finding in self.baselined_findings
            ],
            "counts": self.counts_by_severity(),
            "rules_run": self.rules_run,
            "modules_analyzed": self.modules_analyzed,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def find_project_root(start: Optional[Path] = None) -> Path:
    """Locate the project root: the nearest ancestor holding ``.git`` or
    ``src/repro`` (falling back to the package's own checkout layout)."""
    if start is None:
        start = Path(__file__).resolve().parents[3]  # src/repro/lint -> repo root
    start = Path(start).resolve()
    for candidate in (start, *start.parents):
        if (candidate / ".git").exists() or (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def run_lint(
    root: Optional[Path] = None,
    *,
    package_root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
    diff_range: Optional[str] = None,
) -> LintReport:
    """Run the analyzer and return its :class:`LintReport`.

    Parameters
    ----------
    root:
        Project root (default: discovered from the installed package).
    package_root:
        Package subtree to analyze (default: ``root/src/repro``).
    paths:
        Explicit file/directory subset instead of the whole package.
    rules:
        Rule-name subset (default: every registered rule).
    baseline / baseline_path:
        A pre-parsed :class:`Baseline`, or the path of one to load; with
        neither given, ``root/.reprolint.json`` is used when present.
    diff_range:
        Git range handed to diff-aware rules (the epoch guard); default is
        the working tree vs ``HEAD``.
    """
    started = wall_clock()
    if root is None:
        root = find_project_root()
    root = Path(root)
    project = load_project(root, package_root, paths=paths)

    if baseline is None:
        if baseline_path is None:
            candidate = root / DEFAULT_BASELINE_NAME
            baseline = load_baseline(candidate) if candidate.exists() else Baseline()
        else:
            baseline = load_baseline(Path(baseline_path))

    selected = list(rules) if rules is not None else available_rules()
    raw_findings: List[Finding] = list(project.parse_failures)
    for name in selected:
        spec = rule_spec(name)
        rule = spec.factory()
        rule.spec = spec
        if diff_range is not None and hasattr(rule, "diff_range"):
            rule.diff_range = diff_range
        if spec.scope == "module":
            for module in project.modules:
                if spec.applies_to_path(module.relpath):
                    raw_findings.extend(rule.check_module(module, project))
        else:
            raw_findings.extend(rule.check_project(project))

    raw_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    new, suppressed = baseline.apply(raw_findings)
    new.extend(baseline.hygiene_findings())

    report = LintReport(
        findings=new + suppressed,
        new_findings=new,
        baselined_findings=suppressed,
        rules_run=selected,
        modules_analyzed=len(project.modules),
        elapsed_seconds=wall_clock() - started,
    )
    return report
