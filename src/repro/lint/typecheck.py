"""Gated mypy runner behind ``repro-sched lint --types``.

The project's type-checking policy lives in ``setup.cfg``: strict on the two
modules whose invariants are load-bearing for persistence and replanning
(``repro.store`` and ``repro.core.replanning``), permissive everywhere else.
mypy is an *optional* toolchain dependency — offline containers may not ship
it — so this runner degrades explicitly: when mypy is importable it runs and
its verdict decides the exit code; when it is not, the check reports itself
as skipped (exit 0) instead of failing environments that cannot install it.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

__all__ = ["TypecheckResult", "run_typecheck"]

#: What ``--types`` checks, in dependency order.
TYPECHECK_TARGETS = ("src/repro/store", "src/repro/core/replanning.py")


@dataclass
class TypecheckResult:
    """Outcome of one ``--types`` run."""

    available: bool
    returncode: int = 0
    output: str = ""
    targets: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Success — including the explicit skip when mypy is absent."""
        return not self.available or self.returncode == 0


def mypy_available() -> bool:
    """Whether the mypy toolchain is importable in this environment."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_typecheck(root: Path, targets: Optional[List[str]] = None) -> TypecheckResult:
    """Run mypy over the strict targets (or report an explicit skip)."""
    targets = list(targets) if targets is not None else list(TYPECHECK_TARGETS)
    if not mypy_available():
        return TypecheckResult(
            available=False,
            output=(
                "mypy is not installed in this environment; type check skipped "
                "(install mypy to enforce the setup.cfg policy: strict on "
                "repro.store and repro.core.replanning)"
            ),
            targets=targets,
        )
    # setup.cfg pins the target packages (`packages = repro.store,
    # repro.core.replanning`), so mypy needs no path arguments here.
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "setup.cfg"],
        cwd=str(root),
        capture_output=True,
        text=True,
    )
    return TypecheckResult(
        available=True,
        returncode=completed.returncode,
        output=(completed.stdout + completed.stderr).strip(),
        targets=targets,
    )
