"""Findings and severities of the project-invariant analyzer.

A :class:`Finding` is one violation of one registered rule, anchored to a
file and line.  Findings carry a *context fingerprint* — the stripped text of
the flagged source line — so the committed baseline (see
:mod:`repro.lint.baseline`) matches them stably across unrelated edits that
merely shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

__all__ = ["ERROR", "NOTE", "SEVERITIES", "WARNING", "Finding", "severity_rank"]

#: Severity levels, weakest to strongest.  ``--fail-on`` picks the threshold.
NOTE = "note"
WARNING = "warning"
ERROR = "error"
SEVERITIES = (NOTE, WARNING, ERROR)


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (higher is more severe)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {', '.join(SEVERITIES)}"
        ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    rule:
        Name of the rule that produced the finding (see
        :mod:`repro.lint.registry`).
    severity:
        ``"error"``, ``"warning"`` or ``"note"``.
    path:
        Project-root-relative POSIX path of the offending file.
    line:
        1-based line number (0 for whole-file findings).
    message:
        Human-readable description of the violation.
    context:
        Stripped text of the offending source line — the stable fingerprint
        baseline entries match on.
    baselined:
        ``True`` when a baseline entry suppressed the finding.
    justification:
        The matching baseline entry's justification (empty otherwise).
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    context: str = ""
    baselined: bool = field(default=False, compare=False)
    justification: str = field(default="", compare=False)

    def suppressed_by(self, justification: str) -> "Finding":
        """A copy of the finding marked as baseline-suppressed."""
        return replace(self, baselined=True, justification=justification)

    @property
    def location(self) -> str:
        """``path:line`` (just ``path`` for whole-file findings)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (what ``lint --format json`` emits)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
            "baselined": self.baselined,
            "justification": self.justification,
        }
