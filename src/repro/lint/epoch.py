"""The digest-epoch guard: semantics-bearing edits must bump ``CODE_EPOCH``.

Store cells are content-addressed by ``record_digest(workload, policy,
params, CODE_EPOCH)``; the epoch is the *only* part of that key that tracks
the code.  Changing the simulation kernel, a policy, the LP stack, the
replanning runtime, the workload generators or the stream machinery changes
what a cell's value *means* — resuming an old store after such a change
without an epoch bump silently serves stale results as if they were current.

This rule makes the folklore explicit: :data:`SEMANTIC_MANIFEST` declares the
modules whose content the digests implicitly depend on, and the guard asks
git whether any of them changed (working tree vs ``HEAD`` by default, or an
explicit ``--diff-range A..B``) without a corresponding ``CODE_EPOCH``
change in :data:`DIGEST_MODULE`.

The guard is diff-aware, not semantic: a docstring-only edit to a manifest
module still fires.  That coarseness is deliberate — the reviewer decides
whether to bump (safe: stale cells recompute, ``store gc`` prunes them) or,
for a provably metric-neutral edit, to record a one-line justification in
the baseline.
"""

from __future__ import annotations

import fnmatch
import subprocess
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .findings import Finding
from .registry import Rule, RuleSpec, register_rule

__all__ = [
    "DIGEST_MODULE",
    "EpochGuardRule",
    "SEMANTIC_MANIFEST",
    "changed_semantic_paths",
]

#: Glob patterns (project-root-relative, POSIX) of the modules whose
#: semantics the store digests implicitly depend on.  Everything here feeds
#: either the event loop, a policy decision, an LP solve, the workload
#: content behind a (scenario, seed) key, or a persisted metric.
SEMANTIC_MANIFEST: Tuple[str, ...] = (
    "src/repro/simulation/*.py",  # kernel, engine, streaming simulator, state
    "src/repro/heuristics/*.py",  # every policy + the registry's variant labels
    "src/repro/lp/*.py",  # both LP backends and the lowering
    "src/repro/core/*.py",  # probes, replanning, milestones, formulations
    "src/repro/workload/*.py",  # generators/scenarios/streams behind workload keys
    "src/repro/analysis/campaign.py",  # record normalisation
    "src/repro/analysis/stream_sweep.py",  # stream-cell reports
    "src/repro/analysis/steady_state.py",  # batch-means estimators in reports
)

#: Manifest exceptions: matched by the globs above but semantics-free.
SEMANTIC_EXCLUDES: Tuple[str, ...] = (
    "src/repro/core/gantt.py",  # ASCII rendering only; never feeds a metric
)

#: Where the epoch lives; a bump is a diff hunk touching ``CODE_EPOCH``.
DIGEST_MODULE = "src/repro/store/digest.py"


def _run_git(root: Path, *args: str) -> Optional[str]:
    """Run git in ``root``; ``None`` when git or the repository is absent."""
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def _changed_paths(root: Path, diff_range: Optional[str]) -> Optional[List[str]]:
    """Paths changed in the range (or vs HEAD + untracked, for the worktree)."""
    if diff_range:
        output = _run_git(root, "diff", "--name-only", diff_range)
        if output is None:
            return None
        return [line.strip() for line in output.splitlines() if line.strip()]
    status = _run_git(root, "status", "--porcelain")
    if status is None:
        return None
    paths: List[str] = []
    for line in status.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        # Renames are reported as "old -> new"; both sides changed.
        paths.extend(part.strip() for part in entry.split(" -> "))
    return paths


def changed_semantic_paths(changed: Iterable[str]) -> List[str]:
    """The subset of ``changed`` matching the semantic manifest."""
    semantic: List[str] = []
    for path in changed:
        if any(fnmatch.fnmatch(path, pattern) for pattern in SEMANTIC_EXCLUDES):
            continue
        if any(fnmatch.fnmatch(path, pattern) for pattern in SEMANTIC_MANIFEST):
            semantic.append(path)
    return sorted(set(semantic))


def _epoch_bumped(root: Path, diff_range: Optional[str]) -> bool:
    """Whether the diff includes a change to the ``CODE_EPOCH`` assignment."""
    if diff_range:
        output = _run_git(root, "diff", "-U0", diff_range, "--", DIGEST_MODULE)
    else:
        output = _run_git(root, "diff", "-U0", "HEAD", "--", DIGEST_MODULE)
    if not output:
        return False
    return any(
        line.startswith("+") and not line.startswith("+++") and "CODE_EPOCH" in line
        for line in output.splitlines()
    )


class EpochGuardRule(Rule):
    """Fire when manifest modules changed without a ``CODE_EPOCH`` bump.

    Parameters
    ----------
    diff_range:
        Optional git range (``"A..B"``); default compares the working tree
        (including staged and untracked files) against ``HEAD``.
    """

    def __init__(self, diff_range: Optional[str] = None) -> None:
        self.diff_range = diff_range

    def check_project(self, project) -> Iterable[Finding]:
        changed = _changed_paths(project.root, self.diff_range)
        if changed is None:
            # Not a git checkout (sdist, tarball, no git binary): the guard
            # has nothing to compare against and stays silent by design.
            return
        semantic = changed_semantic_paths(changed)
        if not semantic or _epoch_bumped(project.root, self.diff_range):
            return
        scope = self.diff_range or "working tree vs HEAD"
        for path in semantic:
            yield self.finding(
                path,
                0,
                f"semantics-bearing module changed ({scope}) without a "
                f"CODE_EPOCH bump in {DIGEST_MODULE}: stored cells keyed by "
                "the old epoch would silently resume as current — bump the "
                "epoch (stale cells recompute; 'store gc' prunes them) or "
                "baseline this file with a metric-neutrality justification",
            )


register_rule(
    RuleSpec(
        name="epoch-guard",
        scope="project",
        factory=EpochGuardRule,
        severity="error",
        description="manifest-module edits require a CODE_EPOCH bump (git-diff-aware)",
    )
)
