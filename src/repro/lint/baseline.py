"""The committed allowlist of intentional rule violations.

The baseline file (``.reprolint.json`` at the project root) records every
finding the project deliberately keeps, one entry per violation, each with a
mandatory one-line justification.  The analyzer subtracts baselined findings
from its verdict, and *polices the baseline itself*: an entry without a
justification, or one that no longer matches any finding, produces a
``lint-baseline`` finding — the allowlist can neither silently grow nor
silently rot.

Entry matching is content-based, not line-based: an entry names the rule,
the file, and (optionally) the stripped text of the offending line
(``context``).  Entries survive unrelated edits that shift line numbers;
an entry without ``context`` suppresses every finding of that rule in that
file (use sparingly, for per-file waivers).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .findings import ERROR, WARNING, Finding

__all__ = ["Baseline", "BaselineEntry", "load_baseline"]

#: Name of the baseline file at the project root.
DEFAULT_BASELINE_NAME = ".reprolint.json"


@dataclass
class BaselineEntry:
    """One allowlisted violation."""

    rule: str
    path: str
    context: str = ""
    justification: str = ""
    #: Set by :meth:`Baseline.apply` when a finding matched this entry.
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        """Whether this entry suppresses ``finding``."""
        if self.rule != finding.rule or self.path != finding.path:
            return False
        return not self.context or self.context == finding.context

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "justification": self.justification,
        }
        if self.context:
            payload["context"] = self.context
        return payload


@dataclass
class Baseline:
    """The parsed baseline file."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: Optional[Path] = None

    def apply(self, findings: Iterable[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, suppressed) against this baseline.

        Marks matched entries ``used``; call :meth:`hygiene_findings`
        afterwards to surface unjustified and stale entries.
        """
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            entry = next((e for e in self.entries if e.matches(finding)), None)
            if entry is None:
                new.append(finding)
            else:
                entry.used = True
                suppressed.append(finding.suppressed_by(entry.justification))
        return new, suppressed

    def hygiene_findings(self) -> List[Finding]:
        """Baseline-policing findings: unjustified entries and stale entries."""
        location = str(self.path) if self.path is not None else DEFAULT_BASELINE_NAME
        findings: List[Finding] = []
        for entry in self.entries:
            if not entry.justification.strip():
                findings.append(
                    Finding(
                        rule="lint-baseline",
                        severity=ERROR,
                        path=location,
                        line=0,
                        message=(
                            f"baseline entry for rule {entry.rule!r} in "
                            f"{entry.path!r} has no justification — every "
                            "allowlisted violation must say why it is intentional"
                        ),
                        context=entry.context,
                    )
                )
            if not entry.used:
                findings.append(
                    Finding(
                        rule="lint-baseline",
                        severity=WARNING,
                        path=location,
                        line=0,
                        message=(
                            f"stale baseline entry: rule {entry.rule!r} in "
                            f"{entry.path!r} no longer matches any finding — "
                            "delete the entry"
                        ),
                        context=entry.context,
                    )
                )
        return findings


def load_baseline(path: Path) -> Baseline:
    """Parse a baseline file (missing file → empty baseline)."""
    if not path.exists():
        return Baseline(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"malformed baseline {path}: expected an object with 'entries'")
    entries = []
    for raw in payload["entries"]:
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    context=raw.get("context", ""),
                    justification=raw.get("justification", ""),
                )
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed baseline entry in {path}: {raw!r}") from error
    return Baseline(entries=entries, path=path)
