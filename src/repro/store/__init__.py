"""Persistent experiment store: content-addressed campaign results.

The store subsystem makes campaign results durable and queryable:

* :mod:`repro.store.digest` — deterministic cell digests over
  (workload key, policy, params, code epoch);
* :mod:`repro.store.store` — the SQLite-backed
  :class:`~repro.store.store.ExperimentStore` (runs, records, headline
  metrics, bulk writer) and :func:`~repro.store.store.diff_runs`.

The campaign dispatcher streams into a store via
``stream_campaign(..., store=...)`` and skips already-present digests with
``resume=True``; ``repro-sched store ls/show/diff`` queries it from the CLI.
"""

from .digest import CODE_EPOCH, canonical_digest, instance_digest, record_digest
from .store import (
    BulkWriter,
    ExperimentStore,
    GcReport,
    RunInfo,
    StoredRecord,
    diff_run_cells,
    diff_runs,
)

__all__ = [
    "BulkWriter",
    "CODE_EPOCH",
    "ExperimentStore",
    "GcReport",
    "RunInfo",
    "StoredRecord",
    "canonical_digest",
    "diff_run_cells",
    "diff_runs",
    "instance_digest",
    "record_digest",
]
