"""SQLite-backed, content-addressed experiment store.

The store is the durable layer under the campaign dispatcher: every campaign
cell (one (workload, policy) measurement) is written under its content digest
(:mod:`repro.store.digest`), so

* a re-run of the same sweep inserts nothing new (``INSERT OR IGNORE``),
* a killed sweep resumed with ``resume=True`` computes only the missing
  digests,
* two runs — today's and last PR's — can be diffed policy by policy.

Schema (``user_version`` 2)
---------------------------
``runs``
    One row per campaign dispatch: label, creation time, JSON metadata,
    JSON throughput stats, and a ``completed`` flag (0 for killed runs).
``records``
    One row per *computed* cell, keyed by its content digest.  ``run_id``
    records provenance (the run that computed it); off-line rows carry the
    exact LP ``objective`` so resumed runs normalise against bit-identical
    optima; ``extra`` (added in v2, nullable JSON) carries subsystem
    payloads such as the streaming steady-state reports — v1 stores are
    migrated in place with an additive ``ALTER TABLE``.
``run_records``
    Membership: which cells (computed *or* reused) belong to which run, in
    emission order — a resumed run therefore shows its full record set.
``metrics``
    Headline per-(run, policy) aggregates, filled by :meth:`finish_run` and
    consumed by ``repro-sched store diff`` / :func:`diff_runs`.

Writes go through :class:`BulkWriter`, which batches ``executemany`` inserts
and commits incrementally, so a killed process loses at most one batch.
"""

from __future__ import annotations

import json
import math
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.campaign import CampaignRecord
from ..analysis.regression import CellDiff, CrossRunDiff, cross_run_cell_diff, cross_run_diff
from ..exceptions import StoreError
from ..obs.clock import utc_now, utc_timestamp
from ..obs.metrics import get_recorder
from .digest import CODE_EPOCH

__all__ = [
    "BulkWriter",
    "ExperimentStore",
    "GcReport",
    "RunInfo",
    "StoredRecord",
    "diff_run_cells",
    "diff_runs",
]

_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    label      TEXT NOT NULL,
    created_at TEXT NOT NULL,
    completed  INTEGER NOT NULL DEFAULT 0,
    meta       TEXT NOT NULL DEFAULT '{}',
    stats      TEXT
);
CREATE TABLE IF NOT EXISTS records (
    digest            TEXT PRIMARY KEY,
    run_id            INTEGER NOT NULL REFERENCES runs(run_id),
    workload          TEXT NOT NULL,
    workload_key      TEXT NOT NULL,
    scenario          TEXT,
    seed              INTEGER,
    policy            TEXT NOT NULL,
    code_epoch        TEXT NOT NULL,
    max_weighted_flow REAL NOT NULL,
    max_stretch       REAL NOT NULL,
    makespan          REAL NOT NULL,
    normalised        REAL NOT NULL,
    preemptions       INTEGER NOT NULL,
    objective         REAL,
    extra             TEXT
);
CREATE INDEX IF NOT EXISTS idx_records_policy ON records(policy);
CREATE TABLE IF NOT EXISTS run_records (
    run_id   INTEGER NOT NULL REFERENCES runs(run_id),
    position INTEGER NOT NULL,
    digest   TEXT NOT NULL REFERENCES records(digest),
    PRIMARY KEY (run_id, position)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    policy TEXT NOT NULL,
    metric TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, policy, metric)
);
"""

#: Max variables per ``IN (...)`` query (SQLite's historical limit is 999).
_LOOKUP_CHUNK = 500


@dataclass(frozen=True)
class StoredRecord:
    """One persisted campaign cell (a :class:`CampaignRecord` plus identity)."""

    digest: str
    run_id: int
    workload: str
    workload_key: str
    scenario: Optional[str]
    seed: Optional[int]
    policy: str
    code_epoch: str
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    normalised: float
    preemptions: int
    objective: Optional[float] = None
    #: Subsystem-specific JSON payload (streaming steady-state reports);
    #: ``None`` for ordinary campaign cells.
    extra: Optional[Dict] = None

    def to_campaign_record(self) -> CampaignRecord:
        """Rebuild the in-memory :class:`CampaignRecord` this row persists."""
        return CampaignRecord(
            workload=self.workload,
            policy=self.policy,
            max_weighted_flow=self.max_weighted_flow,
            max_stretch=self.max_stretch,
            makespan=self.makespan,
            normalised=self.normalised,
            preemptions=self.preemptions,
        )


@dataclass(frozen=True)
class GcReport:
    """What a :meth:`ExperimentStore.gc` pass found (and, unless dry, removed).

    Attributes
    ----------
    stale_records:
        Records whose ``code_epoch`` no longer matches (orphaned by an epoch
        bump) — by epoch, plus the total.
    incomplete_runs:
        Ids of killed/unfinished runs selected for vacuuming.
    membership_rows:
        ``run_records`` rows removed alongside (stale digests plus the
        vacuumed runs' membership).
    dry_run:
        ``True`` when nothing was deleted (the default mode).
    """

    stale_by_epoch: Dict[str, int]
    incomplete_runs: List[int]
    membership_rows: int
    dry_run: bool

    @property
    def stale_records(self) -> int:
        """Total stale-epoch records selected."""
        return sum(self.stale_by_epoch.values())

    @property
    def empty(self) -> bool:
        """True when the pass found nothing to prune."""
        return not self.stale_by_epoch and not self.incomplete_runs


@dataclass(frozen=True)
class RunInfo:
    """Summary row of one stored run."""

    run_id: int
    label: str
    created_at: str
    completed: bool
    num_records: int
    meta: Dict = field(default_factory=dict)
    stats: Optional[Dict] = None


def _row_to_record(row: sqlite3.Row) -> StoredRecord:
    return StoredRecord(
        digest=row["digest"],
        run_id=row["run_id"],
        workload=row["workload"],
        workload_key=row["workload_key"],
        scenario=row["scenario"],
        seed=row["seed"],
        policy=row["policy"],
        code_epoch=row["code_epoch"],
        max_weighted_flow=row["max_weighted_flow"],
        max_stretch=row["max_stretch"],
        makespan=row["makespan"],
        normalised=row["normalised"],
        preemptions=row["preemptions"],
        objective=row["objective"],
        extra=json.loads(row["extra"]) if row["extra"] else None,
    )


class ExperimentStore:
    """A content-addressed archive of campaign results in one SQLite file.

    Parameters
    ----------
    path:
        Database file; ``":memory:"`` gives an ephemeral store (tests).
    create:
        Create the file/schema when missing (default).  ``False`` raises
        :class:`~repro.exceptions.StoreError` on a missing file, which is
        what read-only consumers (``repro-sched store ls``) want.
    """

    def __init__(self, path: Union[str, Path], *, create: bool = True) -> None:
        self.path = str(path)
        if not create and self.path != ":memory:" and not Path(self.path).exists():
            raise StoreError(f"experiment store {self.path!r} does not exist")
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        try:
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        except sqlite3.DatabaseError as error:
            self._conn.close()
            self._conn = None
            raise StoreError(
                f"{self.path!r} is not an experiment store ({error})"
            ) from error
        if version == 0:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
            self._conn.commit()
        elif version == 1:
            # v1 -> v2: records gained a nullable JSON side-channel (``extra``)
            # for subsystem-specific payloads (streaming steady-state cells).
            # Purely additive, so old stores migrate in place and old cells
            # keep their digests.
            self._conn.execute("ALTER TABLE records ADD COLUMN extra TEXT")
            self._conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
            self._conn.commit()
        elif version != _SCHEMA_VERSION:
            raise StoreError(
                f"experiment store {self.path!r} has schema version {version}, "
                f"this build reads version {_SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #
    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (raises after :meth:`close`)."""
        if self._conn is None:
            raise StoreError(f"experiment store {self.path!r} is closed")
        return self._conn

    def close(self) -> None:
        """Commit and close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Runs                                                                #
    # ------------------------------------------------------------------ #
    def begin_run(self, label: str, meta: Optional[Dict] = None) -> int:
        """Open a new run and return its id."""
        created = utc_timestamp()
        cursor = self.connection.execute(
            "INSERT INTO runs (label, created_at, completed, meta) VALUES (?, ?, 0, ?)",
            (label, created, json.dumps(meta or {}, sort_keys=True)),
        )
        self.connection.commit()
        return int(cursor.lastrowid)

    def finish_run(
        self,
        run_id: int,
        *,
        completed: bool = True,
        stats: Optional[Dict] = None,
    ) -> None:
        """Seal a run: persist its stats and compute its headline metrics."""
        conn = self.connection
        conn.execute(
            "UPDATE runs SET completed = ?, stats = ? WHERE run_id = ?",
            (1 if completed else 0, json.dumps(stats, sort_keys=True) if stats else None, run_id),
        )
        conn.execute("DELETE FROM metrics WHERE run_id = ?", (run_id,))
        rows = conn.execute(
            "SELECT r.policy, r.normalised, r.preemptions FROM run_records m "
            "JOIN records r ON r.digest = m.digest WHERE m.run_id = ? "
            "ORDER BY m.position",
            (run_id,),
        ).fetchall()
        per_policy: Dict[str, List[sqlite3.Row]] = {}
        for row in rows:
            per_policy.setdefault(row["policy"], []).append(row)
        metric_rows: List[Tuple[int, str, str, float]] = []
        for policy, group in per_policy.items():
            normalised = [row["normalised"] for row in group]
            preemptions = [row["preemptions"] for row in group]
            geo_mean = math.exp(sum(math.log(v) for v in normalised) / len(normalised))
            metric_rows.extend(
                [
                    (run_id, policy, "geo_mean_normalised", geo_mean),
                    (run_id, policy, "max_normalised", max(normalised)),
                    (run_id, policy, "mean_preemptions", sum(preemptions) / len(group)),
                    (run_id, policy, "records", float(len(group))),
                ]
            )
        conn.executemany(
            "INSERT INTO metrics (run_id, policy, metric, value) VALUES (?, ?, ?, ?)",
            metric_rows,
        )
        conn.commit()

    def runs(self) -> List[RunInfo]:
        """Every stored run, oldest first."""
        rows = self.connection.execute(
            "SELECT r.*, (SELECT COUNT(*) FROM run_records m WHERE m.run_id = r.run_id) "
            "AS num_records FROM runs r ORDER BY r.run_id"
        ).fetchall()
        return [
            RunInfo(
                run_id=row["run_id"],
                label=row["label"],
                created_at=row["created_at"],
                completed=bool(row["completed"]),
                num_records=row["num_records"],
                meta=json.loads(row["meta"] or "{}"),
                stats=json.loads(row["stats"]) if row["stats"] else None,
            )
            for row in rows
        ]

    def resolve_run(self, token: Union[int, str]) -> int:
        """Resolve a run reference to a run id.

        Precedence: an ``int`` is always an id; a string is matched as a
        label first (latest run with that label — so runs labelled ``"123"``
        or ``"latest"`` stay reachable), then as the keyword ``"latest"`` /
        ``"last"``, then as a numeric id.
        """
        conn = self.connection
        if isinstance(token, str):
            row = conn.execute(
                "SELECT MAX(run_id) AS run_id FROM runs WHERE label = ?", (token,)
            ).fetchone()
            if row["run_id"] is not None:
                return int(row["run_id"])
            if token in ("latest", "last"):
                row = conn.execute("SELECT MAX(run_id) AS run_id FROM runs").fetchone()
                if row["run_id"] is None:
                    raise StoreError(f"store {self.path!r} has no runs")
                return int(row["run_id"])
            if not token.isdigit():
                raise StoreError(f"no run labelled {token!r} in store {self.path!r}")
        run_id = int(token)
        if conn.execute("SELECT 1 FROM runs WHERE run_id = ?", (run_id,)).fetchone():
            return run_id
        raise StoreError(f"no run #{run_id} in store {self.path!r}")

    # ------------------------------------------------------------------ #
    # Records                                                             #
    # ------------------------------------------------------------------ #
    def lookup(self, digests: Iterable[str]) -> Dict[str, StoredRecord]:
        """Map each present digest to its stored record (absent ones omitted)."""
        wanted = list(digests)
        found: Dict[str, StoredRecord] = {}
        conn = self.connection
        for start in range(0, len(wanted), _LOOKUP_CHUNK):
            chunk = wanted[start : start + _LOOKUP_CHUNK]
            placeholders = ",".join("?" * len(chunk))
            for row in conn.execute(
                f"SELECT * FROM records WHERE digest IN ({placeholders})", chunk
            ):
                found[row["digest"]] = _row_to_record(row)
        return found

    def __contains__(self, digest: str) -> bool:
        return bool(
            self.connection.execute(
                "SELECT 1 FROM records WHERE digest = ?", (digest,)
            ).fetchone()
        )

    def num_records(self) -> int:
        """Total number of distinct (content-addressed) cells."""
        return int(self.connection.execute("SELECT COUNT(*) FROM records").fetchone()[0])

    def run_records(self, run: Union[int, str]) -> List[StoredRecord]:
        """All cells of one run, in emission order (computed and reused)."""
        run_id = self.resolve_run(run)
        rows = self.connection.execute(
            "SELECT r.* FROM run_records m JOIN records r ON r.digest = m.digest "
            "WHERE m.run_id = ? ORDER BY m.position",
            (run_id,),
        ).fetchall()
        return [_row_to_record(row) for row in rows]

    def headline_metrics(self, run: Union[int, str]) -> Dict[str, Dict[str, float]]:
        """``policy -> metric -> value`` aggregates of one finished run."""
        run_id = self.resolve_run(run)
        result: Dict[str, Dict[str, float]] = {}
        for row in self.connection.execute(
            "SELECT policy, metric, value FROM metrics WHERE run_id = ? "
            "ORDER BY policy, metric",
            (run_id,),
        ):
            result.setdefault(row["policy"], {})[row["metric"]] = row["value"]
        return result

    def writer(self, run_id: int, *, batch_size: int = 256) -> "BulkWriter":
        """A batching writer appending cells to ``run_id``."""
        return BulkWriter(self, run_id, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # Garbage collection                                                  #
    # ------------------------------------------------------------------ #
    def gc(
        self,
        *,
        epoch: Optional[str] = None,
        older_than_days: Optional[float] = None,
        dry_run: bool = True,
    ) -> GcReport:
        """Prune epoch-orphaned records and vacuum incomplete runs.

        A ``CODE_EPOCH`` bump orphans every stored cell of older epochs: their
        digests can never match again, so they only cost space.  Killed runs
        (``completed = 0``) similarly accumulate half-finished membership.
        This pass selects both and — unless ``dry_run`` (the default) —
        deletes them and ``VACUUM``\\ s the database file.

        Parameters
        ----------
        epoch:
            Prune exactly the records of this code epoch.  Default: every
            record whose epoch differs from the current :data:`CODE_EPOCH`.
            Passing the current epoch is rejected — it would delete live
            cells.
        older_than_days:
            Only touch records/runs whose provenance run was created more
            than this many days ago (safety margin for concurrent sweeps).
        dry_run:
            ``True`` (default) reports without deleting.

        Notes
        -----
        Vacuuming an incomplete run removes the run row, its membership and
        its metrics; record rows it *computed* are kept when their epoch is
        current (they are the resumable cells a re-run tops up from) — their
        provenance ``run_id`` then refers to a vacuumed run, which nothing
        in the store joins against.
        """
        if epoch is not None and epoch == CODE_EPOCH:
            raise StoreError(
                f"refusing to gc the current code epoch {CODE_EPOCH!r}; "
                "pass an older epoch (or no --epoch for all stale ones)"
            )
        conn = self.connection
        cutoff: Optional[str] = None
        if older_than_days is not None:
            from datetime import timedelta

            cutoff = (utc_now() - timedelta(days=older_than_days)).isoformat(
                timespec="seconds"
            )

        # Stale-epoch records (joined to their provenance run for the age filter).
        epoch_clause = "r.code_epoch = ?" if epoch is not None else "r.code_epoch != ?"
        epoch_value = epoch if epoch is not None else CODE_EPOCH
        age_clause = ""
        age_params: Tuple = ()
        if cutoff is not None:
            # COALESCE to '' (which sorts before every ISO timestamp): a
            # record whose provenance run was vacuumed earlier has no
            # created_at left and must count as old, not as untouchable.
            age_clause = (
                " AND COALESCE((SELECT created_at FROM runs "
                "WHERE run_id = r.run_id), '') <= ?"
            )
            age_params = (cutoff,)
        stale_by_epoch: Dict[str, int] = {}
        for row in conn.execute(
            f"SELECT r.code_epoch AS epoch, COUNT(*) AS n FROM records r "
            f"WHERE {epoch_clause}{age_clause} GROUP BY r.code_epoch",
            (epoch_value, *age_params),
        ):
            stale_by_epoch[row["epoch"]] = int(row["n"])

        # Incomplete runs (killed sweeps) under the same age filter.
        run_clause = "completed = 0"
        run_params: Tuple = ()
        if cutoff is not None:
            run_clause += " AND created_at <= ?"
            run_params = (cutoff,)
        incomplete_runs = [
            int(row["run_id"])
            for row in conn.execute(
                f"SELECT run_id FROM runs WHERE {run_clause} ORDER BY run_id",
                run_params,
            )
        ]

        # Membership rows that would go: those of vacuumed runs plus those
        # pointing at stale digests from surviving runs.
        membership_rows = int(
            conn.execute(
                f"SELECT COUNT(*) FROM run_records m WHERE m.run_id IN "
                f"(SELECT run_id FROM runs WHERE {run_clause}) "
                f"OR m.digest IN (SELECT r.digest FROM records r "
                f"WHERE {epoch_clause}{age_clause})",
                (*run_params, epoch_value, *age_params),
            ).fetchone()[0]
        )

        report = GcReport(
            stale_by_epoch=stale_by_epoch,
            incomplete_runs=incomplete_runs,
            membership_rows=membership_rows,
            dry_run=dry_run,
        )
        if dry_run or report.empty:
            return report

        conn.execute(
            f"DELETE FROM run_records WHERE run_id IN "
            f"(SELECT run_id FROM runs WHERE {run_clause}) "
            f"OR digest IN (SELECT r.digest FROM records r "
            f"WHERE {epoch_clause}{age_clause})",
            (*run_params, epoch_value, *age_params),
        )
        conn.execute(
            f"DELETE FROM records WHERE digest IN (SELECT r.digest FROM records r "
            f"WHERE {epoch_clause}{age_clause})",
            (epoch_value, *age_params),
        )
        conn.execute(
            f"DELETE FROM metrics WHERE run_id IN "
            f"(SELECT run_id FROM runs WHERE {run_clause})",
            run_params,
        )
        conn.execute(f"DELETE FROM runs WHERE {run_clause}", run_params)
        conn.commit()
        conn.execute("VACUUM")
        return report


class BulkWriter:
    """Batched inserts of campaign cells into one run.

    Records are inserted with ``INSERT OR IGNORE`` on their content digest
    (re-computing a known cell is a no-op); membership rows tie every added
    cell — new or reused — to the run in emission order.  Batches are
    committed every ``batch_size`` rows and on :meth:`close`, so a killed
    process loses at most the current batch.
    """

    def __init__(self, store: ExperimentStore, run_id: int, *, batch_size: int = 256) -> None:
        if batch_size < 1:
            raise StoreError("batch_size must be at least 1")
        self.store = store
        self.run_id = run_id
        self.batch_size = batch_size
        self.inserted = 0  # new content rows actually written
        self.reused = 0  # cells already present under their digest
        self.added = 0  # membership rows (total cells of the run)
        self.commits = 0  # batch commits performed (journalled by drivers)
        self._record_batch: List[Tuple] = []
        self._member_batch: List[Tuple] = []
        self._position = int(
            store.connection.execute(
                "SELECT COALESCE(MAX(position), -1) + 1 FROM run_records WHERE run_id = ?",
                (run_id,),
            ).fetchone()[0]
        )

    def add(
        self,
        digest: str,
        record: CampaignRecord,
        *,
        workload_key: str,
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
        objective: Optional[float] = None,
        computed: bool = True,
        code_epoch: str = CODE_EPOCH,
        extra: Optional[Dict] = None,
    ) -> None:
        """Append one cell to the run (insert its content when ``computed``)."""
        if computed:
            self._record_batch.append(
                (
                    digest,
                    self.run_id,
                    record.workload,
                    workload_key,
                    scenario,
                    seed,
                    record.policy,
                    code_epoch,
                    record.max_weighted_flow,
                    record.max_stretch,
                    record.makespan,
                    record.normalised,
                    record.preemptions,
                    objective,
                    json.dumps(extra, sort_keys=True) if extra is not None else None,
                )
            )
        else:
            self.reused += 1
        self._member_batch.append((self.run_id, self._position, digest))
        self._position += 1
        self.added += 1
        if len(self._member_batch) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Write and commit the pending batch."""
        conn = self.store.connection
        recorder = get_recorder()
        if self._record_batch:
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO records (digest, run_id, workload, workload_key, "
                "scenario, seed, policy, code_epoch, max_weighted_flow, max_stretch, "
                "makespan, normalised, preemptions, objective, extra) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._record_batch,
            )
            written = conn.total_changes - before
            self.inserted += written
            self.reused += len(self._record_batch) - written
            if recorder.enabled:
                recorder.count("store.records_inserted", float(written))
                recorder.count(
                    "store.records_deduplicated", float(len(self._record_batch) - written)
                )
            self._record_batch.clear()
        if self._member_batch:
            conn.executemany(
                "INSERT OR REPLACE INTO run_records (run_id, position, digest) "
                "VALUES (?, ?, ?)",
                self._member_batch,
            )
            if recorder.enabled:
                recorder.count("store.cells_added", float(len(self._member_batch)))
            self._member_batch.clear()
        conn.commit()
        self.commits += 1
        if recorder.enabled:
            recorder.count("store.batch_commits")

    def close(self) -> None:
        """Flush the final batch."""
        self.flush()
        recorder = get_recorder()
        if recorder.enabled and self.added:
            # Resume skip rate: the fraction of cells answered from the
            # content-addressed store instead of recomputed.
            recorder.gauge("store.skip_rate", self.reused / self.added)

    def __enter__(self) -> "BulkWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def diff_runs(
    store: ExperimentStore,
    baseline: Union[int, str],
    current: Union[int, str],
) -> CrossRunDiff:
    """Cross-run regression diff: per-policy headline-metric deltas.

    Both runs must have been sealed by :meth:`ExperimentStore.finish_run`
    (campaign dispatches with a store sink do this automatically).  The
    result is deterministic: deltas are ordered by (policy, metric).
    """
    baseline_id = store.resolve_run(baseline)
    current_id = store.resolve_run(current)
    baseline_metrics = store.headline_metrics(baseline_id)
    current_metrics = store.headline_metrics(current_id)
    if not baseline_metrics:
        raise StoreError(f"run #{baseline_id} has no headline metrics (unfinished run?)")
    if not current_metrics:
        raise StoreError(f"run #{current_id} has no headline metrics (unfinished run?)")
    return cross_run_diff(
        baseline_metrics,
        current_metrics,
        baseline_label=f"run #{baseline_id}",
        current_label=f"run #{current_id}",
    )


def diff_run_cells(
    store: ExperimentStore,
    baseline: Union[int, str],
    current: Union[int, str],
    *,
    metric: str = "max_weighted_flow",
) -> CellDiff:
    """Per-cell regression diff: join two runs on (workload key, policy).

    Where :func:`diff_runs` compares per-policy headline aggregates, this
    joins the two runs' full record sets on the content identity the store
    digests and localises every change to an individual scenario cell —
    the computation behind ``repro-sched store diff --cells``.
    """
    baseline_id = store.resolve_run(baseline)
    current_id = store.resolve_run(current)
    return cross_run_cell_diff(
        store.run_records(baseline_id),
        store.run_records(current_id),
        metric=metric,
        baseline_label=f"run #{baseline_id}",
        current_label=f"run #{current_id}",
    )
