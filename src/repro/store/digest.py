"""Content-addressed digests for campaign cells.

Every cell of a campaign — one (workload, policy) measurement — is identified
by a deterministic digest of everything that determines its value:

* the **workload key** (scenario name + seed for lazy scenario sweeps, or a
  digest of the full instance payload for concrete instances),
* the **policy name** and its **parameters** (the built-in campaign path uses
  no parameters; custom callers may key variants),
* the **code epoch** — a manually bumped marker of the engine/policy
  semantics.  Two runs of the same cell under the same epoch are guaranteed to
  produce the same record (the engine is deterministic), which is what makes
  ``INSERT OR IGNORE`` on the digest a *resume* rather than a collision.

Digests are hex SHA-256 over a canonical JSON payload (sorted keys, no
whitespace), so they are stable across Python versions and platforms.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Protocol

__all__ = ["CODE_EPOCH", "canonical_digest", "instance_digest", "record_digest"]


class _DigestableInstance(Protocol):
    """Anything with the :meth:`~repro.core.instance.Instance.to_dict` contract."""

    def to_dict(self) -> Dict[str, Any]: ...

#: Epoch of the engine/policy semantics baked into every record digest.
#: Bump whenever a change alters the metrics a cell produces (engine event
#: ordering, policy behaviour, normalisation); stored cells from older epochs
#: then stop matching and are transparently recomputed.  The manifest of
#: modules whose edits require a bump is declared in
#: :data:`repro.lint.epoch.SEMANTIC_MANIFEST` and enforced, git-diff-aware,
#: by the ``epoch-guard`` lint rule (see ROADMAP.md, "Project invariants").
CODE_EPOCH = "2005.6"  # revised-simplex LP path changes degenerate-vertex choices


def canonical_digest(payload: Mapping[str, Any]) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``payload``.

    The encoding sorts keys and forbids NaN/Infinity, so logically equal
    payloads digest identically regardless of construction order.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def instance_digest(instance: _DigestableInstance) -> str:
    """Digest of a concrete instance's full content (jobs, machines, costs).

    ``instance`` is anything with the :meth:`~repro.core.instance.Instance.to_dict`
    contract; infinite costs are serialised as ``None`` there, keeping the
    payload JSON-canonical.
    """
    return canonical_digest(instance.to_dict())


def record_digest(
    workload_key: str,
    policy: str,
    *,
    params: Optional[Mapping[str, Any]] = None,
    code_epoch: str = CODE_EPOCH,
) -> str:
    """Digest identifying one campaign cell.

    Parameters
    ----------
    workload_key:
        Stable identity of the workload — ``WorkloadSpec.content_key()`` /
        ``ScenarioSpec.content_key()`` for campaign workloads.
    policy:
        Registry name of the policy (``"offline-optimal"`` for the optimum).
    params:
        Policy parameters, when a caller keys variants of the same name
        (campaigns resolve bare names, i.e. ``{}``).
    code_epoch:
        See :data:`CODE_EPOCH`.
    """
    payload: Dict[str, Any] = {
        "workload": workload_key,
        "policy": policy,
        "params": dict(params) if params else {},
        "epoch": code_epoch,
    }
    return canonical_digest(payload)
