"""Metrics: named counters, gauges and histograms behind a ``Recorder``.

Design constraints (ISSUE 8):

* **Zero overhead when disabled.**  The module-level default is the
  shared :data:`NULL_RECORDER`; instrumented call sites either guard on
  ``recorder.enabled`` or emit a constant number of aggregate calls per
  run (never per event).  The ``obs-recorder-default`` lint rule keeps
  concrete recorders out of instrumented modules entirely — they are
  *injected*, via a constructor argument or :func:`install_recorder`.
* **Outside the digest.**  Snapshots are reporting artefacts: they ride
  in ``records.extra`` next to (never inside) the record payload, so a
  new counter never needs a ``CODE_EPOCH`` bump.
* **Deterministic rendering.**  ``snapshot()`` sorts every mapping, so
  two identical runs serialise to identical bytes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Protocol, runtime_checkable

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "HistogramSummary",
    "get_recorder",
    "install_recorder",
    "collecting",
    "render_metrics",
]


@runtime_checkable
class Recorder(Protocol):
    """Protocol every metrics sink implements.

    ``enabled`` is a plain attribute (not a property) so hot paths can
    hoist it into a local boolean before a loop.
    """

    enabled: bool

    def count(self, name: str, value: float = 1.0) -> None: ...

    def gauge(self, name: str, value: float) -> None: ...

    def observe(self, name: str, value: float) -> None: ...


class NullRecorder:
    """No-op sink: the only legal module-level default in ``src/repro``."""

    enabled = False

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_RECORDER = NullRecorder()


@dataclass
class HistogramSummary:
    """Streaming summary of an observed distribution (no samples kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRecorder:
    """In-memory recorder aggregating counters, gauges and histograms.

    Gauges keep both the last and the maximum observed value (the
    maximum is what occupancy-style gauges such as ``campaign.in_flight``
    are read for).
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.gauge_peaks: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value
        previous = self.gauge_peaks.get(name)
        if previous is None or value > previous:
            self.gauge_peaks[name] = value

    def observe(self, name: str, value: float) -> None:
        summary = self.histograms.get(name)
        if summary is None:
            summary = self.histograms[name] = HistogramSummary()
        summary.add(value)

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold one :meth:`snapshot` payload into this recorder.

        The merge semantics are the cross-process aggregation contract
        (:mod:`repro.obs.aggregate`): counters sum, gauges keep the merge
        order's last value and the running peak, histograms combine their
        count/total/min/max summaries.  Folding worker snapshots in a
        deterministic order therefore reproduces the recorder a single
        process would have built by observing the same events directly —
        up to float-addition grouping, which is why instrumented drivers
        fold *every* scope (in-process ones included) instead of mixing
        direct observation with merged snapshots.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, float(value))
        for name, entry in snapshot.get("gauges", {}).items():
            self.gauges[name] = float(entry["last"])
            peak = float(entry["peak"])
            previous = self.gauge_peaks.get(name)
            if previous is None or peak > previous:
                self.gauge_peaks[name] = peak
        for name, entry in snapshot.get("histograms", {}).items():
            summary = self.histograms.get(name)
            if summary is None:
                summary = self.histograms[name] = HistogramSummary()
            count = int(entry["count"])
            summary.count += count
            summary.total += float(entry["total"])
            if count:
                summary.minimum = min(summary.minimum, float(entry["min"]))
                summary.maximum = max(summary.maximum, float(entry["max"]))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly, deterministically ordered view of everything."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {
                k: {"last": self.gauges[k], "peak": self.gauge_peaks[k]}
                for k in sorted(self.gauges)
            },
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }


_installed: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """Return the process-wide recorder (``NULL_RECORDER`` by default)."""
    return _installed


def install_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _installed
    previous = _installed
    _installed = recorder
    return previous


@contextmanager
def collecting(recorder: Optional[MetricsRecorder] = None) -> Iterator[MetricsRecorder]:
    """Install a fresh (or given) :class:`MetricsRecorder` for a scope.

    This is the sanctioned way for drivers (CLI, sweeps, benches) to turn
    metrics on without instrumented modules ever constructing a concrete
    recorder themselves.
    """
    active = MetricsRecorder() if recorder is None else recorder
    previous = install_recorder(active)
    try:
        yield active
    finally:
        install_recorder(previous)


def render_metrics(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Plain-text table of a :meth:`MetricsRecorder.snapshot` payload."""
    lines = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:g}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            entry = gauges[name]
            lines.append(
                f"  {name:<{width}}  last={entry['last']:g} peak={entry['peak']:g}"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<{width}}  n={h['count']:g} mean={h['mean']:.6g}"
                f" min={h['min']:.6g} max={h['max']:.6g}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
