"""Prometheus / OpenMetrics text exposition of a metrics snapshot.

``repro-sched obs export`` renders any saved ``MetricsRecorder``
snapshot (the ``--metrics`` JSON artefact) in the text formats scrapers
understand — the hook ROADMAP item 1's service endpoints will reuse.

Mapping:

* counters  → ``<prefix><name>_total`` (type ``counter``),
* gauges    → ``<prefix><name>`` (last) and ``<prefix><name>_peak``,
* histograms → a ``summary`` pair ``_count``/``_sum`` plus ``_min`` /
  ``_max`` gauges (the streaming summaries keep no quantiles).

OpenMetrics differs only in counter metadata naming (the ``# TYPE``
line names the base family, samples carry ``_total``) and the required
``# EOF`` terminator.
"""

from __future__ import annotations

import re
from typing import List, Mapping

__all__ = ["render_prometheus"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    sanitized = _INVALID_CHARS.sub("_", prefix + name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Mapping[str, Mapping[str, object]],
    *,
    fmt: str = "prometheus",
    prefix: str = "repro_",
) -> str:
    """Render ``snapshot`` as Prometheus or OpenMetrics exposition text."""
    if fmt not in ("prometheus", "openmetrics"):
        raise ValueError(f"unknown exposition format: {fmt!r}")
    openmetrics = fmt == "openmetrics"
    lines: List[str] = []

    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        base = _metric_name(name, prefix)
        if openmetrics:
            lines.append(f"# TYPE {base} counter")
        else:
            lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total {_format_value(counters[name])}")

    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        entry = gauges[name]
        base = _metric_name(name, prefix)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(entry['last'])}")
        lines.append(f"# TYPE {base}_peak gauge")
        lines.append(f"{base}_peak {_format_value(entry['peak'])}")

    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        entry = histograms[name]
        base = _metric_name(name, prefix)
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count {_format_value(entry['count'])}")
        lines.append(f"{base}_sum {_format_value(entry['total'])}")
        lines.append(f"# TYPE {base}_min gauge")
        lines.append(f"{base}_min {_format_value(entry['min'])}")
        lines.append(f"# TYPE {base}_max gauge")
        lines.append(f"{base}_max {_format_value(entry['max'])}")

    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + ("\n" if lines else "")
