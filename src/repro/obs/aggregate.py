"""Cross-process metrics aggregation: deterministic snapshot merging.

Parallel campaign/sweep drivers run each cell under a scoped
:class:`~repro.obs.metrics.MetricsRecorder` and ship the resulting
``snapshot()`` payload back through the future plumbing.  The parent
folds those snapshots **in deterministic emission order** (the same
order the sequential driver processes cells), so the merged driver
snapshot is structurally identical to the one a sequential run builds.

Merge semantics (the contract ``repro-sched obs export`` and ROADMAP's
"flight recorder" section document):

* **counters** sum,
* **gauges** keep the last value in merge order plus the running peak,
* **histograms** combine their count/total/min/max summaries.

Counter sums are exact for the integer-valued counters the runtime
emits, but wall-clock histograms (``*_seconds``) are inherently
nondeterministic, and a handful of counters depend on process topology
(how cells share a worker's caches).  :func:`deterministic_snapshot`
projects those out, leaving the byte-comparable core that the
``parallel == sequential`` tests assert on.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Mapping

from .metrics import MetricsRecorder

__all__ = [
    "VOLATILE_METRICS",
    "is_volatile_metric",
    "merge_snapshots",
    "deterministic_snapshot",
    "snapshot_bytes",
]

#: Metrics whose values legitimately depend on process topology or
#: wall-clock and are therefore excluded from byte-identity assertions.
#:
#: * ``campaign.in_flight`` — peak concurrency is 1 sequentially and up
#:   to ``max_workers`` in parallel, by construction.
#: * ``campaign.probe_constructions`` — the per-process context cache
#:   shares probe objects across items of one workload when they run in
#:   the same process; worker placement changes the hit pattern.
VOLATILE_METRICS = frozenset(
    {
        "campaign.in_flight",
        "campaign.probe_constructions",
    }
)


def is_volatile_metric(name: str) -> bool:
    """True when ``name`` is excluded from deterministic projections."""
    return (
        name in VOLATILE_METRICS
        or name.endswith("_seconds")
        or ".time." in name
    )


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Mapping[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Fold snapshot payloads, in order, into one merged snapshot."""
    recorder = MetricsRecorder()
    for snapshot in snapshots:
        recorder.merge_snapshot(snapshot)
    return recorder.snapshot()


def deterministic_snapshot(
    snapshot: Mapping[str, Mapping[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Project out wall-clock and topology-dependent metrics.

    What remains is invariant across ``--max-workers`` settings: the
    parallel driver's merged snapshot and the sequential driver's
    snapshot serialise to identical bytes (see :func:`snapshot_bytes`).
    """
    projected: Dict[str, Dict[str, object]] = {}
    for section in ("counters", "gauges", "histograms"):
        entries = snapshot.get(section, {})
        projected[section] = {
            name: entries[name]
            for name in sorted(entries)
            if not is_volatile_metric(name)
        }
    return projected


def snapshot_bytes(snapshot: Mapping[str, Mapping[str, object]]) -> bytes:
    """Canonical bytes of the deterministic projection of ``snapshot``."""
    return json.dumps(
        deterministic_snapshot(snapshot), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
