"""Clock discipline: the only sanctioned wall-clock reads in ``repro``.

The project's determinism contract (ROADMAP, "Byte-identity discipline")
requires that every quantity folded into record digests, fingerprints or
metrics derives from *simulated* time — the event clock owned by the
kernels.  Wall-clock reads are legal only for two things:

* throughput statistics (``elapsed_seconds`` channels, bench rows,
  phase profiles), and
* store provenance timestamps (``runs.created_at``, gc cutoffs).

Both go through this module.  The ``wall-clock`` lint rule
(:mod:`repro.lint.determinism`) flags any other ``time``/``datetime``
clock read in ``src/repro`` and exempts exactly this file, so a stray
``time.time()`` in a hot path fails the analyzer instead of silently
leaking nondeterminism.
"""

from __future__ import annotations

import time as _time
from datetime import datetime, timezone

__all__ = ["wall_clock", "unix_time", "utc_now", "utc_timestamp"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds for throughput timing.

    The value is only meaningful as a difference between two calls; it is
    never comparable across processes and must never enter a digest,
    fingerprint or simulated-time series.
    """
    return _time.perf_counter()


def unix_time() -> float:
    """Epoch seconds, for run-journal timestamps (reporting channel only).

    Unlike :func:`wall_clock` the value is comparable across processes —
    that is what journal consumers (``repro-sched watch``, heartbeat-gap
    reports) need — but it is still strictly outside every digest,
    fingerprint and simulated-time series.
    """
    return _time.time()


def utc_now() -> datetime:
    """Timezone-aware current UTC time, for store provenance metadata."""
    return datetime.now(timezone.utc)


def utc_timestamp(timespec: str = "seconds") -> str:
    """ISO-8601 UTC timestamp string (provenance channel only)."""
    return utc_now().isoformat(timespec=timespec)
