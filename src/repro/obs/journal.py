"""Durable run journal: crash-tolerant append-only JSONL lifecycle log.

The journal is the flight recorder for long campaign/sweep runs: the
driver appends one JSON object per line for every lifecycle event (run
started, cell dispatched/completed/skipped, worker heartbeat, batch
commit, run finished).  Consumers — ``repro-sched watch``, ``obs
report`` — read it while the run is still in progress.

Design constraints:

* **Strictly outside every digest.**  Timestamps come from
  :func:`repro.obs.clock.unix_time` (the reporting channel); nothing in
  the journal ever feeds a record digest, fingerprint or simulated-time
  series, so journaling on vs off is byte-identical in campaign output.
* **Crash tolerance.**  Every event is flushed as its own line.  A
  process killed mid-write leaves at most one truncated final line;
  :meth:`RunJournal._repair_tail` seals it with a newline on reopen so
  appended runs start on a fresh line, and readers skip unparseable
  lines instead of failing.
* **Multi-run files.**  Resumed runs append to the same journal under a
  fresh run id (:func:`new_run_id`), so one file records the whole
  history of a campaign across restarts.
* **Parent-only writes.**  Worker processes never touch the journal;
  they ship pid/elapsed telemetry back through the future plumbing and
  the driver writes heartbeats on their behalf.  One writer means no
  interleaving torn lines.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Tuple, Union

from .clock import unix_time, utc_now

__all__ = [
    "JOURNAL_VERSION",
    "RunJournal",
    "JournalView",
    "new_run_id",
    "read_journal",
    "tail_journal",
]

JOURNAL_VERSION = 1

_run_counter = itertools.count(1)


def new_run_id(label: str) -> str:
    """Fresh journal run id: label, UTC stamp, pid, per-process counter.

    The id only needs to be unique *within one journal file*; pid plus a
    process-local counter covers concurrent drivers appending to
    distinct files and resumed runs appending to the same one.
    """
    stamp = utc_now().strftime("%Y%m%dT%H%M%SZ")
    return f"{label}-{stamp}-p{os.getpid()}n{next(_run_counter)}"


class RunJournal:
    """Append-only JSONL writer for one journal file.

    One instance is owned by one driver invocation; :meth:`begin_run`
    rotates the run id so a resumed campaign appends to the same file as
    a distinguishable new run.  Use as a context manager, or call
    :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path], *, run_id: Optional[str] = None):
        self.path = Path(path)
        self.run_id = run_id or ""
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._handle: Optional[IO[str]] = open(
            self.path, "a", encoding="utf-8"
        )

    def _repair_tail(self) -> None:
        """Seal a truncated final line left by a killed writer.

        Appending a newline is enough: the torn line becomes one
        unparseable record (which readers skip) instead of corrupting
        the first event of the next run.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")

    def begin_run(
        self,
        kind: str,
        label: str,
        config: Optional[Dict[str, object]] = None,
    ) -> str:
        """Start a new run section: rotate the id, write ``run-started``."""
        self.run_id = new_run_id(label)
        fields: Dict[str, object] = {"kind": kind, "label": label}
        if config is not None:
            fields["config"] = config
        self.record("run-started", **fields)
        return self.run_id

    def record(self, event: str, **fields: object) -> None:
        """Append one event line and flush it to the OS immediately."""
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        self._seq += 1
        entry: Dict[str, object] = {
            "v": JOURNAL_VERSION,
            "run": self.run_id,
            "seq": self._seq,
            "ts": unix_time(),
            "event": event,
        }
        entry.update(fields)
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JournalView:
    """Parsed journal contents plus how many lines failed to parse."""

    def __init__(self, events: List[Dict[str, object]], truncated: int):
        self.events = events
        self.truncated = truncated

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def runs(self) -> List[str]:
        """Distinct run ids in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            run = event.get("run")
            if isinstance(run, str) and run not in seen:
                seen[run] = None
        return list(seen)


def _parse_lines(lines: Iterator[str]) -> Tuple[List[Dict[str, object]], int]:
    events: List[Dict[str, object]] = []
    truncated = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            truncated += 1
            continue
        if isinstance(entry, dict):
            events.append(entry)
        else:
            truncated += 1
    return events, truncated


def read_journal(path: Union[str, Path]) -> JournalView:
    """Read a whole journal, tolerating torn/corrupt lines."""
    with open(path, "r", encoding="utf-8") as handle:
        events, truncated = _parse_lines(iter(handle))
    return JournalView(events, truncated)


def tail_journal(
    path: Union[str, Path], offset: int = 0
) -> Tuple[List[Dict[str, object]], int]:
    """Incremental read from byte ``offset``; returns (events, new_offset).

    Only newline-terminated lines are consumed — a partial final line
    (the writer is mid-append) is left for the next poll, so ``watch``
    never mis-parses an event it raced with.  Unparseable *complete*
    lines are skipped.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return [], offset
    with handle:
        handle.seek(offset)
        data = handle.read()
    if not data:
        return [], offset
    last_newline = data.rfind(b"\n")
    if last_newline < 0:
        return [], offset
    complete = data[: last_newline + 1]
    events, _ = _parse_lines(iter(complete.decode("utf-8", "replace").splitlines()))
    return events, offset + len(complete)
