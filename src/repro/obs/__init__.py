"""Observability: tracing, metrics, profiling and the flight recorder.

Pillars, all zero-overhead when disabled:

* :mod:`repro.obs.metrics` — counters/gauges/histograms behind the
  :class:`~repro.obs.metrics.Recorder` protocol; the process default is
  the no-op :data:`~repro.obs.metrics.NULL_RECORDER` and concrete
  recorders are only ever *injected* (``obs-recorder-default`` lint rule).
* :mod:`repro.obs.trace` — span/event records on the simulated clock,
  byte-identical across runs and engines; JSON-lines and Chrome
  trace-event (Perfetto) exports.
* :mod:`repro.obs.clock` / :mod:`repro.obs.profile` — the only sanctioned
  wall-clock accessors in ``src/repro`` (enforced by the ``wall-clock``
  lint rule) and the phase profiler built on them.
* :mod:`repro.obs.journal` / :mod:`repro.obs.aggregate` /
  :mod:`repro.obs.watch` / :mod:`repro.obs.export` — the flight
  recorder (PR 10): a crash-tolerant JSONL run journal the drivers
  write lifecycle events to, deterministic cross-process snapshot
  merging, the live ``repro-sched watch`` monitor and Prometheus /
  OpenMetrics exposition.

Metrics, traces and journals are reporting artefacts: they live
*outside* record digests and fingerprints, so adding a counter or a
journal event never bumps ``CODE_EPOCH`` (ROADMAP, "Architecture: the
observability layer" and "Architecture: the flight recorder").
"""

from .aggregate import (
    VOLATILE_METRICS,
    deterministic_snapshot,
    is_volatile_metric,
    merge_snapshots,
    snapshot_bytes,
)
from .clock import unix_time, utc_now, utc_timestamp, wall_clock
from .export import render_prometheus
from .journal import (
    JournalView,
    RunJournal,
    new_run_id,
    read_journal,
    tail_journal,
)
from .metrics import (
    NULL_RECORDER,
    HistogramSummary,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    collecting,
    get_recorder,
    install_recorder,
    render_metrics,
)
from .profile import PhaseProfiler, PhaseStat
from .trace import TraceEvent, Tracer, trace_campaign_records, trace_stream_result
from .watch import (
    FleetStatus,
    StragglerInfo,
    analyse_journal,
    render_fleet_status,
    watch_journal,
)

__all__ = [
    "wall_clock",
    "unix_time",
    "utc_now",
    "utc_timestamp",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "HistogramSummary",
    "get_recorder",
    "install_recorder",
    "collecting",
    "render_metrics",
    "VOLATILE_METRICS",
    "is_volatile_metric",
    "merge_snapshots",
    "deterministic_snapshot",
    "snapshot_bytes",
    "RunJournal",
    "JournalView",
    "new_run_id",
    "read_journal",
    "tail_journal",
    "FleetStatus",
    "StragglerInfo",
    "analyse_journal",
    "render_fleet_status",
    "watch_journal",
    "render_prometheus",
    "Tracer",
    "TraceEvent",
    "trace_stream_result",
    "trace_campaign_records",
    "PhaseProfiler",
    "PhaseStat",
]
