"""Observability: deterministic tracing, metrics and profiling (PR 8).

Three pillars, all zero-overhead when disabled:

* :mod:`repro.obs.metrics` — counters/gauges/histograms behind the
  :class:`~repro.obs.metrics.Recorder` protocol; the process default is
  the no-op :data:`~repro.obs.metrics.NULL_RECORDER` and concrete
  recorders are only ever *injected* (``obs-recorder-default`` lint rule).
* :mod:`repro.obs.trace` — span/event records on the simulated clock,
  byte-identical across runs and engines; JSON-lines and Chrome
  trace-event (Perfetto) exports.
* :mod:`repro.obs.clock` / :mod:`repro.obs.profile` — the only sanctioned
  wall-clock accessors in ``src/repro`` (enforced by the ``wall-clock``
  lint rule) and the phase profiler built on them.

Metrics and traces are reporting artefacts: they live *outside* record
digests and fingerprints, so adding a counter never bumps ``CODE_EPOCH``
(ROADMAP, "Architecture: the observability layer").
"""

from .clock import utc_now, utc_timestamp, wall_clock
from .metrics import (
    NULL_RECORDER,
    HistogramSummary,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    collecting,
    get_recorder,
    install_recorder,
    render_metrics,
)
from .profile import PhaseProfiler, PhaseStat
from .trace import TraceEvent, Tracer, trace_campaign_records, trace_stream_result

__all__ = [
    "wall_clock",
    "utc_now",
    "utc_timestamp",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "HistogramSummary",
    "get_recorder",
    "install_recorder",
    "collecting",
    "render_metrics",
    "Tracer",
    "TraceEvent",
    "trace_stream_result",
    "trace_campaign_records",
    "PhaseProfiler",
    "PhaseStat",
]
