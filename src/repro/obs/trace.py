"""Deterministic tracing: span/event records on the *simulated* clock.

A :class:`Tracer` accumulates structured events whose timestamps are
simulated seconds (the event clock), never wall clock — so two identical
runs, or the ``view`` and ``rebuild`` stream engines on the same replayed
stream, serialise to byte-identical JSON lines.  Wall-clock readings may
be attached explicitly as *annotations* (``annotate_wall_clock``); they
are ordinary events carrying a ``wall`` argument and are excluded from
the determinism contract (and from the determinism tests).

Two export formats:

* :meth:`Tracer.to_jsonl` — one compact, key-sorted JSON object per
  line; the byte-identity format asserted by the tests and benches.
* :meth:`Tracer.to_chrome` — the Chrome trace-event JSON consumed by
  Perfetto / ``chrome://tracing``: simulated seconds become microsecond
  ``ts``/``dur`` fields, tracks become ``pid``/``tid`` lanes named via
  metadata events.

:func:`trace_stream_result` builds a trace *from* a finished
:class:`~repro.simulation.stream.StreamResult` — per-job spans from the
completion series, a queue-occupancy counter track from the recorded
trajectory — so the frozen legacy engine needs no instrumentation:
byte-identity of traces across engines follows from byte-identity of the
results they are derived from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .clock import wall_clock

__all__ = ["TraceEvent", "Tracer", "trace_stream_result", "trace_campaign_records"]

#: Number of lanes job spans are distributed over in the Chrome export.
_JOB_LANES = 16


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``phase`` follows the Chrome trace-event vocabulary: ``"X"`` complete
    span, ``"I"`` instant, ``"C"`` counter.  ``time`` and ``duration``
    are simulated seconds.
    """

    name: str
    phase: str
    time: float
    duration: float = 0.0
    track: str = "main"
    args: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "ph": self.phase,
            "time": self.time,
            "track": self.track,
        }
        if self.phase == "X":
            payload["duration"] = self.duration
        if self.args:
            payload["args"] = dict(self.args)
        return payload


class Tracer:
    """Accumulates :class:`TraceEvent` records for export."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def instant(self, name: str, time: float, *, track: str = "main", **args: object) -> None:
        self.events.append(TraceEvent(name, "I", time, track=track, args=args))

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        track: str = "main",
        **args: object,
    ) -> None:
        self.events.append(TraceEvent(name, "X", start, duration, track=track, args=args))

    def counter(self, name: str, time: float, value: float, *, track: str = "main") -> None:
        self.events.append(TraceEvent(name, "C", time, track=track, args={"value": value}))

    def annotate_wall_clock(self, name: str, time: float, *, track: str = "main") -> None:
        """Attach a wall-clock annotation (explicitly nondeterministic)."""
        self.events.append(
            TraceEvent(name, "I", time, track=track, args={"wall": wall_clock()})
        )

    # -- exports ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """One key-sorted compact JSON object per event, trailing newline.

        This is the byte-identity export: identical runs produce
        identical bytes (provided no wall-clock annotations were added).
        """
        lines = [
            json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))
            for event in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> str:
        """Chrome trace-event JSON (Perfetto-loadable).

        Simulated seconds are scaled to microseconds; each distinct track
        becomes a ``tid`` (first-seen order, hence deterministic) with a
        ``thread_name`` metadata record.
        """
        tids: Dict[str, int] = {}
        records: List[Dict[str, object]] = []
        for event in self.events:
            tid = tids.get(event.track)
            if tid is None:
                tid = tids[event.track] = len(tids) + 1
                records.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": event.track},
                    }
                )
            record: Dict[str, object] = {
                "name": event.name,
                "ph": event.phase,
                "ts": event.time * 1e6,
                "pid": 1,
                "tid": tid,
            }
            if event.phase == "X":
                record["dur"] = event.duration * 1e6
            if event.args:
                record["args"] = dict(event.args)
            records.append(record)
        payload = {"traceEvents": records, "displayTimeUnit": "ms"}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def trace_stream_result(
    result,
    tracer: Optional[Tracer] = None,
    *,
    track: Optional[str] = None,
    max_job_spans: Optional[int] = None,
) -> Tracer:
    """Build a deterministic trace from a finished stream simulation.

    Emits, on the simulated clock:

    * a run-level span covering ``[start_time, end_time]`` carrying the
      run counters,
    * one span per completed job (release date → completion), distributed
      over a fixed number of lanes for readable Perfetto rendering,
    * a queue-occupancy counter track from the recorded trajectory.

    ``max_job_spans`` caps the per-job spans (earliest completions kept)
    for very long streams; the cap is part of the trace content, so two
    runs with the same cap remain byte-identical.
    """
    out = tracer if tracer is not None else Tracer()
    base = track if track is not None else f"{result.label}/{result.policy}"
    out.complete(
        "stream",
        float(result.start_time),
        float(result.end_time - result.start_time),
        track=base,
        policy=result.policy,
        label=result.label,
        arrivals=int(result.arrivals),
        completions=int(result.completions),
        decisions=int(result.decisions),
        events=int(result.events),
        preemptions=int(result.preemptions),
        compactions=int(result.compactions),
        peak_active=int(result.peak_active),
        peak_window=int(result.peak_window),
        saturated=bool(result.saturated),
    )
    n_spans = len(result.completed_jobs)
    if max_job_spans is not None and n_spans > max_job_spans:
        n_spans = max_job_spans
    for i in range(n_spans):
        gid = int(result.completed_jobs[i])
        release = float(result.release_dates[i])
        flow = float(result.flows[i])
        out.complete(
            f"job-{gid}",
            release,
            flow,
            track=f"{base}/jobs-{gid % _JOB_LANES:02d}",
            stretch=float(result.stretches[i]),
            weighted_flow=float(result.weighted_flows[i]),
        )
    for t, q in zip(result.queue_times, result.queue_lengths):
        out.counter("queue", float(t), float(q), track=base)
    return out


def trace_campaign_records(records, tracer: Optional[Tracer] = None) -> Tracer:
    """Trace a batch campaign: one span per record, one lane per workload.

    Each :class:`~repro.analysis.campaign.CampaignRecord` becomes a
    ``[0, makespan]`` span on its workload's track, annotated with the
    record's metrics — deterministic because the records are.
    """
    out = tracer if tracer is not None else Tracer()
    for record in records:
        out.complete(
            record.policy,
            0.0,
            float(record.makespan),
            track=record.workload,
            max_stretch=float(record.max_stretch),
            max_weighted_flow=float(record.max_weighted_flow),
            normalised=float(record.normalised),
            preemptions=int(record.preemptions),
        )
    return out
