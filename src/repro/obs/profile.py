"""Phase profiler: coarse wall-clock accounting for benches and the CLI.

A :class:`PhaseProfiler` times named phases (``with profiler.phase("lp")``)
through the sanctioned :func:`repro.obs.clock.wall_clock` accessor.  It is
a *reporting* tool: phase timings never enter digests, fingerprints or
metrics, only stdout tables and bench rows.  The clock is injectable so
tests can drive it deterministically.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator

from .clock import wall_clock

__all__ = ["PhaseProfiler", "PhaseStat"]


@dataclass
class PhaseStat:
    """Aggregate timing of one named phase."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.minimum if self.count else 0.0,
            "max_seconds": self.maximum if self.count else 0.0,
        }


class PhaseProfiler:
    """Accumulates wall-clock time per named phase, in first-entry order."""

    def __init__(self, clock: Callable[[], float] = wall_clock) -> None:
        self._clock = clock
        self.phases: Dict[str, PhaseStat] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            stat = self.phases.get(name)
            if stat is None:
                stat = self.phases[name] = PhaseStat()
            stat.add(elapsed)

    def report(self) -> Dict[str, Dict[str, float]]:
        return {name: stat.as_dict() for name, stat in self.phases.items()}

    def render(self) -> str:
        if not self.phases:
            return "(no phases profiled)"
        width = max(len(name) for name in self.phases)
        total = sum(stat.total for stat in self.phases.values())
        lines = [f"{'phase':<{width}}  {'total':>9}  {'share':>6}  {'calls':>5}"]
        for name, stat in self.phases.items():
            share = stat.total / total if total > 0 else 0.0
            lines.append(
                f"{name:<{width}}  {stat.total:>8.3f}s  {share:>5.1%}  {stat.count:>5d}"
            )
        return "\n".join(lines)
