"""Live fleet monitoring: analyse and tail a run journal.

``repro-sched watch JOURNAL`` polls a journal (possibly still being
written), folds its events into a :class:`FleetStatus` and renders a
compact status block: throughput, per-policy progress, an ETA from the
completed-cell trajectory, and straggler/stall detection — a dispatched
cell with no completion for more than ``stall_factor`` times the rolling
median cell time is flagged.

All times here are journal timestamps (``repro.obs.clock.unix_time``)
and driver-measured ``elapsed`` fields — reporting-channel data that
never feeds a digest.  The analysis itself is pure (events in, status
out) so tests drive it without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from pathlib import Path

from .clock import unix_time
from .journal import tail_journal

__all__ = [
    "FleetStatus",
    "StragglerInfo",
    "analyse_journal",
    "render_fleet_status",
    "watch_journal",
]


@dataclass
class StragglerInfo:
    """A dispatched-but-uncompleted cell that exceeded the stall bound."""

    label: str
    age_seconds: float
    bound_seconds: float


@dataclass
class FleetStatus:
    """Aggregated view of one run's journal events."""

    run_id: str = ""
    kind: str = ""
    label: str = ""
    status: str = "unknown"
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    total_cells: Optional[int] = None
    dispatched: int = 0
    completed: int = 0
    skipped: int = 0
    records: Optional[int] = None
    commits: int = 0
    per_policy: Dict[str, Dict[str, int]] = field(default_factory=dict)
    workers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cell_seconds: List[float] = field(default_factory=list)
    throughput_cells_per_sec: Optional[float] = None
    eta_seconds: Optional[float] = None
    median_cell_seconds: Optional[float] = None
    stragglers: List[StragglerInfo] = field(default_factory=list)

    @property
    def done(self) -> int:
        return self.completed + self.skipped

    @property
    def progress(self) -> Optional[float]:
        if not self.total_cells:
            return None
        return min(1.0, self.done / self.total_cells)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _policies_of(event: Mapping[str, object]) -> List[str]:
    policies = event.get("policies")
    if isinstance(policies, list):
        return [str(p) for p in policies]
    return []


def analyse_journal(
    events: Sequence[Mapping[str, object]],
    *,
    now: Optional[float] = None,
    stall_factor: float = 4.0,
    run: Optional[str] = None,
) -> FleetStatus:
    """Fold journal events into a :class:`FleetStatus`.

    ``run`` selects a run id; by default the last ``run-started`` event
    wins (the active run of a multi-run journal).  Straggler detection
    needs at least three completed-cell durations before it trusts the
    rolling median; ``now`` defaults to the current wall clock.
    """
    if run is None:
        for event in events:
            if event.get("event") == "run-started":
                candidate = event.get("run")
                if isinstance(candidate, str):
                    run = candidate
    status = FleetStatus(run_id=run or "")
    pending: Dict[str, float] = {}
    completion_ts: List[float] = []
    for event in events:
        if run is not None and event.get("run") != run:
            continue
        name = event.get("event")
        ts = event.get("ts")
        ts = float(ts) if isinstance(ts, (int, float)) else None
        if name == "run-started":
            status.status = "running"
            status.started_ts = ts
            status.kind = str(event.get("kind", ""))
            status.label = str(event.get("label", ""))
            config = event.get("config")
            if isinstance(config, dict):
                total = config.get("total_cells")
                if isinstance(total, int):
                    status.total_cells = total
        elif name == "cell-dispatched":
            status.dispatched += 1
            label = str(event.get("cell", event.get("seq")))
            if ts is not None:
                pending[label] = ts
            for policy in _policies_of(event):
                entry = status.per_policy.setdefault(
                    policy, {"dispatched": 0, "completed": 0, "skipped": 0}
                )
                entry["dispatched"] += 1
        elif name == "cell-completed":
            # A dispatch unit may cover several output cells (policy chunks,
            # the synthetic off-line cell); progress counts cells so it lines
            # up with the run config's ``total_cells``.
            cells = event.get("cells")
            status.completed += int(cells) if isinstance(cells, int) and cells > 0 else 1
            label = str(event.get("cell", event.get("seq")))
            pending.pop(label, None)
            if ts is not None:
                completion_ts.append(ts)
            elapsed = event.get("elapsed")
            if isinstance(elapsed, (int, float)):
                status.cell_seconds.append(float(elapsed))
            for policy in _policies_of(event):
                entry = status.per_policy.setdefault(
                    policy, {"dispatched": 0, "completed": 0, "skipped": 0}
                )
                entry["completed"] += 1
        elif name == "cell-skipped":
            cells = event.get("cells")
            status.skipped += int(cells) if isinstance(cells, int) and cells > 0 else 1
            for policy in _policies_of(event):
                entry = status.per_policy.setdefault(
                    policy, {"dispatched": 0, "completed": 0, "skipped": 0}
                )
                entry["skipped"] += 1
        elif name == "worker-heartbeat":
            worker = str(event.get("worker", "?"))
            entry = status.workers.setdefault(worker, {"items": 0.0})
            items = event.get("items")
            if isinstance(items, (int, float)):
                entry["items"] = float(items)
            if ts is not None:
                entry["last_ts"] = ts
        elif name == "batch-commit":
            status.commits += 1
        elif name == "run-finished":
            status.finished_ts = ts
            status.status = str(event.get("status", "finished"))
            records = event.get("records")
            if isinstance(records, int):
                status.records = records

    if now is None:
        now = unix_time()
    end = status.finished_ts if status.finished_ts is not None else now

    if completion_ts and status.started_ts is not None:
        span = max(completion_ts) - status.started_ts
        if span > 0:
            status.throughput_cells_per_sec = status.completed / span
    if (
        status.throughput_cells_per_sec
        and status.total_cells
        and status.finished_ts is None
    ):
        remaining = max(0, status.total_cells - status.done)
        status.eta_seconds = remaining / status.throughput_cells_per_sec

    if len(status.cell_seconds) >= 3:
        status.median_cell_seconds = _median(status.cell_seconds)
        bound = stall_factor * status.median_cell_seconds
        if status.finished_ts is None:
            for label, dispatched_ts in sorted(pending.items()):
                age = end - dispatched_ts
                if age > bound:
                    status.stragglers.append(
                        StragglerInfo(
                            label=label, age_seconds=age, bound_seconds=bound
                        )
                    )
    return status


def _format_duration(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    return f"{minutes}m{secs:02d}s"


def render_fleet_status(status: FleetStatus) -> str:
    """Plain-text status block for one :class:`FleetStatus`."""
    lines: List[str] = []
    header = f"run {status.run_id or '?'}"
    if status.kind:
        header += f" [{status.kind}]"
    header += f" — {status.status}"
    lines.append(header)
    if status.total_cells:
        progress = status.progress or 0.0
        lines.append(
            f"  progress: {status.done}/{status.total_cells} cells"
            f" ({100.0 * progress:.1f}%)"
            f" — {status.completed} completed, {status.skipped} resumed"
        )
    else:
        lines.append(
            f"  progress: {status.completed} completed,"
            f" {status.skipped} resumed"
        )
    if status.throughput_cells_per_sec is not None:
        lines.append(
            f"  throughput: {status.throughput_cells_per_sec:.2f} cells/s"
        )
    if status.eta_seconds is not None:
        lines.append(f"  eta: {_format_duration(status.eta_seconds)}")
    if status.median_cell_seconds is not None:
        lines.append(
            f"  median cell time: {status.median_cell_seconds * 1000.0:.1f}ms"
        )
    if status.per_policy:
        lines.append("  per-policy:")
        width = max(len(name) for name in status.per_policy)
        for name in sorted(status.per_policy):
            entry = status.per_policy[name]
            lines.append(
                f"    {name:<{width}}  completed={entry['completed']}"
                f" dispatched={entry['dispatched']}"
                f" resumed={entry['skipped']}"
            )
    if status.workers:
        parts = []
        for worker in sorted(status.workers):
            entry = status.workers[worker]
            parts.append(f"{worker}:{entry.get('items', 0):g}")
        lines.append(f"  workers: {' '.join(parts)}")
    if status.commits:
        lines.append(f"  batch commits: {status.commits}")
    for straggler in status.stragglers:
        lines.append(
            f"  STALL? {straggler.label} dispatched"
            f" {_format_duration(straggler.age_seconds)} ago"
            f" (bound {_format_duration(straggler.bound_seconds)})"
        )
    if status.records is not None:
        lines.append(f"  records: {status.records}")
    return "\n".join(lines)


def watch_journal(
    path: Union[str, Path],
    *,
    interval: float = 2.0,
    max_updates: Optional[int] = None,
    stall_factor: float = 4.0,
    out: Callable[[str], None] = print,
    sleep: Optional[Callable[[float], None]] = None,
) -> FleetStatus:
    """Tail ``path`` and render a status block per poll.

    Stops when the active run records ``run-finished`` or after
    ``max_updates`` polls.  ``sleep`` is injectable so tests can drive
    the loop without real delays; the events list accumulates across
    polls via :func:`tail_journal`'s byte offset, so a journal being
    appended to concurrently is read incrementally and torn final lines
    are deferred to the next poll.
    """
    if sleep is None:
        sleep = time.sleep
    offset = 0
    events: List[Dict[str, object]] = []
    updates = 0
    status = FleetStatus()
    while True:
        fresh, offset = tail_journal(path, offset)
        events.extend(fresh)
        status = analyse_journal(events, stall_factor=stall_factor)
        out(render_fleet_status(status))
        updates += 1
        if status.finished_ts is not None:
            break
        if max_updates is not None and updates >= max_updates:
            break
        sleep(interval)
    return status
