"""Minimal ASCII plotting for terminal-friendly bench output.

The paper's Figure 1 is a scatter plot of execution time against block size.
Without a plotting dependency, the benches render an ASCII scatter so that the
linear shape (and the non-zero intercept of Figure 1(b)) is visible directly
in the terminal and in the captured bench output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import WorkloadError

__all__ = ["ascii_scatter", "ascii_series"]


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 70,
    height: int = 20,
    marker: str = "*",
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a scatter plot of ``y`` versus ``x`` as ASCII art.

    The y axis always starts at zero (matching the paper's figures, which show
    the intercept), while the x axis spans the data range.
    """
    x_array = np.asarray(list(x), dtype=float)
    y_array = np.asarray(list(y), dtype=float)
    if x_array.size == 0 or x_array.shape != y_array.shape:
        raise WorkloadError("ascii_scatter needs two equally sized, non-empty samples")
    if width < 10 or height < 5:
        raise WorkloadError("plot area too small")

    x_min, x_max = float(x_array.min()), float(x_array.max())
    y_min, y_max = 0.0, float(y_array.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x_value, y_value in zip(x_array, y_array):
        column = int(round((x_value - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((y_value - y_min) / (y_max - y_min) * (height - 1)))
        grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + "  "
        + f"{x_min:.4g}".ljust(width // 2)
        + f"{x_label} -> {x_max:.4g}".rjust(width // 2)
    )
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    series: dict,
    *,
    width: int = 70,
    height: int = 20,
    title: Optional[str] = None,
    x_label: str = "x",
) -> str:
    """Overlay several named series on one ASCII plot, one marker per series."""
    markers = "*o+x#@%&"
    if not series:
        raise WorkloadError("ascii_series needs at least one series")
    x_array = np.asarray(list(x), dtype=float)
    all_y = np.concatenate([np.asarray(list(values), dtype=float) for values in series.values()])
    y_max = float(all_y.max()) if all_y.size else 1.0
    y_min = 0.0
    x_min, x_max = float(x_array.min()), float(x_array.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    legend = []
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        legend.append(f"{marker} = {name}")
        y_array = np.asarray(list(values), dtype=float)
        for x_value, y_value in zip(x_array, y_array):
            column = int(round((x_value - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y_value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(legend))
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_min:.4g}".ljust(width // 2) + f"{x_label} -> {x_max:.4g}".rjust(width // 2))
    return "\n".join(lines)
