"""Paper-versus-measured reporting helpers.

Every bench compares a quantity the paper reports (an overhead, a ratio, a
winner) with the value measured by the reproduction.  This module gives those
comparisons a uniform shape so that EXPERIMENTS.md and the bench output tell
the same story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .tables import format_table

__all__ = ["ComparisonRecord", "ExperimentReport"]


@dataclass(frozen=True)
class ComparisonRecord:
    """One paper-vs-measured comparison.

    Attributes
    ----------
    quantity:
        What is being compared (e.g. ``"sequence-partition overhead [s]"``).
    paper_value:
        The value (or textual claim) reported by the paper.
    measured_value:
        The value measured by the reproduction.
    tolerance_note:
        Free-form note on how close the two are expected to be.
    """

    quantity: str
    paper_value: float
    measured_value: float
    tolerance_note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """``measured / paper`` when the paper value is non-zero."""
        if self.paper_value == 0:
            return None
        return self.measured_value / self.paper_value

    @property
    def relative_error(self) -> Optional[float]:
        """``|measured - paper| / |paper|`` when the paper value is non-zero."""
        if self.paper_value == 0:
            return None
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)


@dataclass
class ExperimentReport:
    """A named experiment with its paper-vs-measured comparisons."""

    experiment_id: str
    description: str
    records: List[ComparisonRecord] = field(default_factory=list)

    def add(self, quantity: str, paper_value: float, measured_value: float, note: str = "") -> None:
        """Append one comparison to the report."""
        self.records.append(
            ComparisonRecord(
                quantity=quantity,
                paper_value=paper_value,
                measured_value=measured_value,
                tolerance_note=note,
            )
        )

    def render(self) -> str:
        """Render the report as an ASCII table (used in bench output)."""
        rows = []
        for record in self.records:
            ratio = record.ratio
            rows.append(
                (
                    record.quantity,
                    record.paper_value,
                    record.measured_value,
                    "n/a" if ratio is None else f"{ratio:.3f}",
                    record.tolerance_note,
                )
            )
        return format_table(
            ["quantity", "paper", "measured", "measured/paper", "note"],
            rows,
            title=f"[{self.experiment_id}] {self.description}",
        )

    def max_relative_error(self) -> float:
        """Largest relative error across records (0.0 when empty)."""
        errors = [record.relative_error for record in self.records if record.relative_error is not None]
        return max(errors, default=0.0)
