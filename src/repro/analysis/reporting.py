"""Paper-versus-measured reporting helpers.

Every bench compares a quantity the paper reports (an overhead, a ratio, a
winner) with the value measured by the reproduction.  This module gives those
comparisons a uniform shape so that EXPERIMENTS.md and the bench output tell
the same story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .regression import CellDiff, CrossRunDiff
from .tables import format_table

__all__ = [
    "ComparisonRecord",
    "ExperimentReport",
    "render_cell_diff",
    "render_cross_run_diff",
]


@dataclass(frozen=True)
class ComparisonRecord:
    """One paper-vs-measured comparison.

    Attributes
    ----------
    quantity:
        What is being compared (e.g. ``"sequence-partition overhead [s]"``).
    paper_value:
        The value (or textual claim) reported by the paper.
    measured_value:
        The value measured by the reproduction.
    tolerance_note:
        Free-form note on how close the two are expected to be.
    """

    quantity: str
    paper_value: float
    measured_value: float
    tolerance_note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """``measured / paper`` when the paper value is non-zero."""
        if self.paper_value == 0:
            return None
        return self.measured_value / self.paper_value

    @property
    def relative_error(self) -> Optional[float]:
        """``|measured - paper| / |paper|`` when the paper value is non-zero."""
        if self.paper_value == 0:
            return None
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)


@dataclass
class ExperimentReport:
    """A named experiment with its paper-vs-measured comparisons."""

    experiment_id: str
    description: str
    records: List[ComparisonRecord] = field(default_factory=list)

    def add(self, quantity: str, paper_value: float, measured_value: float, note: str = "") -> None:
        """Append one comparison to the report."""
        self.records.append(
            ComparisonRecord(
                quantity=quantity,
                paper_value=paper_value,
                measured_value=measured_value,
                tolerance_note=note,
            )
        )

    def render(self) -> str:
        """Render the report as an ASCII table (used in bench output)."""
        rows = []
        for record in self.records:
            ratio = record.ratio
            rows.append(
                (
                    record.quantity,
                    record.paper_value,
                    record.measured_value,
                    "n/a" if ratio is None else f"{ratio:.3f}",
                    record.tolerance_note,
                )
            )
        return format_table(
            ["quantity", "paper", "measured", "measured/paper", "note"],
            rows,
            title=f"[{self.experiment_id}] {self.description}",
        )

    def max_relative_error(self) -> float:
        """Largest relative error across records (0.0 when empty)."""
        errors = [record.relative_error for record in self.records if record.relative_error is not None]
        return max(errors, default=0.0)


def render_cross_run_diff(diff: CrossRunDiff, *, tolerance: float = 1e-6) -> str:
    """Render a :class:`~repro.analysis.regression.CrossRunDiff` as a table.

    One row per (policy, metric) delta with its tolerance flag; the footer
    summarises the verdict (``clean`` / regression count).  This is the
    output of ``repro-sched store diff``.
    """
    rows = []
    for delta in diff.deltas:
        rel = delta.relative_delta
        rows.append(
            (
                delta.policy,
                delta.metric,
                "-" if delta.baseline is None else f"{delta.baseline:.6g}",
                "-" if delta.current is None else f"{delta.current:.6g}",
                "-" if delta.delta is None else f"{delta.delta:+.3g}",
                "-" if rel is None else f"{rel:+.3%}",
                delta.flag(tolerance),
            )
        )
    table = format_table(
        ["policy", "metric", diff.baseline_label, diff.current_label, "delta", "rel", "flag"],
        rows,
        title=f"Cross-run diff: {diff.baseline_label} -> {diff.current_label} "
        f"(tolerance {tolerance:g})",
    )
    regressions = diff.regressions(tolerance)
    if regressions:
        verdict = f"{len(regressions)} regression(s) beyond tolerance"
    elif diff.is_clean(tolerance):
        verdict = "clean: every metric within tolerance"
    else:
        verdict = "no regressions (improvements or coverage changes present)"
    return f"{table}\n{verdict}"


def render_cell_diff(diff: CellDiff, *, tolerance: float = 1e-6) -> str:
    """Render a :class:`~repro.analysis.regression.CellDiff` as a table.

    Localises cross-run changes to individual scenarios: one row per cell
    whose flag is not ``ok`` (regressed / improved / added / removed), with a
    one-line summary of how many joined cells were clean.  This is the output
    of ``repro-sched store diff --cells``.
    """
    interesting = diff.non_ok(tolerance)
    total = len(diff.deltas)
    ok = total - len(interesting)
    header = (
        f"Per-cell diff ({diff.metric}): {diff.baseline_label} -> "
        f"{diff.current_label} (tolerance {tolerance:g})"
    )
    if not interesting:
        return f"{header}\nclean: all {total} joined cells within tolerance"
    rows = []
    for delta in interesting:
        rel = delta.relative_delta
        rows.append(
            (
                delta.policy,
                delta.workload,
                delta.workload_key,
                "-" if delta.baseline is None else f"{delta.baseline:.6g}",
                "-" if delta.current is None else f"{delta.current:.6g}",
                "-" if rel is None else f"{rel:+.3%}",
                delta.flag(tolerance),
            )
        )
    table = format_table(
        ["policy", "workload", "workload key", diff.baseline_label,
         diff.current_label, "rel", "flag"],
        rows,
        title=header,
    )
    regressions = len(diff.regressions(tolerance))
    verdict = (
        f"{len(interesting)} cell(s) changed ({regressions} regressed), "
        f"{ok} of {total} clean"
    )
    return f"{table}\n{verdict}"
