"""Analysis toolkit (substrate S13): regression, statistics, tables, plots, reports."""

from .campaign import (
    CampaignRecord,
    CampaignResult,
    CampaignStats,
    WorkloadSpec,
    run_policy_campaign,
    run_scenario_campaign,
    stream_campaign,
)
from .fairness import FairnessReport, compare_fairness, fairness_report, jain_index
from .plots import ascii_scatter, ascii_series
from .regression import (
    CellDelta,
    CellDiff,
    CrossRunDiff,
    LinearFit,
    MetricDelta,
    cross_run_cell_diff,
    cross_run_diff,
    linear_regression,
)
from .reporting import (
    ComparisonRecord,
    ExperimentReport,
    render_cell_diff,
    render_cross_run_diff,
)
from .stats import (
    SummaryStatistics,
    confidence_interval,
    geometric_mean,
    ratio_table,
    summarize,
)
from .steady_state import (
    SaturationScan,
    SteadyStateEstimate,
    SteadyStateReport,
    analyse_stream,
    batch_means,
    detect_saturation,
    saturation_scan,
)
from .stream_sweep import (
    StreamCellRecord,
    StreamSweepResult,
    StreamSweepStats,
    run_stream_sweep,
)
from .tables import format_key_values, format_table

__all__ = [
    "CampaignRecord",
    "CampaignResult",
    "CampaignStats",
    "SaturationScan",
    "SteadyStateEstimate",
    "SteadyStateReport",
    "saturation_scan",
    "StreamCellRecord",
    "StreamSweepResult",
    "StreamSweepStats",
    "analyse_stream",
    "batch_means",
    "detect_saturation",
    "run_stream_sweep",
    "ComparisonRecord",
    "ExperimentReport",
    "FairnessReport",
    "compare_fairness",
    "fairness_report",
    "jain_index",
    "WorkloadSpec",
    "run_policy_campaign",
    "run_scenario_campaign",
    "stream_campaign",
    "CellDelta",
    "CellDiff",
    "CrossRunDiff",
    "LinearFit",
    "MetricDelta",
    "SummaryStatistics",
    "cross_run_cell_diff",
    "cross_run_diff",
    "render_cell_diff",
    "render_cross_run_diff",
    "ascii_scatter",
    "ascii_series",
    "confidence_interval",
    "format_key_values",
    "format_table",
    "geometric_mean",
    "linear_regression",
    "ratio_table",
    "summarize",
]
