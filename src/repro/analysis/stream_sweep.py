"""Steady-state load sweeps: utilisation ρ × policy over workload streams.

This is the streaming counterpart of the batch campaign dispatcher: the
sweep axis is the **offered load** ρ (arrival rate over the platform's
fluid capacity — see :meth:`repro.workload.streams.StreamSpec.offered_load`)
rather than a seed grid, and each cell is a *steady-state report*
(:class:`~repro.analysis.steady_state.SteadyStateReport`) rather than a
single-schedule measurement.

Cells are content-addressed exactly like batch campaign cells: the workload
key is ``StreamSpec.content_key()`` extended with the measurement protocol
(arrival budget, warmup fraction, batch count), the policy slot carries the
canonical variant identity, and the digest flows through
:func:`repro.store.digest.record_digest`.  With ``store=``/``resume=True``
a killed or re-parameterised ρ-sweep therefore tops up incrementally — a
fully stored sweep replays at a 100 % skip rate without simulating a single
arrival (the rich report round-trips through the store's ``extra`` JSON
column).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import WorkloadError
from ..heuristics import make_scheduler
from ..obs.clock import wall_clock
from ..obs.journal import RunJournal
from ..obs.metrics import collecting, get_recorder
from ..obs.trace import Tracer, trace_stream_result
from ..heuristics.registry import resolve_policy_variant
from ..simulation import SimulationKernel
from ..simulation.stream import StreamingSimulator
from ..workload.streams import StreamSpec, open_stream
from .campaign import CampaignRecord
from .steady_state import SteadyStateReport, analyse_stream
from .tables import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import would cycle)
    from ..store import ExperimentStore

__all__ = [
    "StreamCellRecord",
    "StreamSweepResult",
    "StreamSweepStats",
    "run_stream_sweep",
]


def _finite(value: float, default: float) -> float:
    """``value`` when finite, ``default`` otherwise (NaN-safe projection)."""
    return float(value) if math.isfinite(value) else default


@dataclass(frozen=True)
class StreamCellRecord:
    """One (stream load, policy) steady-state measurement.

    Attributes
    ----------
    workload:
        Cell label, ``"<stream label>@rho=<value>"``.
    policy:
        Canonical policy (variant) label.
    rho:
        Offered load of the cell's stream.
    report:
        The full steady-state report (estimates, saturation, throughput).
    metrics:
        Optional per-cell obs snapshot (``MetricsRecorder.snapshot()``
        collected around the cell's simulation) — a reporting side-channel
        that rides in ``records.extra`` *outside* the digest: stored bytes
        are identical when obs is off.
    """

    workload: str
    policy: str
    rho: float
    report: SteadyStateReport
    metrics: Optional[Dict] = None

    def to_campaign_record(self) -> CampaignRecord:
        """Project the cell onto the store's fixed record columns.

        The mapping is documented rather than clever: ``max_weighted_flow``
        and ``max_stretch`` carry the post-warmup maxima, ``makespan`` the
        achieved utilisation, ``normalised`` the steady-state mean stretch
        (strictly positive, so the store's geometric-mean headline metrics
        stay well-defined).  The full report rides in the record's ``extra``
        JSON and is what :meth:`from_stored` rebuilds.

        Saturated cells that completed *nothing* post-warmup have NaN
        estimates; those are clamped to the columns' safe floors here —
        SQLite would bind NaN as NULL and the store's ``INSERT OR IGNORE``
        would silently drop the whole row, leaving the run's membership
        dangling and the cell permanently un-resumable.
        """
        return CampaignRecord(
            workload=self.workload,
            policy=self.policy,
            max_weighted_flow=_finite(self.report.max_weighted_flow, 0.0),
            max_stretch=_finite(self.report.max_stretch, 0.0),
            makespan=_finite(self.report.utilisation, 0.0),
            normalised=max(_finite(self.report.mean_stretch.mean, 1e-9), 1e-9),
            preemptions=self.report.peak_active,
        )

    def extra_payload(self) -> Dict:
        """The JSON side-channel persisted with the cell.

        The ``metrics`` key is present only when a snapshot was collected,
        so a sweep with obs disabled persists byte-identical extras.
        """
        payload = {"kind": "stream-cell", "rho": self.rho, "report": self.report.as_dict()}
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    @staticmethod
    def from_stored(stored) -> Optional["StreamCellRecord"]:
        """Rebuild a cell from a :class:`~repro.store.StoredRecord`.

        Returns ``None`` when the stored row carries no stream payload
        (pre-v2 cells, or a digest collision with a batch cell — impossible
        by construction, but treated as a miss rather than an error).
        """
        extra = stored.extra
        if not extra or extra.get("kind") != "stream-cell":
            return None
        return StreamCellRecord(
            workload=stored.workload,
            policy=stored.policy,
            rho=float(extra["rho"]),
            report=SteadyStateReport.from_dict(extra["report"]),
            metrics=extra.get("metrics"),
        )


@dataclass
class StreamSweepStats:
    """Throughput and resume trajectory of one ρ-sweep.

    Attributes
    ----------
    cells, computed_cells, resumed_cells:
        Total cells and their computed/loaded-from-store split.
    arrivals:
        Arrivals actually simulated (0 for a fully resumed sweep).
    saturated_cells:
        Cells flagged saturated.
    elapsed_seconds:
        Wall-clock time of the sweep.
    max_workers:
        Worker processes requested (``None``: in-process sequential).
    store_run_id:
        Run id registered in the store (``None`` without a store).
    """

    cells: int = 0
    computed_cells: int = 0
    resumed_cells: int = 0
    arrivals: int = 0
    saturated_cells: int = 0
    elapsed_seconds: float = 0.0
    max_workers: Optional[int] = None
    store_run_id: Optional[int] = None

    @property
    def resume_skip_rate(self) -> float:
        """Fraction of cells served from the store instead of simulated."""
        return self.resumed_cells / self.cells if self.cells > 0 else 0.0

    @property
    def arrivals_per_second(self) -> float:
        """Simulated arrivals per wall-clock second of the whole sweep."""
        return self.arrivals / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def as_dict(self) -> Dict:
        """JSON-friendly view (bench trajectory files)."""
        return {
            "cells": self.cells,
            "computed_cells": self.computed_cells,
            "resumed_cells": self.resumed_cells,
            "resume_skip_rate": self.resume_skip_rate,
            "arrivals": self.arrivals,
            "arrivals_per_second": self.arrivals_per_second,
            "saturated_cells": self.saturated_cells,
            "elapsed_seconds": self.elapsed_seconds,
            "max_workers": self.max_workers,
            "store_run_id": self.store_run_id,
        }


@dataclass
class StreamSweepResult:
    """All cells of a ρ-sweep plus rendering helpers."""

    records: List[StreamCellRecord] = field(default_factory=list)
    stats: Optional[StreamSweepStats] = None

    def as_table(self) -> str:
        """ρ × policy steady-state stretch table."""
        rows = []
        for record in self.records:
            report = record.report
            estimate = report.mean_stretch
            rows.append(
                (
                    f"{record.rho:.2f}",
                    record.policy,
                    estimate.mean,
                    estimate.half_width,
                    report.max_stretch,
                    f"{report.utilisation:.2f}",
                    "SATURATED" if report.saturated else "ok",
                )
            )
        return format_table(
            ["rho", "policy", "mean stretch", "+/-", "max stretch", "util", "state"],
            rows,
            title="Steady-state load sweep (batch-means stretch, post-warmup)",
            float_format=".3f",
        )


def _cell_workload_key(
    spec: StreamSpec,
    *,
    max_arrivals: int,
    warmup_fraction: float,
    num_batches: int,
    confidence: float,
    max_active: int,
) -> str:
    """Workload key of one stream cell: spec identity plus the full protocol.

    Every parameter that can change a cell's value belongs here — including
    the saturation cap (it truncates super-critical runs) and the confidence
    level (it scales the stored half-widths) — otherwise a resumed sweep
    under different settings would silently serve stale cells.
    """
    return (
        f"{spec.content_key()};arrivals={max_arrivals}"
        f";warmup={warmup_fraction!r};batches={num_batches}"
        f";confidence={confidence!r};max-active={max_active}"
    )


def _run_stream_cell(
    cell_spec: StreamSpec,
    variant_label: str,
    max_arrivals: int,
    warmup_fraction: float,
    num_batches: int,
    confidence: float,
    max_active: int,
    collect_metrics: bool = False,
) -> Tuple[str, SteadyStateReport, int, Optional[Dict], int, float]:
    """Measure one (stream, policy) cell: the process-pool work unit.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it.  A cell's value depends only on the spec (which carries the
    seed) and the measurement protocol — never on which worker runs it or
    in what order — so a parallel sweep's cells are digest- and
    content-identical to the sequential sweep's (wall-clock throughput
    fields aside).  With ``collect_metrics`` the cell runs under a scoped
    :class:`~repro.obs.metrics.MetricsRecorder` and returns its snapshot —
    the snapshot derives from simulation counters only, so it too is
    identical across the pool and in-process paths.  The two trailing
    fields (worker pid, elapsed wall-clock seconds) are the telemetry the
    parent turns into journal heartbeats and ``sweep.cell_seconds``
    observations — reporting data, never part of the snapshot or digest.
    """
    started = wall_clock()
    scheduler = make_scheduler(variant_label)
    simulator = StreamingSimulator(SimulationKernel(), max_active=max_active)

    def measure() -> Tuple[object, SteadyStateReport]:
        sim = simulator.run(open_stream(cell_spec), scheduler, max_arrivals=max_arrivals)
        report = analyse_stream(
            sim,
            warmup_fraction=warmup_fraction,
            num_batches=num_batches,
            confidence=confidence,
        )
        return sim, report

    if collect_metrics:
        with collecting() as cell_recorder:
            sim, report = measure()
        snapshot: Optional[Dict] = cell_recorder.snapshot()
    else:
        sim, report = measure()
        snapshot = None
    return (
        scheduler.name,
        report,
        sim.arrivals,
        snapshot,
        os.getpid(),
        wall_clock() - started,
    )


def run_stream_sweep(
    spec: StreamSpec,
    policies: Sequence[str],
    *,
    rhos: Sequence[float],
    max_arrivals: int = 2000,
    warmup_fraction: float = 0.25,
    num_batches: int = 16,
    confidence: float = 0.95,
    max_active: int = 10_000,
    max_workers: Optional[int] = None,
    stats: Optional[StreamSweepStats] = None,
    store: Optional[Union[str, Path, "ExperimentStore"]] = None,
    resume: bool = False,
    run_label: Optional[str] = None,
    collect_metrics: bool = False,
    tracer: Optional[Tracer] = None,
    journal: Optional[Union[str, Path, RunJournal]] = None,
) -> StreamSweepResult:
    """Sweep offered load ρ × policy over one stream family.

    Parameters
    ----------
    spec:
        Base stream description; each ρ derives a rate-adjusted copy via
        :meth:`StreamSpec.with_utilisation` (so ``spec`` must not be a trace).
    policies:
        On-line policy names (variant tokens accepted), resolved through the
        registry per cell.
    rhos:
        Utilisation values to sweep (``rho >= 1`` cells are expected to
        saturate — they are measured and flagged, not skipped).
    max_arrivals:
        Arrival budget per cell.
    warmup_fraction, num_batches, confidence:
        Steady-state estimation protocol (folded into the cell digests: a
        different protocol is a different cell).
    max_active:
        Saturation cap forwarded to the simulator.
    max_workers:
        ``None`` (default) computes every cell in-process; an integer fans
        the not-resumed cells out over a
        :class:`~concurrent.futures.ProcessPoolExecutor` (``0`` means "one
        worker per CPU", the campaign dispatcher's convention).  Store
        writes stay in the parent, in the sequential sweep's cell order, so
        the persisted cells are digest-identical either way.
    stats:
        Optional :class:`StreamSweepStats` filled in while sweeping.
    store, resume, run_label:
        Experiment-store sink and resume mode, exactly as in
        :func:`~repro.analysis.campaign.stream_campaign`.
    collect_metrics:
        Collect a per-cell obs snapshot around every *computed* cell and
        attach it to the cell (persisted in ``records.extra`` under the
        ``"metrics"`` key, outside the digest).  Off by default — the
        stored bytes are then identical to a sweep without obs.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` every *computed* cell's
        finished stream is traced into (:func:`trace_stream_result`, one
        track per cell).  Traces derive from the simulation's result
        series, so they are incompatible with the process pool (the
        parent never sees worker results' series): pass ``tracer`` only
        with the in-process path (``max_workers=None``).  Resumed cells
        are not traced — the store keeps reports, not result series.
    journal:
        Append lifecycle events (run started/finished, cell dispatched /
        completed / skipped-by-resume, worker heartbeats) to this
        :class:`~repro.obs.journal.RunJournal` (a path opens — and closes —
        one for the duration).  Journal data lives on the wall clock,
        strictly outside every digest: sweep results and stored bytes are
        identical with journaling on or off.
    """
    if not policies:
        raise WorkloadError("a stream sweep needs at least one policy")
    if not rhos:
        raise WorkloadError("a stream sweep needs at least one utilisation value")
    if max_arrivals < 1:
        raise WorkloadError("max_arrivals must be at least 1")
    if resume and store is None:
        raise WorkloadError("resume=True needs a store to resume from")
    if tracer is not None and max_workers is not None:
        raise WorkloadError(
            "tracer= needs the in-process path (max_workers=None): worker "
            "processes return reports, not the result series traces are built from"
        )

    own_stats = stats if stats is not None else StreamSweepStats()
    own_stats.max_workers = max_workers
    started = wall_clock()
    recorder = get_recorder()
    # Cross-process aggregation (ISSUE 10): with a fold-capable ambient
    # recorder, every computed cell runs under a scoped recorder — on the
    # in-process path too — and the parent folds the snapshots in the
    # deterministic cell order, so the merged driver snapshot is
    # byte-identical at any worker count.
    merge = getattr(recorder, "merge_snapshot", None) if recorder.enabled else None
    capture = collect_metrics or merge is not None

    # Deferred imports: repro.store depends on repro.analysis.campaign.
    from ..store import ExperimentStore
    from ..store.digest import record_digest

    own_store: Optional[ExperimentStore] = None
    if store is not None and not isinstance(store, ExperimentStore):
        store = own_store = ExperimentStore(store)

    # Resolve every policy token up front (fail fast, canonical identities).
    variants = [resolve_policy_variant(token) for token in policies]

    machines = spec.platform_instance().machines  # one platform build per sweep
    cells = [
        (rho, spec.with_utilisation(rho, machines=machines)) for rho in rhos
    ]
    digests: Dict[tuple, str] = {}
    if store is not None:
        for index, (rho, cell_spec) in enumerate(cells):
            key = _cell_workload_key(
                cell_spec,
                max_arrivals=max_arrivals,
                warmup_fraction=warmup_fraction,
                num_batches=num_batches,
                confidence=confidence,
                max_active=max_active,
            )
            for variant in variants:
                digests[(index, variant.label)] = record_digest(
                    key, variant.base, params=variant.params
                )

    found: Dict[str, object] = {}
    if resume and store is not None and digests:
        found = store.lookup(digests.values())

    run_id: Optional[int] = None
    writer = None
    if store is not None:
        run_id = store.begin_run(
            run_label or "stream-sweep",
            meta={
                "stream": spec.payload(),
                "policies": [variant.label for variant in variants],
                "rhos": [float(rho) for rho in rhos],
                "max_arrivals": max_arrivals,
                "warmup_fraction": warmup_fraction,
                "num_batches": num_batches,
                "resume": resume,
            },
        )
        own_stats.store_run_id = run_id
        writer = store.writer(run_id)

    own_journal: Optional[RunJournal] = None
    if journal is not None:
        if not isinstance(journal, RunJournal):
            journal = own_journal = RunJournal(journal)
        journal_config: Dict[str, object] = {
            "policies": [variant.label for variant in variants],
            "rhos": [float(rho) for rho in rhos],
            "max_arrivals": max_arrivals,
            "max_workers": max_workers,
            "resume": resume,
            "total_cells": len(rhos) * len(variants),
        }
        if run_id is not None:
            journal_config["store_run_id"] = run_id
        journal.begin_run("stream-sweep", run_label or spec.label, journal_config)
    worker_progress: Dict[str, int] = {}  # journal heartbeat item counts

    kernel = SimulationKernel()
    simulator = StreamingSimulator(kernel, max_active=max_active)
    result = StreamSweepResult(stats=own_stats)

    # Parallel fan-out: submit every not-resumed cell up front; the main
    # loop below then consumes futures instead of simulating, while the
    # resume bookkeeping and the store writes run in the parent in the
    # sequential sweep's cell order (digest-identical persistence).
    pool: Optional[ProcessPoolExecutor] = None
    futures: Dict[Tuple[int, str], object] = {}
    if max_workers is not None:
        to_compute: List[Tuple[int, str, StreamSpec]] = []
        for index, (rho, cell_spec) in enumerate(cells):
            for variant in variants:
                stored = found.get(digests.get((index, variant.label), ""))
                if stored is not None and StreamCellRecord.from_stored(stored) is not None:
                    continue
                to_compute.append((index, variant.label, cell_spec))
                if journal is not None:
                    journal.record(
                        "cell-dispatched",
                        cell=f"{spec.label}@rho={rho:.2f}/{variant.label}",
                        workload=f"{spec.label}@rho={rho:.2f}",
                        item=index,
                        policies=[variant.label],
                    )
        if to_compute:
            workers = max_workers if max_workers > 0 else (os.cpu_count() or 1)
            pool = ProcessPoolExecutor(max_workers=max(1, min(workers, len(to_compute))))
            for index, variant_label, cell_spec in to_compute:
                futures[(index, variant_label)] = pool.submit(
                    _run_stream_cell,
                    cell_spec,
                    variant_label,
                    max_arrivals,
                    warmup_fraction,
                    num_batches,
                    confidence,
                    max_active,
                    capture,
                )

    completed = False
    try:
        for index, (rho, cell_spec) in enumerate(cells):
            label = f"{spec.label}@rho={rho:.2f}"
            key = _cell_workload_key(
                cell_spec,
                max_arrivals=max_arrivals,
                warmup_fraction=warmup_fraction,
                num_batches=num_batches,
                confidence=confidence,
                max_active=max_active,
            )
            stream = None
            for variant in variants:
                digest = digests.get((index, variant.label), "")
                cell: Optional[StreamCellRecord] = None
                stored = found.get(digest)
                resumed = False
                if stored is not None:
                    cell = StreamCellRecord.from_stored(stored)
                    if cell is not None:
                        # The digest ignores labels; re-label for this sweep.
                        cell = StreamCellRecord(
                            workload=label,
                            policy=cell.policy,
                            rho=cell.rho,
                            report=cell.report,
                            metrics=cell.metrics,
                        )
                        own_stats.resumed_cells += 1
                        resumed = True
                        if journal is not None:
                            journal.record(
                                "cell-skipped",
                                cell=f"{label}/{variant.label}",
                                workload=label,
                                item=index,
                                policies=[variant.label],
                                cells=1,
                            )
                if cell is None:
                    cell_name = f"{label}/{variant.label}"
                    future = futures.pop((index, variant.label), None)
                    if future is not None:
                        (
                            policy_name,
                            report,
                            simulated,
                            snapshot,
                            worker_pid,
                            cell_elapsed,
                        ) = future.result()
                    else:
                        if journal is not None:
                            journal.record(
                                "cell-dispatched",
                                cell=cell_name,
                                workload=label,
                                item=index,
                                policies=[variant.label],
                            )
                        if stream is None:
                            stream = open_stream(cell_spec)
                        scheduler = make_scheduler(variant.label)
                        cell_started = wall_clock()
                        if capture:
                            # Scoped recorder: the cell's own counters land in
                            # its snapshot, not the ambient sink.
                            with collecting() as cell_recorder:
                                sim = simulator.run(
                                    stream, scheduler, max_arrivals=max_arrivals
                                )
                                report = analyse_stream(
                                    sim,
                                    warmup_fraction=warmup_fraction,
                                    num_batches=num_batches,
                                    confidence=confidence,
                                )
                            snapshot = cell_recorder.snapshot()
                        else:
                            sim = simulator.run(stream, scheduler, max_arrivals=max_arrivals)
                            report = analyse_stream(
                                sim,
                                warmup_fraction=warmup_fraction,
                                num_batches=num_batches,
                                confidence=confidence,
                            )
                            snapshot = None
                        if tracer is not None:
                            trace_stream_result(
                                sim, tracer, track=f"{label}/{scheduler.name}"
                            )
                        cell_elapsed = wall_clock() - cell_started
                        policy_name, simulated = scheduler.name, sim.arrivals
                        worker_pid = os.getpid()
                    if recorder.enabled:
                        recorder.observe("sweep.cell_seconds", cell_elapsed)
                    # Fold at the deterministic cell order — the same order
                    # on the sequential and parallel paths.
                    if merge is not None and snapshot is not None:
                        merge(snapshot)
                    if journal is not None:
                        worker = f"p{worker_pid}"
                        journal.record(
                            "cell-completed",
                            cell=cell_name,
                            workload=label,
                            item=index,
                            policies=[variant.label],
                            cells=1,
                            elapsed=cell_elapsed,
                            worker=worker,
                        )
                        if future is not None:
                            worker_progress[worker] = worker_progress.get(worker, 0) + 1
                            journal.record(
                                "worker-heartbeat",
                                worker=worker,
                                items=worker_progress[worker],
                            )
                    cell = StreamCellRecord(
                        workload=label,
                        policy=policy_name,
                        rho=float(rho),
                        report=report,
                        metrics=snapshot if collect_metrics else None,
                    )
                    own_stats.computed_cells += 1
                    own_stats.arrivals += simulated
                own_stats.cells += 1
                if recorder.enabled:
                    recorder.count("sweep.cells")
                    recorder.count(
                        "sweep.cells_resumed" if resumed else "sweep.cells_computed"
                    )
                if cell.report.saturated:
                    own_stats.saturated_cells += 1
                if writer is not None:
                    writer.add(
                        digest,
                        cell.to_campaign_record(),
                        workload_key=key,
                        computed=not resumed,
                        extra=cell.extra_payload(),
                    )
                result.records.append(cell)
        completed = True
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        own_stats.elapsed_seconds = wall_clock() - started
        if writer is not None:
            writer.close()
            store.finish_run(run_id, completed=completed, stats=own_stats.as_dict())
        if own_store is not None:
            own_store.close()
        if journal is not None:
            journal.record(
                "run-finished",
                status="completed" if completed else "aborted",
                records=own_stats.cells,
                elapsed=own_stats.elapsed_seconds,
            )
            if own_journal is not None:
                own_journal.close()
    return result
