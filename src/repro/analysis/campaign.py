"""Experiment campaigns: run many (instance, policy) combinations and aggregate.

The benches of this repository each reproduce one paper artefact; a *campaign*
is the general-purpose version a downstream user needs: sweep a family of
workloads, run the off-line solvers and a set of on-line policies on each,
collect normalised metrics and render a report.  The on-line-vs-off-line
example and several benches are thin wrappers around this module.

Workloads are independent of each other, so campaigns parallelise trivially:
pass ``max_workers`` to :func:`run_policy_campaign` to fan the per-workload
work (one off-line LP optimisation plus one simulation per policy) out across
processes.  The scenario sweep helper :func:`run_scenario_campaign` builds the
instances from :mod:`repro.workload.scenarios` and does the same.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from ..core.instance import Instance
from ..core.maxflow import minimize_max_weighted_flow
from ..exceptions import WorkloadError
from ..heuristics import make_scheduler
from ..simulation import simulate
from .stats import geometric_mean, summarize
from .tables import format_table

__all__ = [
    "CampaignRecord",
    "CampaignResult",
    "run_policy_campaign",
    "run_scenario_campaign",
]


@dataclass(frozen=True)
class CampaignRecord:
    """One (workload, policy) measurement.

    Attributes
    ----------
    workload:
        Label of the workload (e.g. ``"seed 3"`` or a scenario name).
    policy:
        Policy name (``"offline-optimal"`` for the LP optimum itself).
    max_weighted_flow, max_stretch, makespan:
        Raw metric values of the executed (or optimal) schedule.
    normalised:
        ``max_weighted_flow`` divided by the off-line optimum of the same
        workload (1.0 for the optimum itself).
    preemptions:
        Preemption count (0 for off-line schedules).
    """

    workload: str
    policy: str
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    normalised: float
    preemptions: int = 0


@dataclass
class CampaignResult:
    """All the records of a campaign plus aggregation helpers."""

    records: List[CampaignRecord] = field(default_factory=list)

    def policies(self) -> List[str]:
        """Distinct policy names, off-line optimum first."""
        names = sorted({record.policy for record in self.records})
        if "offline-optimal" in names:
            names.remove("offline-optimal")
            names.insert(0, "offline-optimal")
        return names

    def records_for(self, policy: str) -> List[CampaignRecord]:
        """All records of one policy."""
        return [record for record in self.records if record.policy == policy]

    def mean_degradation(self, policy: str) -> float:
        """Geometric-mean normalised max weighted flow of one policy."""
        values = [record.normalised for record in self.records_for(policy)]
        if not values:
            raise WorkloadError(f"no records for policy {policy!r}")
        return geometric_mean(values)

    def ranking(self) -> List[str]:
        """Policies ordered from best (lowest mean degradation) to worst."""
        return sorted(
            (p for p in self.policies() if p != "offline-optimal"),
            key=self.mean_degradation,
        )

    def as_table(self) -> str:
        """Aggregate table: one row per policy."""
        rows = []
        for policy in self.policies():
            values = [record.normalised for record in self.records_for(policy)]
            stats = summarize(values)
            rows.append((policy, geometric_mean(values), stats.minimum, stats.maximum))
        return format_table(
            ["policy", "geo-mean vs optimum", "min", "max"],
            rows,
            title="Campaign summary (max weighted flow normalised by the off-line optimum)",
            float_format=".3f",
        )


def _run_single_workload(
    label: str,
    instance: Instance,
    policies: Sequence[str],
    include_offline: bool,
    scheduler_factory: Callable[[str], object],
) -> List[CampaignRecord]:
    """Measure one workload: off-line optimum plus every policy.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it for the parallel campaign path.
    """
    records: List[CampaignRecord] = []
    offline = minimize_max_weighted_flow(instance)
    optimum = offline.objective
    if optimum <= 0:
        raise WorkloadError(f"degenerate workload {label!r}: zero optimal objective")
    if include_offline:
        metrics = offline.schedule.metrics()
        records.append(
            CampaignRecord(
                workload=label,
                policy="offline-optimal",
                max_weighted_flow=metrics.max_weighted_flow,
                max_stretch=metrics.max_stretch or 0.0,
                makespan=metrics.makespan,
                normalised=1.0,
            )
        )
    for policy in policies:
        simulation = simulate(instance, scheduler_factory(policy))
        metrics = simulation.metrics()
        records.append(
            CampaignRecord(
                workload=label,
                policy=policy,
                max_weighted_flow=metrics.max_weighted_flow,
                max_stretch=metrics.max_stretch or 0.0,
                makespan=metrics.makespan,
                normalised=metrics.max_weighted_flow / optimum,
                preemptions=simulation.num_preemptions,
            )
        )
    return records


def run_policy_campaign(
    instances: Iterable[Instance],
    policies: Sequence[str],
    *,
    labels: Optional[Sequence[str]] = None,
    include_offline: bool = True,
    scheduler_factory: Callable[[str], object] = make_scheduler,
    max_workers: Optional[int] = None,
) -> CampaignResult:
    """Run every policy on every instance and collect normalised metrics.

    Parameters
    ----------
    instances:
        The workloads to schedule.
    policies:
        Policy names understood by ``scheduler_factory``.
    labels:
        Optional workload labels (defaults to ``"workload 0"``, ...).
    include_offline:
        Also record the off-line optimum itself (policy ``"offline-optimal"``),
        which every normalisation is relative to.
    scheduler_factory:
        Factory mapping a policy name to a scheduler object (defaults to
        :func:`repro.heuristics.make_scheduler`).  Must be picklable (a
        module-level function) when ``max_workers`` enables the process pool.
    max_workers:
        ``None`` (default) runs sequentially in-process.  Any other value
        fans the workloads out over a :class:`ProcessPoolExecutor` with that
        many workers (``0`` means "one per CPU").  Record order is
        deterministic and identical to the sequential path.
    """
    instances = list(instances)
    if not instances:
        raise WorkloadError("a campaign needs at least one instance")
    if labels is None:
        labels = [f"workload {index}" for index in range(len(instances))]
    if len(labels) != len(instances):
        raise WorkloadError("labels and instances must have the same length")

    result = CampaignResult()
    if max_workers is None or len(instances) == 1:
        batches = [
            _run_single_workload(label, instance, policies, include_offline, scheduler_factory)
            for label, instance in zip(labels, instances)
        ]
    else:
        workers = max_workers if max_workers > 0 else (os.cpu_count() or 1)
        workers = min(workers, len(instances))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            batches = list(
                pool.map(
                    _run_single_workload,
                    labels,
                    instances,
                    [policies] * len(instances),
                    [include_offline] * len(instances),
                    [scheduler_factory] * len(instances),
                )
            )
    for batch in batches:
        result.records.extend(batch)
    return result


def run_scenario_campaign(
    scenario_names: Sequence[str],
    policies: Sequence[str],
    *,
    seeds: Sequence[Optional[int]] = (None,),
    include_offline: bool = True,
    max_workers: Optional[int] = None,
) -> CampaignResult:
    """Sweep named workload scenarios (optionally over several seeds).

    Builds every ``(scenario, seed)`` instance via
    :func:`repro.workload.scenarios.make_scenario` and delegates to
    :func:`run_policy_campaign`; with ``max_workers`` set the sweep fans out
    across processes.  Labels are ``"<scenario>#<seed>"`` (just the scenario
    name when a single default seed is used).
    """
    from ..workload.scenarios import scenario_sweep  # local import: avoid a cycle

    labels, instances = scenario_sweep(scenario_names, seeds)
    return run_policy_campaign(
        instances,
        policies,
        labels=labels,
        include_offline=include_offline,
        max_workers=max_workers,
    )
