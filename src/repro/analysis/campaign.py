"""Experiment campaigns: a streaming dispatcher over (workload, policy) tasks.

The benches of this repository each reproduce one paper artefact; a *campaign*
is the general-purpose version a downstream user needs: sweep a family of
workloads, run the off-line optimum and a set of policies on each, collect
normalised metrics and render a report.

The campaign layer is the dispatcher of the unified policy runtime
(:mod:`repro.heuristics.registry` resolves policies by name, the array-backed
:mod:`repro.simulation` kernel executes the on-line ones):

* **Lazy workloads** — a sweep is enumerated as cheap :class:`WorkloadSpec`
  descriptors (a scenario name and seed, or a concrete instance); scenario
  grids are materialised inside the workers, so a 10k-scenario sweep never
  holds 10k instances in the parent process.
* **Streaming chunked dispatch** — work is cut into per-(workload,
  policy-chunk) items (``chunk_size=1`` gives per-policy parallelism), at
  most ``max_inflight`` items are submitted to the process pool at any time,
  and finished records are aggregated incrementally in deterministic order,
  so memory stays bounded no matter how large the sweep is.
* **Shared probes** — every item of a workload reuses one
  :class:`~repro.core.maxflow.FeasibilityProbe` (and one off-line optimum)
  through a per-process LRU context cache, so a campaign performs strictly
  fewer probe constructions than (workloads × policies); on-line items reuse
  a per-process :class:`~repro.simulation.SimulationKernel` as well.

:func:`run_policy_campaign` and :func:`run_scenario_campaign` keep their
pre-dispatcher APIs (sequential and parallel runs produce identical records
in identical order); :func:`stream_campaign` exposes the incremental record
stream, and :class:`CampaignStats` reports the throughput trajectory
(scenarios/sec, peak in-flight items, probe constructions) recorded by
``benchmarks/run_quick_bench.py``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.instance import Instance
from ..core.maxflow import FeasibilityProbe
from ..exceptions import WorkloadError
from ..heuristics import OnlinePolicy, PolicyOutcome, make_policy
from ..heuristics.registry import OFFLINE_OPTIMAL, SchedulingPolicy
from ..simulation import SimulationKernel
from ..workload.scenarios import ScenarioSpec, make_scenario, scenario_grid
from .stats import geometric_mean, summarize
from .tables import format_table

__all__ = [
    "CampaignRecord",
    "CampaignResult",
    "CampaignStats",
    "WorkloadSpec",
    "run_policy_campaign",
    "run_scenario_campaign",
    "stream_campaign",
]


@dataclass(frozen=True)
class CampaignRecord:
    """One (workload, policy) measurement.

    Attributes
    ----------
    workload:
        Label of the workload (e.g. ``"seed 3"`` or a scenario name).
    policy:
        Policy name (``"offline-optimal"`` for the LP optimum itself).
    max_weighted_flow, max_stretch, makespan:
        Raw metric values of the executed (or optimal) schedule.
    normalised:
        ``max_weighted_flow`` divided by the off-line optimum of the same
        workload (1.0 for the optimum itself).
    preemptions:
        Preemption count (0 for off-line schedules).
    """

    workload: str
    policy: str
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    normalised: float
    preemptions: int = 0


@dataclass
class CampaignStats:
    """Throughput trajectory of one campaign dispatch.

    Attributes
    ----------
    workloads, items, records:
        Work volume: distinct workloads, dispatched (workload, policy-chunk)
        items, and emitted records.
    probe_constructions:
        Total :class:`FeasibilityProbe` constructions across all workers —
        strictly fewer than ``workloads × policies`` whenever the per-
        workload sharing pays off.
    peak_in_flight:
        Maximum number of items simultaneously submitted to the pool (0 for
        in-process runs); bounded by ``max_inflight`` by construction.
    peak_pending_records:
        Maximum number of records buffered while waiting for an earlier item
        to finish (deterministic emission order), also bounded.
    elapsed_seconds:
        Wall-clock time of the dispatch.
    max_workers, chunk_size:
        The dispatch parameters, for the bench trajectory record.
    """

    workloads: int = 0
    items: int = 0
    records: int = 0
    probe_constructions: int = 0
    peak_in_flight: int = 0
    peak_pending_records: int = 0
    elapsed_seconds: float = 0.0
    max_workers: Optional[int] = None
    chunk_size: int = 1

    @property
    def scenarios_per_second(self) -> float:
        """Workloads processed per wall-clock second."""
        return self.workloads / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def records_per_second(self) -> float:
        """Records produced per wall-clock second."""
        return self.records / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view (used by the quick-bench trajectory files)."""
        return {
            "workloads": self.workloads,
            "items": self.items,
            "records": self.records,
            "probe_constructions": self.probe_constructions,
            "peak_in_flight": self.peak_in_flight,
            "peak_pending_records": self.peak_pending_records,
            "elapsed_seconds": self.elapsed_seconds,
            "scenarios_per_second": self.scenarios_per_second,
            "records_per_second": self.records_per_second,
            # None (in-process) stays null in JSON; 0 means "one per CPU".
            "max_workers": self.max_workers,
            "chunk_size": self.chunk_size,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """A lazy, picklable campaign workload.

    Either a concrete ``instance`` or a ``(scenario, seed)`` pointer that the
    worker materialises on demand (keeping huge sweeps out of the parent's
    memory).
    """

    label: str
    scenario: Optional[str] = None
    seed: Optional[int] = None
    instance: Optional[Instance] = None

    @classmethod
    def from_instance(cls, label: str, instance: Instance) -> "WorkloadSpec":
        """Wrap an already-built instance."""
        return cls(label=label, instance=instance)

    @classmethod
    def from_scenario(cls, spec: ScenarioSpec) -> "WorkloadSpec":
        """Wrap a lazy :class:`~repro.workload.scenarios.ScenarioSpec`."""
        return cls(label=spec.label, scenario=spec.scenario, seed=spec.seed)

    def materialise(self) -> Instance:
        """Build (or return) the instance."""
        if self.instance is not None:
            return self.instance
        if self.scenario is None:
            raise WorkloadError(f"workload {self.label!r} has neither instance nor scenario")
        return make_scenario(self.scenario, self.seed)


# --------------------------------------------------------------------------- #
# Result container                                                             #
# --------------------------------------------------------------------------- #
@dataclass
class CampaignResult:
    """All the records of a campaign plus aggregation helpers."""

    records: List[CampaignRecord] = field(default_factory=list)
    stats: Optional[CampaignStats] = None

    def policies(self) -> List[str]:
        """Distinct policy names, off-line optimum first."""
        names = sorted({record.policy for record in self.records})
        if OFFLINE_OPTIMAL in names:
            names.remove(OFFLINE_OPTIMAL)
            names.insert(0, OFFLINE_OPTIMAL)
        return names

    def records_for(self, policy: str) -> List[CampaignRecord]:
        """All records of one policy."""
        return [record for record in self.records if record.policy == policy]

    def mean_degradation(self, policy: str) -> float:
        """Geometric-mean normalised max weighted flow of one policy."""
        values = [record.normalised for record in self.records_for(policy)]
        if not values:
            raise WorkloadError(f"no records for policy {policy!r}")
        return geometric_mean(values)

    def ranking(self) -> List[str]:
        """Policies ordered from best (lowest mean degradation) to worst."""
        return sorted(
            (p for p in self.policies() if p != OFFLINE_OPTIMAL),
            key=self.mean_degradation,
        )

    def as_table(self) -> str:
        """Aggregate table: one row per policy."""
        rows = []
        for policy in self.policies():
            values = [record.normalised for record in self.records_for(policy)]
            stats = summarize(values)
            rows.append((policy, geometric_mean(values), stats.minimum, stats.maximum))
        return format_table(
            ["policy", "geo-mean vs optimum", "min", "max"],
            rows,
            title="Campaign summary (max weighted flow normalised by the off-line optimum)",
            float_format=".3f",
        )


# --------------------------------------------------------------------------- #
# Work items and the per-process workload context                              #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _CampaignItem:
    """One dispatch unit: a chunk of policies over one workload."""

    dispatch_id: int
    index: int
    workload_index: int
    spec: WorkloadSpec
    policies: Tuple[str, ...]
    emit_offline: bool
    scheduler_factory: Optional[Callable[[str], object]] = None


@dataclass
class _ItemResult:
    index: int
    records: List[CampaignRecord]
    probe_constructions: int


#: Per-process LRU of workload contexts: (dispatch id, workload index) ->
#: (instance, offline outcome, probe).  Small by design — consecutive items of
#: the same workload are what it exists for.
_CONTEXT_CACHE: "OrderedDict[Tuple[int, int], Tuple[Instance, PolicyOutcome, FeasibilityProbe]]" = (
    OrderedDict()
)
_CONTEXT_CACHE_SIZE = 4
#: Guards the cache's dict operations only (concurrent in-process campaigns);
#: the LP work itself runs unlocked, so two threads may build the same
#: context redundantly — wasteful but correct.
_CONTEXT_LOCK = threading.Lock()

#: Per-thread simulation kernels; every on-line run in a given worker thread
#: reuses one kernel's allocated array state (kernels are not thread-safe, so
#: concurrent in-process campaigns each get their own).
_KERNELS = threading.local()


def _thread_kernel() -> SimulationKernel:
    kernel = getattr(_KERNELS, "kernel", None)
    if kernel is None:
        kernel = _KERNELS.kernel = SimulationKernel()
    return kernel


def _workload_context(
    item: _CampaignItem,
) -> Tuple[Instance, PolicyOutcome, FeasibilityProbe, int]:
    """Instance, off-line optimum and shared probe of the item's workload.

    Returns a fourth element counting probe constructions performed by this
    call (0 on a context-cache hit).
    """
    key = (item.dispatch_id, item.workload_index)
    with _CONTEXT_LOCK:
        cached = _CONTEXT_CACHE.get(key)
        if cached is not None:
            _CONTEXT_CACHE.move_to_end(key)
            return cached[0], cached[1], cached[2], 0
    instance = item.spec.materialise()
    probe = FeasibilityProbe(instance)
    offline = make_policy(OFFLINE_OPTIMAL).run(instance, probe=probe)
    if offline.objective is None or offline.objective <= 0:
        raise WorkloadError(
            f"degenerate workload {item.spec.label!r}: zero optimal objective"
        )
    with _CONTEXT_LOCK:
        _CONTEXT_CACHE[key] = (instance, offline, probe)
        while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_SIZE:
            _CONTEXT_CACHE.popitem(last=False)
    return instance, offline, probe, 1


def _resolve_policy(
    name: str, scheduler_factory: Optional[Callable[[str], object]]
) -> SchedulingPolicy:
    """Resolve a policy name: registry by default, legacy factory if given."""
    if scheduler_factory is None:
        return make_policy(name)
    return OnlinePolicy(scheduler_factory(name))


def _record_from_outcome(
    label: str, outcome: PolicyOutcome, optimum: float
) -> CampaignRecord:
    return CampaignRecord(
        workload=label,
        policy=outcome.policy,
        max_weighted_flow=outcome.max_weighted_flow,
        max_stretch=outcome.max_stretch,
        makespan=outcome.makespan,
        normalised=1.0 if outcome.kind == "offline" else outcome.max_weighted_flow / optimum,
        preemptions=outcome.preemptions,
    )


def _run_campaign_item(item: _CampaignItem) -> _ItemResult:
    """Measure one item: (workload, policy chunk), sharing the workload context.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; also the in-process execution path.
    """
    instance, offline, probe, constructed = _workload_context(item)
    optimum = offline.objective
    records: List[CampaignRecord] = []
    if item.emit_offline:
        records.append(_record_from_outcome(item.spec.label, offline, optimum))
    kernel = _thread_kernel()
    for name in item.policies:
        policy = _resolve_policy(name, item.scheduler_factory)
        outcome = policy.run(instance, probe=probe, kernel=kernel)
        records.append(_record_from_outcome(item.spec.label, outcome, optimum))
    return _ItemResult(
        index=item.index, records=records, probe_constructions=constructed
    )


_DISPATCH_COUNTER = itertools.count()


def _campaign_items(
    specs: Iterable[WorkloadSpec],
    policies: Sequence[str],
    *,
    include_offline: bool,
    chunk_size: int,
    scheduler_factory: Optional[Callable[[str], object]],
    dispatch_id: int,
) -> Iterator[_CampaignItem]:
    """Lazily cut a sweep into per-(workload, policy-chunk) items."""
    if chunk_size < 1:
        raise WorkloadError("chunk_size must be at least 1")
    index = 0
    for workload_index, spec in enumerate(specs):
        chunks: List[Tuple[str, ...]] = [
            tuple(policies[start : start + chunk_size])
            for start in range(0, len(policies), chunk_size)
        ] or [()]
        for position, chunk in enumerate(chunks):
            yield _CampaignItem(
                dispatch_id=dispatch_id,
                index=index,
                workload_index=workload_index,
                spec=spec,
                policies=chunk,
                emit_offline=include_offline and position == 0,
                scheduler_factory=scheduler_factory,
            )
            index += 1


# --------------------------------------------------------------------------- #
# The streaming dispatcher                                                     #
# --------------------------------------------------------------------------- #
def stream_campaign(
    specs: Iterable[WorkloadSpec],
    policies: Sequence[str],
    *,
    include_offline: bool = True,
    scheduler_factory: Optional[Callable[[str], object]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = 1,
    max_inflight: Optional[int] = None,
    stats: Optional[CampaignStats] = None,
) -> Iterator[CampaignRecord]:
    """Yield campaign records incrementally, in deterministic order.

    Parameters
    ----------
    specs:
        Lazy workload descriptors; consumed incrementally, so generators of
        arbitrarily large sweeps are fine.
    policies:
        Policy names resolved through the registry (or ``scheduler_factory``).
    include_offline:
        Also emit the off-line optimum record of every workload (the optimum
        is computed either way — every normalisation is relative to it).
    scheduler_factory:
        ``None`` (default) resolves policy names through
        :func:`repro.heuristics.make_policy`.  A legacy factory mapping a
        name to an :class:`~repro.heuristics.base.OnlineScheduler` is wrapped
        per call; it must be picklable when a pool is used.
    max_workers:
        ``None`` runs in-process; any other value fans items out over a
        :class:`ProcessPoolExecutor` (``0`` means "one per CPU").
    chunk_size:
        Policies per dispatched item.  ``1`` (default) gives per-(workload,
        policy) granularity; larger chunks trade parallelism for less
        shipping of workload state.
    max_inflight:
        Cap on items submitted-but-not-yet-aggregated (default
        ``4 × workers``); bounds parent-side memory on huge sweeps.
    stats:
        Optional :class:`CampaignStats` filled in while streaming (counters
        update live; ``elapsed_seconds`` is set when the stream closes).

    Yields
    ------
    CampaignRecord
        In the same order a sequential run would produce: workload-major,
        off-line optimum first, then ``policies`` in the given order.
    """
    own_stats = stats if stats is not None else CampaignStats()
    own_stats.max_workers = max_workers
    own_stats.chunk_size = chunk_size
    dispatch_id = next(_DISPATCH_COUNTER)
    items = _campaign_items(
        specs,
        policies,
        include_offline=include_offline,
        chunk_size=chunk_size,
        scheduler_factory=scheduler_factory,
        dispatch_id=dispatch_id,
    )
    start = time.perf_counter()
    seen_workloads = -1

    def account(result: _ItemResult, workload_index: int) -> None:
        nonlocal seen_workloads
        own_stats.items += 1
        own_stats.records += len(result.records)
        own_stats.probe_constructions += result.probe_constructions
        seen_workloads = max(seen_workloads, workload_index)
        own_stats.workloads = seen_workloads + 1
        own_stats.elapsed_seconds = time.perf_counter() - start

    if max_workers is None:
        for item in items:
            result = _run_campaign_item(item)
            account(result, item.workload_index)
            yield from result.records
        own_stats.elapsed_seconds = time.perf_counter() - start
        return

    workers = max_workers if max_workers > 0 else (os.cpu_count() or 1)
    try:
        spec_count: Optional[int] = len(specs)  # type: ignore[arg-type]
    except TypeError:
        spec_count = None  # generator sweep: item count unknown up front
    if spec_count is not None:
        chunks_per_workload = max(1, -(-len(policies) // chunk_size))
        # The pool spawns every worker eagerly; don't fork more processes
        # than there are items to run.
        workers = max(1, min(workers, spec_count * chunks_per_workload))
    inflight_cap = max_inflight if max_inflight is not None else 4 * workers
    if inflight_cap < 1:
        raise WorkloadError("max_inflight must be at least 1")

    pending: Dict = {}  # future -> item
    ready: Dict[int, _ItemResult] = {}  # completed, waiting for emission order
    next_emit = 0

    with ProcessPoolExecutor(max_workers=workers) as pool:

        def submit_up_to_cap() -> None:
            while len(pending) + len(ready) < inflight_cap:
                item = next(items, None)
                if item is None:
                    return
                pending[pool.submit(_run_campaign_item, item)] = item
                own_stats.peak_in_flight = max(own_stats.peak_in_flight, len(pending))

        submit_up_to_cap()
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                item = pending.pop(future)
                result = future.result()  # propagate worker exceptions
                ready[result.index] = result
                account(result, item.workload_index)
            own_stats.peak_pending_records = max(
                own_stats.peak_pending_records,
                sum(len(r.records) for r in ready.values()),
            )
            while next_emit in ready:
                yield from ready.pop(next_emit).records
                next_emit += 1
            submit_up_to_cap()
        # Emission order is dense, so nothing can remain buffered.
        assert not ready, "streaming dispatcher lost an item"
    own_stats.elapsed_seconds = time.perf_counter() - start


# --------------------------------------------------------------------------- #
# Public campaign runners                                                      #
# --------------------------------------------------------------------------- #
def run_policy_campaign(
    instances: Iterable[Instance],
    policies: Sequence[str],
    *,
    labels: Optional[Sequence[str]] = None,
    include_offline: bool = True,
    scheduler_factory: Optional[Callable[[str], object]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = 1,
    max_inflight: Optional[int] = None,
) -> CampaignResult:
    """Run every policy on every instance and collect normalised metrics.

    Parameters
    ----------
    instances:
        The workloads to schedule.
    policies:
        Policy names understood by the registry (or ``scheduler_factory``).
    labels:
        Optional workload labels (defaults to ``"workload 0"``, ...).
    include_offline:
        Also record the off-line optimum itself (policy ``"offline-optimal"``),
        which every normalisation is relative to.
    scheduler_factory:
        ``None`` (default) resolves names through the policy registry
        (:func:`repro.heuristics.make_policy`).  A legacy name→scheduler
        factory is accepted for compatibility; it must be picklable (a
        module-level function) when ``max_workers`` enables the process pool.
    max_workers:
        ``None`` (default) runs sequentially in-process.  Any other value
        fans the (workload, policy) items out over a
        :class:`ProcessPoolExecutor` with that many workers (``0`` means
        "one per CPU").  Record order is deterministic and identical to the
        sequential path.
    chunk_size, max_inflight:
        Streaming-dispatch knobs, see :func:`stream_campaign`.
    """
    instances = list(instances)
    if not instances:
        raise WorkloadError("a campaign needs at least one instance")
    if labels is None:
        labels = [f"workload {index}" for index in range(len(instances))]
    if len(labels) != len(instances):
        raise WorkloadError("labels and instances must have the same length")

    specs = [
        WorkloadSpec.from_instance(label, instance)
        for label, instance in zip(labels, instances)
    ]
    stats = CampaignStats()
    result = CampaignResult(stats=stats)
    for record in stream_campaign(
        specs,
        policies,
        include_offline=include_offline,
        scheduler_factory=scheduler_factory,
        max_workers=max_workers,
        chunk_size=chunk_size,
        max_inflight=max_inflight,
        stats=stats,
    ):
        result.records.append(record)
    return result


def run_scenario_campaign(
    scenario_names: Optional[Sequence[str]],
    policies: Sequence[str],
    *,
    seeds: Optional[Sequence[Optional[int]]] = (None,),
    base_seed: Optional[int] = None,
    seeds_per_scenario: int = 1,
    include_offline: bool = True,
    max_workers: Optional[int] = None,
    chunk_size: int = 1,
    max_inflight: Optional[int] = None,
) -> CampaignResult:
    """Sweep named workload scenarios (optionally over several seeds).

    Enumerates the ``(scenario, seed)`` grid lazily via
    :func:`repro.workload.scenarios.scenario_grid` — instances are built
    inside the workers — and streams the records through
    :func:`stream_campaign`.  Labels are ``"<scenario>#<seed>"`` (just the
    scenario name when a single default seed is used).  Pass ``base_seed``
    (with ``seeds_per_scenario``) instead of explicit ``seeds`` to spawn
    per-scenario seed streams that are reproducible independent of worker
    count and chunking.
    """
    if base_seed is not None and seeds == (None,):
        seeds = None  # the default sentinel must not conflict with base_seed
    grid = scenario_grid(
        scenario_names, seeds, base_seed=base_seed, seeds_per_scenario=seeds_per_scenario
    )
    specs = [WorkloadSpec.from_scenario(spec) for spec in grid]
    stats = CampaignStats()
    result = CampaignResult(stats=stats)
    for record in stream_campaign(
        specs,
        policies,
        include_offline=include_offline,
        max_workers=max_workers,
        chunk_size=chunk_size,
        max_inflight=max_inflight,
        stats=stats,
    ):
        result.records.append(record)
    return result
