"""Experiment campaigns: a streaming dispatcher over (workload, policy) tasks.

The benches of this repository each reproduce one paper artefact; a *campaign*
is the general-purpose version a downstream user needs: sweep a family of
workloads, run the off-line optimum and a set of policies on each, collect
normalised metrics and render a report.

The campaign layer is the dispatcher of the unified policy runtime
(:mod:`repro.heuristics.registry` resolves policies by name, the array-backed
:mod:`repro.simulation` kernel executes the on-line ones):

* **Lazy workloads** — a sweep is enumerated as cheap :class:`WorkloadSpec`
  descriptors (a scenario name and seed, or a concrete instance); scenario
  grids are materialised inside the workers, so a 10k-scenario sweep never
  holds 10k instances in the parent process.
* **Streaming chunked dispatch** — work is cut into per-(workload,
  policy-chunk) items (``chunk_size=1`` gives per-policy parallelism), at
  most ``max_inflight`` items are submitted to the process pool at any time,
  and finished records are aggregated incrementally in deterministic order,
  so memory stays bounded no matter how large the sweep is.
* **Shared probes, one optimum per workload** — every item of a workload
  reuses one :class:`~repro.core.maxflow.FeasibilityProbe` (and one off-line
  optimum) through a per-process LRU context cache; in parallel dispatch the
  first finished item of a workload ships the pinned optimum back to the
  parent, which pre-seeds it into the workload's later items, so the LP
  optimum is solved **exactly once per workload at any worker count**.
* **Durable results** — pass ``store=`` (an
  :class:`~repro.store.ExperimentStore` or a path) and every record is
  persisted under its content digest while streaming; ``resume=True`` skips
  already-present digests *before* dispatch, turning a killed or
  re-parameterised sweep into an incremental top-up that computes only the
  missing cells.

:func:`run_policy_campaign` and :func:`run_scenario_campaign` keep their
pre-dispatcher APIs (sequential and parallel runs produce identical records
in identical order); :func:`stream_campaign` exposes the incremental record
stream, and :class:`CampaignStats` reports the throughput trajectory
(scenarios/sec, peak in-flight items, probe constructions, off-line solves,
resumed records) recorded by ``benchmarks/run_quick_bench.py``.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.instance import Instance
from ..core.maxflow import FeasibilityProbe
from ..exceptions import WorkloadError
from ..obs.clock import wall_clock
from ..obs.journal import RunJournal
from ..obs.metrics import collecting, get_recorder
from ..heuristics import OnlinePolicy, PolicyOutcome, make_policy
from ..heuristics.registry import (
    OFFLINE_OPTIMAL,
    SchedulingPolicy,
    policy_spec,
    resolve_policy_variant,
)
from ..simulation import SimulationKernel
from ..workload.scenarios import ScenarioSpec, make_scenario, scenario_grid
from .stats import geometric_mean, summarize
from .tables import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import would cycle)
    from ..store import ExperimentStore

__all__ = [
    "CampaignRecord",
    "CampaignResult",
    "CampaignStats",
    "WorkloadSpec",
    "run_policy_campaign",
    "run_scenario_campaign",
    "stream_campaign",
]


@dataclass(frozen=True)
class CampaignRecord:
    """One (workload, policy) measurement.

    Attributes
    ----------
    workload:
        Label of the workload (e.g. ``"seed 3"`` or a scenario name).
    policy:
        Policy name (``"offline-optimal"`` for the LP optimum itself).
    max_weighted_flow, max_stretch, makespan:
        Raw metric values of the executed (or optimal) schedule.
    normalised:
        ``max_weighted_flow`` divided by the off-line optimum of the same
        workload (1.0 for the optimum itself).
    preemptions:
        Preemption count (0 for off-line schedules).
    """

    workload: str
    policy: str
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    normalised: float
    preemptions: int = 0


@dataclass
class CampaignStats:
    """Throughput trajectory of one campaign dispatch.

    Attributes
    ----------
    workloads, items, records:
        Work volume: distinct workloads, dispatched (workload, policy-chunk)
        items, and emitted records.
    probe_constructions:
        Total :class:`FeasibilityProbe` constructions across all workers —
        strictly fewer than ``workloads × policies`` whenever the per-
        workload sharing pays off.
    offline_solves:
        Off-line optimum LP searches performed — exactly one per computed
        workload at any worker count (the parent ships the pinned optimum
        into a workload's later items), and zero for workloads fully
        resumed from a store.  Explicitly requested ``offline-optimal``
        cells reuse the context's outcome where possible; when a pinned
        parallel item cannot, its extra solve is counted here too.
    resumed_records, computed_records:
        Split of ``records`` into cells loaded from the experiment store
        (``resume=True``) and cells actually computed this dispatch.
    store_new_records:
        Content rows newly inserted into the store (0 without a store).
    store_run_id:
        Run id allocated in the store for this dispatch (``None`` without).
    peak_in_flight:
        Maximum number of items simultaneously submitted to the pool (0 for
        in-process runs); bounded by ``max_inflight`` by construction.
    peak_pending_records:
        Maximum number of records buffered while waiting for an earlier item
        to finish (deterministic emission order), also bounded.
    elapsed_seconds:
        Wall-clock time of the dispatch.
    max_workers, chunk_size:
        The dispatch parameters, for the bench trajectory record.
    """

    workloads: int = 0
    items: int = 0
    records: int = 0
    probe_constructions: int = 0
    offline_solves: int = 0
    resumed_records: int = 0
    computed_records: int = 0
    store_new_records: int = 0
    store_run_id: Optional[int] = None
    peak_in_flight: int = 0
    peak_pending_records: int = 0
    elapsed_seconds: float = 0.0
    max_workers: Optional[int] = None
    chunk_size: int = 1

    @property
    def scenarios_per_second(self) -> float:
        """Workloads processed per wall-clock second."""
        return self.workloads / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def records_per_second(self) -> float:
        """Records produced per wall-clock second."""
        return self.records / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def resume_skip_rate(self) -> float:
        """Fraction of records served from the store instead of computed."""
        return self.resumed_records / self.records if self.records > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view (used by the quick-bench trajectory files)."""
        return {
            "workloads": self.workloads,
            "items": self.items,
            "records": self.records,
            "probe_constructions": self.probe_constructions,
            "offline_solves": self.offline_solves,
            "resumed_records": self.resumed_records,
            "computed_records": self.computed_records,
            "resume_skip_rate": self.resume_skip_rate,
            "store_new_records": self.store_new_records,
            "store_run_id": self.store_run_id,
            "peak_in_flight": self.peak_in_flight,
            "peak_pending_records": self.peak_pending_records,
            "elapsed_seconds": self.elapsed_seconds,
            "scenarios_per_second": self.scenarios_per_second,
            "records_per_second": self.records_per_second,
            # None (in-process) stays null in JSON; 0 means "one per CPU".
            "max_workers": self.max_workers,
            "chunk_size": self.chunk_size,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """A lazy, picklable campaign workload.

    Either a concrete ``instance`` or a ``(scenario, seed)`` pointer that the
    worker materialises on demand (keeping huge sweeps out of the parent's
    memory).
    """

    label: str
    scenario: Optional[str] = None
    seed: Optional[int] = None
    instance: Optional[Instance] = None

    @classmethod
    def from_instance(cls, label: str, instance: Instance) -> "WorkloadSpec":
        """Wrap an already-built instance."""
        return cls(label=label, instance=instance)

    @classmethod
    def from_scenario(cls, spec: ScenarioSpec) -> "WorkloadSpec":
        """Wrap a lazy :class:`~repro.workload.scenarios.ScenarioSpec`."""
        return cls(label=spec.label, scenario=spec.scenario, seed=spec.seed)

    def materialise(self) -> Instance:
        """Build (or return) the instance."""
        if self.instance is not None:
            return self.instance
        if self.scenario is None:
            raise WorkloadError(f"workload {self.label!r} has neither instance nor scenario")
        return make_scenario(self.scenario, self.seed)

    def content_key(self) -> str:
        """Stable identity of the workload for content-addressed storage.

        Scenario workloads are keyed by (scenario name, seed) — the pair
        that fully determines the generated instance; concrete instances by
        a digest of their full payload (jobs, machines, costs).
        """
        if self.scenario is not None:
            # One format, owned by ScenarioSpec: diverging copies would
            # silently stop matching previously stored cells.
            return ScenarioSpec(
                label=self.label, scenario=self.scenario, seed=self.seed
            ).content_key()
        if self.instance is None:
            raise WorkloadError(f"workload {self.label!r} has neither instance nor scenario")
        from ..store.digest import instance_digest  # deferred: avoids module cycle

        return f"instance-sha256={instance_digest(self.instance)}"


# --------------------------------------------------------------------------- #
# Result container                                                             #
# --------------------------------------------------------------------------- #
@dataclass
class CampaignResult:
    """All the records of a campaign plus aggregation helpers."""

    records: List[CampaignRecord] = field(default_factory=list)
    stats: Optional[CampaignStats] = None

    def policies(self) -> List[str]:
        """Distinct policy names, off-line optimum first."""
        names = sorted({record.policy for record in self.records})
        if OFFLINE_OPTIMAL in names:
            names.remove(OFFLINE_OPTIMAL)
            names.insert(0, OFFLINE_OPTIMAL)
        return names

    def records_for(self, policy: str) -> List[CampaignRecord]:
        """All records of one policy."""
        return [record for record in self.records if record.policy == policy]

    def mean_degradation(self, policy: str) -> float:
        """Geometric-mean normalised max weighted flow of one policy."""
        values = [record.normalised for record in self.records_for(policy)]
        if not values:
            raise WorkloadError(f"no records for policy {policy!r}")
        return geometric_mean(values)

    def ranking(self) -> List[str]:
        """Policies ordered from best (lowest mean degradation) to worst."""
        return sorted(
            (p for p in self.policies() if p != OFFLINE_OPTIMAL),
            key=self.mean_degradation,
        )

    def as_table(self) -> str:
        """Aggregate table: one row per policy."""
        rows = []
        for policy in self.policies():
            values = [record.normalised for record in self.records_for(policy)]
            stats = summarize(values)
            rows.append((policy, geometric_mean(values), stats.minimum, stats.maximum))
        return format_table(
            ["policy", "geo-mean vs optimum", "min", "max"],
            rows,
            title="Campaign summary (max weighted flow normalised by the off-line optimum)",
            float_format=".3f",
        )


# --------------------------------------------------------------------------- #
# Work items and the per-process workload context                              #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _CampaignItem:
    """One dispatch unit: a chunk of policies over one workload.

    ``pinned_optimum`` carries a workload's already-known off-line optimum
    (from the parent's first finished item of the workload, or from a
    resumed store record) into the worker, which then skips the LP search
    entirely.
    """

    dispatch_id: int
    index: int
    workload_index: int
    spec: WorkloadSpec
    policies: Tuple[str, ...]
    emit_offline: bool
    scheduler_factory: Optional[Callable[[str], object]] = None
    pinned_optimum: Optional[float] = None
    #: Run the item under a scoped recorder and ship the snapshot back, so
    #: the parent can fold worker-side metrics deterministically (set when
    #: the driver's ambient recorder supports ``merge_snapshot``).
    collect_metrics: bool = False


@dataclass
class _ItemResult:
    index: int
    records: List[CampaignRecord]
    probe_constructions: int
    offline_solves: int = 0
    optimum: Optional[float] = None
    #: Scoped-recorder snapshot of the item (``collect_metrics`` only).
    snapshot: Optional[Dict[str, Dict[str, object]]] = None
    worker_pid: int = 0
    elapsed_seconds: float = 0.0


#: Per-process LRU of workload contexts: (dispatch id, workload index) ->
#: (instance, offline outcome or None, optimum, probe or None).  Small by
#: design — consecutive items of the same workload are what it exists for.
_CONTEXT_CACHE: "OrderedDict[Tuple[int, int], Tuple[Instance, Optional[PolicyOutcome], float, Optional[FeasibilityProbe]]]" = (
    OrderedDict()
)
_CONTEXT_CACHE_SIZE = 4
#: Guards the cache's dict operations only (concurrent in-process campaigns);
#: the LP work itself runs unlocked, so two threads may build the same
#: context redundantly — wasteful but correct.
_CONTEXT_LOCK = threading.Lock()

#: Per-thread simulation kernels; every on-line run in a given worker thread
#: reuses one kernel's allocated array state (kernels are not thread-safe, so
#: concurrent in-process campaigns each get their own).
_KERNELS = threading.local()


def _thread_kernel() -> SimulationKernel:
    kernel = getattr(_KERNELS, "kernel", None)
    if kernel is None:
        kernel = _KERNELS.kernel = SimulationKernel()
    return kernel


def _policy_base_name(token: str) -> str:
    """Base registry name of a (possibly parameterised) policy token."""
    return token.partition(":")[0] if ":" in token else token


def _policy_cell_identity(token: str) -> Tuple[str, Dict]:
    """The ``(policy name, params)`` identity a cell token digests under.

    Registered policies resolve their variant tokens to the canonical base
    name plus non-default params (so ``"name:param=default"`` digests like a
    bare ``"name"``); unregistered names — legacy ``scheduler_factory``
    campaigns — digest the raw token with empty params, as before.
    """
    try:
        policy_spec(_policy_base_name(token))
    except KeyError:
        return token, {}
    variant = resolve_policy_variant(token)
    return variant.base, dict(variant.params)


def _item_needs_probe(item: _CampaignItem) -> bool:
    """Whether any of the item's policies is off-line (wants a shared probe)."""
    if item.scheduler_factory is not None:
        return False  # legacy factories produce on-line schedulers only
    for name in item.policies:
        try:
            if policy_spec(_policy_base_name(name)).kind == "offline":
                return True
        except KeyError:
            return True  # unknown name: build the probe, let make_policy raise
    return False


def _workload_context(
    item: _CampaignItem,
) -> Tuple[Instance, Optional[PolicyOutcome], float, Optional[FeasibilityProbe], int, int]:
    """Instance, off-line optimum and shared probe of the item's workload.

    Returns two trailing counters: probe constructions and off-line LP
    solves performed by this call (both 0 on a context-cache hit).  Items
    carrying a ``pinned_optimum`` skip the LP search — and the probe
    construction, unless one of their policies is itself off-line.
    """
    key = (item.dispatch_id, item.workload_index)
    with _CONTEXT_LOCK:
        cached = _CONTEXT_CACHE.get(key)
        # A pinned context (offline outcome None) cannot serve an item that
        # must emit the off-line record; fall through and solve.
        if cached is not None and not (item.emit_offline and cached[1] is None):
            _CONTEXT_CACHE.move_to_end(key)
            return cached[0], cached[1], cached[2], cached[3], 0, 0
    instance = cached[0] if cached is not None else item.spec.materialise()
    probe = cached[3] if cached is not None else None
    constructed = 0
    solved = 0
    if item.pinned_optimum is not None and not item.emit_offline:
        offline: Optional[PolicyOutcome] = None
        optimum = item.pinned_optimum
        if probe is None and _item_needs_probe(item):
            probe = FeasibilityProbe(instance)
            constructed = 1
    else:
        if probe is None:
            probe = FeasibilityProbe(instance)
            constructed = 1
        offline = make_policy(OFFLINE_OPTIMAL).run(instance, probe=probe)
        solved = 1
        if offline.objective is None or offline.objective <= 0:
            raise WorkloadError(
                f"degenerate workload {item.spec.label!r}: zero optimal objective"
            )
        optimum = offline.objective
    with _CONTEXT_LOCK:
        _CONTEXT_CACHE[key] = (instance, offline, optimum, probe)
        while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_SIZE:
            _CONTEXT_CACHE.popitem(last=False)
    return instance, offline, optimum, probe, constructed, solved


def _resolve_policy(
    name: str, scheduler_factory: Optional[Callable[[str], object]]
) -> SchedulingPolicy:
    """Resolve a policy name: registry by default, legacy factory if given."""
    if scheduler_factory is None:
        return make_policy(name)
    return OnlinePolicy(scheduler_factory(name))


def _record_from_outcome(
    label: str, outcome: PolicyOutcome, optimum: float
) -> CampaignRecord:
    return CampaignRecord(
        workload=label,
        policy=outcome.policy,
        max_weighted_flow=outcome.max_weighted_flow,
        max_stretch=outcome.max_stretch,
        makespan=outcome.makespan,
        normalised=1.0 if outcome.kind == "offline" else outcome.max_weighted_flow / optimum,
        preemptions=outcome.preemptions,
    )


def _compatible_probe(
    probe: Optional[FeasibilityProbe], policy: SchedulingPolicy
) -> Optional[FeasibilityProbe]:
    """The shared workload probe, unless the policy's LP model mismatches it.

    Parameterised off-line variants (``offline-optimal:preemptive=true``) use
    a different parametric model than the workload's shared probe; handing
    them the mismatched probe would raise, so they solve standalone instead.
    """
    if probe is None or policy.kind != "offline":
        return probe
    if getattr(policy, "preemptive", False) != probe.preemptive:
        return None
    if getattr(policy, "backend", probe.backend) != probe.backend:
        return None
    return probe


def _run_campaign_item(item: _CampaignItem) -> _ItemResult:
    """Measure one item: (workload, policy chunk), with telemetry envelope.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; also the in-process execution path.  When the item asks for
    ``collect_metrics``, the measurement runs under a scoped recorder and
    the snapshot ships back with the result — the parent folds it in
    deterministic emission order, so sequential and parallel dispatch
    build byte-identical merged snapshots.
    """
    started = wall_clock()
    if item.collect_metrics:
        with collecting() as item_recorder:
            result = _execute_campaign_item(item)
            item_recorder.observe("campaign.chunk_seconds", wall_clock() - started)
        result.snapshot = item_recorder.snapshot()
    else:
        result = _execute_campaign_item(item)
    result.elapsed_seconds = wall_clock() - started
    result.worker_pid = os.getpid()
    return result


def _execute_campaign_item(item: _CampaignItem) -> _ItemResult:
    """The measurement itself: (workload, policy chunk) over a shared context."""
    instance, offline, optimum, probe, constructed, solved = _workload_context(item)
    records: List[CampaignRecord] = []
    if item.emit_offline:
        records.append(_record_from_outcome(item.spec.label, offline, optimum))
    kernel = _thread_kernel()
    for name in item.policies:
        if name == OFFLINE_OPTIMAL and item.scheduler_factory is None:
            # An explicitly requested optimum cell reuses the context's
            # outcome; a pinned context (no outcome) solves once — counted —
            # and backfills the cache for the workload's later items.
            if offline is None:
                if probe is None:
                    probe = FeasibilityProbe(instance)
                    constructed += 1
                offline = make_policy(OFFLINE_OPTIMAL).run(instance, probe=probe)
                solved += 1
                with _CONTEXT_LOCK:
                    _CONTEXT_CACHE[(item.dispatch_id, item.workload_index)] = (
                        instance,
                        offline,
                        optimum,
                        probe,
                    )
            records.append(_record_from_outcome(item.spec.label, offline, optimum))
            continue
        policy = _resolve_policy(name, item.scheduler_factory)
        outcome = policy.run(
            instance, probe=_compatible_probe(probe, policy), kernel=kernel
        )
        records.append(_record_from_outcome(item.spec.label, outcome, optimum))
    return _ItemResult(
        index=item.index,
        records=records,
        probe_constructions=constructed,
        offline_solves=solved,
        optimum=optimum,
    )


_DISPATCH_COUNTER = itertools.count()

#: Items planned per store-lookup round on the in-process path (the parallel
#: path rounds by its in-flight budget instead).
_PLAN_BATCH = 64


def _campaign_items(
    specs: Iterable[WorkloadSpec],
    policies: Sequence[str],
    *,
    include_offline: bool,
    chunk_size: int,
    scheduler_factory: Optional[Callable[[str], object]],
    dispatch_id: int,
) -> Iterator[_CampaignItem]:
    """Lazily cut a sweep into per-(workload, policy-chunk) items."""
    if chunk_size < 1:
        raise WorkloadError("chunk_size must be at least 1")
    index = 0
    for workload_index, spec in enumerate(specs):
        chunks: List[Tuple[str, ...]] = [
            tuple(policies[start : start + chunk_size])
            for start in range(0, len(policies), chunk_size)
        ] or [()]
        for position, chunk in enumerate(chunks):
            yield _CampaignItem(
                dispatch_id=dispatch_id,
                index=index,
                workload_index=workload_index,
                spec=spec,
                policies=chunk,
                emit_offline=include_offline and position == 0,
                scheduler_factory=scheduler_factory,
            )
            index += 1


# --------------------------------------------------------------------------- #
# Parent-side dispatch plans (store lookups, resume, pinned optima)            #
# --------------------------------------------------------------------------- #
@dataclass
class _RecordSlot:
    """One output cell of an item: its policy, digest and (maybe) stored copy.

    ``from_policies`` separates cells requested through ``item.policies``
    (which may themselves name ``offline-optimal``) from the synthetic
    emit-offline cell in front of them.
    """

    policy: str
    digest: str = ""
    stored: Optional[CampaignRecord] = None
    from_policies: bool = True


@dataclass
class _ItemPlan:
    """Parent-side view of one item: what to dispatch, what to reuse.

    ``item`` is the (possibly reduced) dispatch unit — ``None`` when every
    cell was found in the store; ``slots`` preserve the full emission order
    so stored and computed records interleave deterministically.
    """

    index: int
    workload_index: int
    spec: WorkloadSpec
    workload_key: str
    item: Optional[_CampaignItem]
    slots: List[_RecordSlot]


def _plan_items(
    items: Sequence[_CampaignItem],
    store: Optional["ExperimentStore"],
    resume: bool,
    digester: Optional[Callable[..., str]],
    key_cache: Optional[Dict[int, str]] = None,
    collect_metrics: bool = False,
) -> List[_ItemPlan]:
    """Consult the store for a batch of items and shrink each to its missing cells.

    All the batch's cell digests (plus each workload's off-line digest, which
    pins the optimum even for items that do not emit it) go to the store in
    **one** :meth:`~repro.store.ExperimentStore.lookup` call — one ``IN``
    query per planning round instead of one per dispatched item, which is
    what keeps parent-side query counts flat on 10k-cell resumed sweeps.

    ``key_cache`` memoises ``content_key()`` per workload index — for
    concrete-instance workloads the key digests the full payload, which must
    not be recomputed once per policy chunk.
    """
    prepared: List[Tuple[_CampaignItem, str, List[_RecordSlot], str]] = []
    wanted: Set[str] = set()
    for item in items:
        if store is None:
            key = ""
        elif key_cache is not None:
            key = key_cache.get(item.workload_index)
            if key is None:
                # Items arrive in workload-major order, so one live entry
                # suffices; clearing bounds the cache on unbounded sweeps.
                key_cache.clear()
                key = key_cache[item.workload_index] = item.spec.content_key()
        else:
            key = item.spec.content_key()
        slots = [
            _RecordSlot(
                policy=name,
                digest=digester(key, name) if store is not None else "",
                from_policies=False,
            )
            for name in ([OFFLINE_OPTIMAL] if item.emit_offline else [])
        ] + [
            _RecordSlot(policy=name, digest=digester(key, name) if store is not None else "")
            for name in item.policies
        ]
        offline_digest = digester(key, OFFLINE_OPTIMAL) if resume and store is not None else ""
        if resume and store is not None:
            wanted.update(slot.digest for slot in slots)
            wanted.add(offline_digest)
        prepared.append((item, key, slots, offline_digest))

    found = store.lookup(wanted) if wanted else {}

    plans: List[_ItemPlan] = []
    for item, key, slots, offline_digest in prepared:
        pinned = item.pinned_optimum
        if resume and store is not None:
            for slot in slots:
                hit = found.get(slot.digest)
                if hit is not None:
                    # The digest deliberately ignores labels (same content,
                    # any label); re-label the cell for the *current* sweep.
                    slot.stored = replace(
                        hit.to_campaign_record(), workload=item.spec.label
                    )
            offline_hit = found.get(offline_digest)
            if pinned is None and offline_hit is not None and offline_hit.objective is not None:
                pinned = offline_hit.objective
        missing = tuple(
            slot.policy for slot in slots if slot.stored is None and slot.from_policies
        )
        offline_needed = item.emit_offline and slots[0].stored is None
        if not missing and not offline_needed:
            reduced: Optional[_CampaignItem] = None
        else:
            reduced = replace(
                item,
                policies=missing,
                emit_offline=offline_needed,
                pinned_optimum=pinned,
                collect_metrics=collect_metrics,
            )
        plans.append(
            _ItemPlan(
                index=item.index,
                workload_index=item.workload_index,
                spec=item.spec,
                workload_key=key,
                item=reduced,
                slots=slots,
            )
        )
    return plans


# --------------------------------------------------------------------------- #
# The streaming dispatcher                                                     #
# --------------------------------------------------------------------------- #
def stream_campaign(
    specs: Iterable[WorkloadSpec],
    policies: Sequence[str],
    *,
    include_offline: bool = True,
    scheduler_factory: Optional[Callable[[str], object]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = 1,
    max_inflight: Optional[int] = None,
    stats: Optional[CampaignStats] = None,
    store: Optional[Union[str, Path, "ExperimentStore"]] = None,
    resume: bool = False,
    run_label: Optional[str] = None,
    journal: Optional[Union[str, Path, RunJournal]] = None,
) -> Iterator[CampaignRecord]:
    """Yield campaign records incrementally, in deterministic order.

    Parameters
    ----------
    specs:
        Lazy workload descriptors; consumed incrementally, so generators of
        arbitrarily large sweeps are fine.
    policies:
        Policy names resolved through the registry (or ``scheduler_factory``).
    include_offline:
        Also emit the off-line optimum record of every workload (the optimum
        is computed either way — every normalisation is relative to it).
    scheduler_factory:
        ``None`` (default) resolves policy names through
        :func:`repro.heuristics.make_policy`.  A legacy factory mapping a
        name to an :class:`~repro.heuristics.base.OnlineScheduler` is wrapped
        per call; it must be picklable when a pool is used.
    max_workers:
        ``None`` runs in-process; any other value fans items out over a
        :class:`ProcessPoolExecutor` (``0`` means "one per CPU").
    chunk_size:
        Policies per dispatched item.  ``1`` (default) gives per-(workload,
        policy) granularity; larger chunks trade parallelism for less
        shipping of workload state.
    max_inflight:
        Cap on items submitted-but-not-yet-aggregated (default
        ``4 × workers``); bounds parent-side memory on huge sweeps.
    stats:
        Optional :class:`CampaignStats` filled in while streaming (counters
        update live; ``elapsed_seconds`` is set when the stream closes).
    store:
        Persist every record into this :class:`~repro.store.ExperimentStore`
        (a path opens — and closes — a store for the duration).  The
        dispatch registers as a new *run*; records are content-addressed, so
        re-computing a known cell never duplicates data.  Batches commit
        incrementally: a killed process loses at most one batch.
    resume:
        Skip cells whose digests are already present in ``store`` *before*
        dispatch — stored records are emitted in place (flagged in
        ``stats.resumed_records``) and only the missing cells are computed.
    run_label:
        Label of the run registered in the store (default ``"campaign"``).
    journal:
        Append lifecycle events (run started/finished, cell dispatched /
        completed / skipped-by-resume, worker heartbeats, batch commits)
        to this :class:`~repro.obs.journal.RunJournal` (a path opens — and
        closes — one for the duration).  The journal is a reporting
        artefact on the wall clock: records, digests and fingerprints are
        byte-identical with journaling on or off.

    Yields
    ------
    CampaignRecord
        In the same order a sequential run would produce: workload-major,
        off-line optimum first, then ``policies`` in the given order.
    """
    own_stats = stats if stats is not None else CampaignStats()
    own_stats.max_workers = max_workers
    own_stats.chunk_size = chunk_size
    if resume and store is None:
        raise WorkloadError("resume=True needs a store to resume from")

    # Deferred imports: repro.store depends on this module for CampaignRecord,
    # so the dependency must not be circular at import time.
    from ..store import ExperimentStore
    from ..store.digest import record_digest

    own_store: Optional[ExperimentStore] = None
    if store is not None and not isinstance(store, ExperimentStore):
        store = own_store = ExperimentStore(store)
    digester = None
    if store is not None:
        # Cell identity is (base policy, non-default params): parameterised
        # variants digest distinct cells while bare names keep their
        # historical digests (legacy factory names stay opaque tokens).
        identity_memo: Dict[str, Tuple[str, Dict]] = {}

        def digester(key: str, token: str) -> str:
            identity = identity_memo.get(token)
            if identity is None:
                if scheduler_factory is not None:
                    identity = (token, {})
                else:
                    identity = _policy_cell_identity(token)
                identity_memo[token] = identity
            return record_digest(key, identity[0], params=identity[1])

    run_id: Optional[int] = None
    writer = None
    if store is not None:
        run_id = store.begin_run(
            run_label or "campaign",
            meta={
                "policies": list(policies),
                "include_offline": include_offline,
                "chunk_size": chunk_size,
                "max_workers": max_workers,
                "resume": resume,
            },
        )
        own_stats.store_run_id = run_id
        writer = store.writer(run_id)

    own_journal: Optional[RunJournal] = None
    if journal is not None:
        if not isinstance(journal, RunJournal):
            journal = own_journal = RunJournal(journal)
        try:
            spec_total: Optional[int] = len(specs)  # type: ignore[arg-type]
        except TypeError:
            spec_total = None  # generator sweep: cell count unknown up front
        journal_config: Dict[str, object] = {
            "policies": list(policies),
            "include_offline": include_offline,
            "chunk_size": chunk_size,
            "max_workers": max_workers,
            "resume": resume,
        }
        if spec_total is not None:
            journal_config["total_cells"] = spec_total * (
                len(policies) + (1 if include_offline else 0)
            )
        if run_id is not None:
            journal_config["store_run_id"] = run_id
        journal.begin_run("campaign", run_label or "campaign", journal_config)

    dispatch_id = next(_DISPATCH_COUNTER)
    items = _campaign_items(
        specs,
        policies,
        include_offline=include_offline,
        chunk_size=chunk_size,
        scheduler_factory=scheduler_factory,
        dispatch_id=dispatch_id,
    )
    start = wall_clock()
    recorder = get_recorder()
    # Cross-process aggregation (ISSUE 10): when the ambient recorder can
    # fold snapshots, EVERY item — in-process ones included — runs under a
    # scoped recorder and is folded at deterministic emission order, so the
    # merged driver snapshot is byte-identical at any worker count.
    # Protocol recorders without ``merge_snapshot`` keep the pre-fold
    # behaviour (in-process items record directly; worker-side telemetry
    # stays per cell).
    merge = getattr(recorder, "merge_snapshot", None) if recorder.enabled else None
    seen_workloads = -1
    workload_keys: Dict[int, str] = {}  # content_key memo, see _plan_item
    worker_progress: Dict[str, int] = {}  # journal heartbeat item counts
    last_commits = 0  # journalled batch-commit watermark

    def journal_cell(event: str, plan: _ItemPlan, **fields: object) -> None:
        if journal is None:
            return
        if plan.item is not None:
            names = (
                [OFFLINE_OPTIMAL] if plan.item.emit_offline else []
            ) + list(plan.item.policies)
        else:
            names = [slot.policy for slot in plan.slots]
        journal.record(
            event,
            cell=f"{plan.spec.label}#{plan.index}",
            workload=plan.spec.label,
            item=plan.index,
            policies=names,
            **fields,
        )

    def journal_completed(plan: _ItemPlan, result: _ItemResult) -> None:
        journal_cell(
            "cell-completed",
            plan,
            cells=len(result.records),
            elapsed=result.elapsed_seconds,
            worker=f"p{result.worker_pid}",
        )

    def journal_heartbeat(result: _ItemResult) -> None:
        if journal is None:
            return
        worker = f"p{result.worker_pid}"
        worker_progress[worker] = worker_progress.get(worker, 0) + 1
        journal.record(
            "worker-heartbeat", worker=worker, items=worker_progress[worker]
        )

    def note_workload(workload_index: int) -> None:
        nonlocal seen_workloads
        seen_workloads = max(seen_workloads, workload_index)
        own_stats.workloads = seen_workloads + 1
        own_stats.elapsed_seconds = wall_clock() - start

    def account_result(result: _ItemResult, workload_index: int) -> None:
        own_stats.items += 1
        own_stats.probe_constructions += result.probe_constructions
        own_stats.offline_solves += result.offline_solves
        if recorder.enabled:
            recorder.count("campaign.items")
            recorder.count("campaign.probe_constructions", float(result.probe_constructions))
            recorder.count("campaign.offline_solves", float(result.offline_solves))
        note_workload(workload_index)

    def emit_plan(
        plan: _ItemPlan,
        computed: Sequence[CampaignRecord],
        optimum: Optional[float],
    ) -> Iterator[CampaignRecord]:
        """Interleave stored and computed records in slot order, persisting
        each one as it streams out."""
        nonlocal last_commits
        computed_iter = iter(computed)
        for slot in plan.slots:
            if slot.stored is not None:
                record = slot.stored
                own_stats.resumed_records += 1
            else:
                record = next(computed_iter)
                own_stats.computed_records += 1
            own_stats.records += 1
            if writer is not None:
                writer.add(
                    slot.digest,
                    record,
                    workload_key=plan.workload_key,
                    scenario=plan.spec.scenario,
                    seed=plan.spec.seed,
                    objective=optimum if slot.policy == OFFLINE_OPTIMAL else None,
                    computed=slot.stored is None,
                )
                if journal is not None and writer.commits > last_commits:
                    last_commits = writer.commits
                    journal.record(
                        "batch-commit",
                        commits=last_commits,
                        records=own_stats.records,
                    )
            yield record

    completed = False
    try:
        if max_workers is None:
            while True:
                batch = list(itertools.islice(items, _PLAN_BATCH))
                if not batch:
                    break
                for plan in _plan_items(
                    batch,
                    store,
                    resume,
                    digester,
                    workload_keys,
                    collect_metrics=merge is not None,
                ):
                    if plan.item is None:
                        note_workload(plan.workload_index)
                        journal_cell("cell-skipped", plan, cells=len(plan.slots))
                        yield from emit_plan(plan, (), None)
                        continue
                    journal_cell("cell-dispatched", plan)
                    if merge is None and recorder.enabled:
                        chunk_started = wall_clock()
                        result = _run_campaign_item(plan.item)
                        recorder.observe(
                            "campaign.chunk_seconds", wall_clock() - chunk_started
                        )
                    else:
                        result = _run_campaign_item(plan.item)
                    if merge is not None and result.snapshot is not None:
                        merge(result.snapshot)
                    account_result(result, plan.workload_index)
                    journal_completed(plan, result)
                    yield from emit_plan(plan, result.records, result.optimum)
            completed = True
            return

        workers = max_workers if max_workers > 0 else (os.cpu_count() or 1)
        try:
            spec_count: Optional[int] = len(specs)  # type: ignore[arg-type]
        except TypeError:
            spec_count = None  # generator sweep: item count unknown up front
        if spec_count is not None:
            chunks_per_workload = max(1, -(-len(policies) // chunk_size))
            # The pool spawns every worker eagerly; don't fork more processes
            # than there are items to run.
            workers = max(1, min(workers, spec_count * chunks_per_workload))
        inflight_cap = max_inflight if max_inflight is not None else 4 * workers
        if inflight_cap < 1:
            raise WorkloadError("max_inflight must be at least 1")

        pending: Dict = {}  # future -> plan
        plans: Dict[int, _ItemPlan] = {}  # admitted, not yet emitted
        #: completed or fully-resumed, waiting for emission order (snapshots
        #: are folded at emission, never at completion, so the merge order is
        #: the deterministic sequential order).
        ready: Dict[int, _ItemResult] = {}
        deferred: Dict[int, List[_ItemPlan]] = {}  # workload -> gated plans
        release_queue: "deque[_ItemPlan]" = deque()
        known_optimum: Dict[int, float] = {}
        solving: Set[int] = set()  # workloads with their LP search in flight
        next_emit = 0
        exhausted = False

        with ProcessPoolExecutor(max_workers=workers) as pool:

            def submit(plan: _ItemPlan) -> None:
                journal_cell("cell-dispatched", plan)
                pending[pool.submit(_run_campaign_item, plan.item)] = plan
                own_stats.peak_in_flight = max(own_stats.peak_in_flight, len(pending))
                if recorder.enabled:
                    recorder.gauge("campaign.in_flight", float(len(pending)))

            def admit(plan: _ItemPlan) -> None:
                """Route one plan: mark ready, submit, or gate on the optimum.

                Items of a workload whose optimum is neither stored nor yet
                shipped back wait for the workload's first (solver) item, so
                the LP search runs exactly once per workload.
                """
                plans[plan.index] = plan
                if plan.item is None:
                    note_workload(plan.workload_index)
                    journal_cell("cell-skipped", plan, cells=len(plan.slots))
                    ready[plan.index] = _ItemResult(
                        index=plan.index, records=[], probe_constructions=0
                    )
                    return
                workload = plan.workload_index
                if plan.item.pinned_optimum is None and not plan.item.emit_offline:
                    if workload in known_optimum:
                        plan.item = replace(
                            plan.item, pinned_optimum=known_optimum[workload]
                        )
                    elif workload in solving:
                        deferred.setdefault(workload, []).append(plan)
                        return
                    else:
                        solving.add(workload)
                elif plan.item.pinned_optimum is None:
                    solving.add(workload)  # the emit-offline item is the solver
                submit(plan)

            def fill() -> None:
                nonlocal exhausted
                # Released (previously gated) plans are gated on the pending
                # count only: the cell blocking in-order emission may itself
                # sit in the release queue, so counting aggregated-but-
                # unemitted records here would livelock the stream under an
                # adverse completion order.
                while release_queue and len(pending) < inflight_cap:
                    plan = release_queue.popleft()
                    plan.item = replace(
                        plan.item,
                        pinned_optimum=known_optimum[plan.workload_index],
                    )
                    submit(plan)
                # Admissions are planned in rounds: the whole round's store
                # lookups collapse into one IN query (see _plan_items).
                while len(pending) + len(ready) < inflight_cap and not release_queue:
                    if exhausted:
                        return
                    budget = inflight_cap - len(pending) - len(ready)
                    batch = list(itertools.islice(items, budget))
                    if len(batch) < budget:
                        exhausted = True
                    if not batch:
                        return
                    for plan in _plan_items(
                        batch,
                        store,
                        resume,
                        digester,
                        workload_keys,
                        collect_metrics=merge is not None,
                    ):
                        admit(plan)

            fill()
            while pending or ready or release_queue or not exhausted:
                while next_emit in ready:
                    result = ready.pop(next_emit)
                    plan = plans.pop(next_emit)
                    if merge is not None and result.snapshot is not None:
                        merge(result.snapshot)
                    yield from emit_plan(plan, result.records, result.optimum)
                    next_emit += 1
                    fill()  # emission freed in-flight budget
                fill()
                if not pending:
                    # Nothing in flight: either more work just became ready /
                    # releasable (loop again), or the sweep is drained.
                    if ready or release_queue or not exhausted:
                        continue
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    plan = pending.pop(future)
                    result = future.result()  # propagate worker exceptions
                    account_result(result, plan.workload_index)
                    journal_completed(plan, result)
                    journal_heartbeat(result)
                    ready[plan.index] = result
                    workload = plan.workload_index
                    solving.discard(workload)
                    if result.optimum is not None and workload not in known_optimum:
                        known_optimum[workload] = result.optimum
                    if workload in deferred and workload in known_optimum:
                        release_queue.extend(deferred.pop(workload))
                own_stats.peak_pending_records = max(
                    own_stats.peak_pending_records,
                    sum(len(result.records) for result in ready.values()),
                )
            # Emission order is dense, so nothing can remain buffered.
            assert not ready and not deferred, "streaming dispatcher lost an item"
        completed = True
    finally:
        own_stats.elapsed_seconds = wall_clock() - start
        if writer is not None:
            writer.close()
            own_stats.store_new_records = writer.inserted
            store.finish_run(run_id, completed=completed, stats=own_stats.as_dict())
        if own_store is not None:
            own_store.close()
        if journal is not None:
            journal.record(
                "run-finished",
                status="completed" if completed else "aborted",
                records=own_stats.records,
                elapsed=own_stats.elapsed_seconds,
            )
            if own_journal is not None:
                own_journal.close()


# --------------------------------------------------------------------------- #
# Public campaign runners                                                      #
# --------------------------------------------------------------------------- #
def run_policy_campaign(
    instances: Iterable[Instance],
    policies: Sequence[str],
    *,
    labels: Optional[Sequence[str]] = None,
    include_offline: bool = True,
    scheduler_factory: Optional[Callable[[str], object]] = None,
    max_workers: Optional[int] = None,
    chunk_size: int = 1,
    max_inflight: Optional[int] = None,
    store: Optional[Union[str, Path, "ExperimentStore"]] = None,
    resume: bool = False,
    run_label: Optional[str] = None,
    journal: Optional[Union[str, Path, RunJournal]] = None,
) -> CampaignResult:
    """Run every policy on every instance and collect normalised metrics.

    Parameters
    ----------
    instances:
        The workloads to schedule.
    policies:
        Policy names understood by the registry (or ``scheduler_factory``).
    labels:
        Optional workload labels (defaults to ``"workload 0"``, ...).
    include_offline:
        Also record the off-line optimum itself (policy ``"offline-optimal"``),
        which every normalisation is relative to.
    scheduler_factory:
        ``None`` (default) resolves names through the policy registry
        (:func:`repro.heuristics.make_policy`).  A legacy name→scheduler
        factory is accepted for compatibility; it must be picklable (a
        module-level function) when ``max_workers`` enables the process pool.
    max_workers:
        ``None`` (default) runs sequentially in-process.  Any other value
        fans the (workload, policy) items out over a
        :class:`ProcessPoolExecutor` with that many workers (``0`` means
        "one per CPU").  Record order is deterministic and identical to the
        sequential path.
    chunk_size, max_inflight:
        Streaming-dispatch knobs, see :func:`stream_campaign`.
    store, resume, run_label, journal:
        Experiment-store sink, resume mode and run-journal sink, see
        :func:`stream_campaign`.
    """
    instances = list(instances)
    if not instances:
        raise WorkloadError("a campaign needs at least one instance")
    if labels is None:
        labels = [f"workload {index}" for index in range(len(instances))]
    if len(labels) != len(instances):
        raise WorkloadError("labels and instances must have the same length")

    specs = [
        WorkloadSpec.from_instance(label, instance)
        for label, instance in zip(labels, instances)
    ]
    stats = CampaignStats()
    result = CampaignResult(stats=stats)
    for record in stream_campaign(
        specs,
        policies,
        include_offline=include_offline,
        scheduler_factory=scheduler_factory,
        max_workers=max_workers,
        chunk_size=chunk_size,
        max_inflight=max_inflight,
        stats=stats,
        store=store,
        resume=resume,
        run_label=run_label,
        journal=journal,
    ):
        result.records.append(record)
    return result


def run_scenario_campaign(
    scenario_names: Optional[Sequence[str]],
    policies: Sequence[str],
    *,
    seeds: Optional[Sequence[Optional[int]]] = (None,),
    base_seed: Optional[int] = None,
    seeds_per_scenario: int = 1,
    include_offline: bool = True,
    max_workers: Optional[int] = None,
    chunk_size: int = 1,
    max_inflight: Optional[int] = None,
    store: Optional[Union[str, Path, "ExperimentStore"]] = None,
    resume: bool = False,
    run_label: Optional[str] = None,
    journal: Optional[Union[str, Path, RunJournal]] = None,
) -> CampaignResult:
    """Sweep named workload scenarios (optionally over several seeds).

    Enumerates the ``(scenario, seed)`` grid lazily via
    :func:`repro.workload.scenarios.scenario_grid` — instances are built
    inside the workers — and streams the records through
    :func:`stream_campaign`.  Labels are ``"<scenario>#<seed>"`` (just the
    scenario name when a single default seed is used).  Pass ``base_seed``
    (with ``seeds_per_scenario``) instead of explicit ``seeds`` to spawn
    per-scenario seed streams that are reproducible independent of worker
    count and chunking.  ``store``/``resume`` persist the sweep and top up a
    partial one (see :func:`stream_campaign`).
    """
    if base_seed is not None and seeds == (None,):
        seeds = None  # the default sentinel must not conflict with base_seed
    grid = scenario_grid(
        scenario_names, seeds, base_seed=base_seed, seeds_per_scenario=seeds_per_scenario
    )
    specs = [WorkloadSpec.from_scenario(spec) for spec in grid]
    stats = CampaignStats()
    result = CampaignResult(stats=stats)
    for record in stream_campaign(
        specs,
        policies,
        include_offline=include_offline,
        max_workers=max_workers,
        chunk_size=chunk_size,
        max_inflight=max_inflight,
        stats=stats,
        store=store,
        resume=resume,
        run_label=run_label,
        journal=journal,
    ):
        result.records.append(record)
    return result
