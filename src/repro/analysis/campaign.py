"""Experiment campaigns: run many (instance, policy) combinations and aggregate.

The benches of this repository each reproduce one paper artefact; a *campaign*
is the general-purpose version a downstream user needs: sweep a family of
workloads, run the off-line solvers and a set of on-line policies on each,
collect normalised metrics and render a report.  The on-line-vs-off-line
example and several benches are thin wrappers around this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from ..core.instance import Instance
from ..core.maxflow import minimize_max_weighted_flow
from ..exceptions import WorkloadError
from ..heuristics import make_scheduler
from ..simulation import simulate
from .stats import geometric_mean, summarize
from .tables import format_table

__all__ = ["CampaignRecord", "CampaignResult", "run_policy_campaign"]


@dataclass(frozen=True)
class CampaignRecord:
    """One (workload, policy) measurement.

    Attributes
    ----------
    workload:
        Label of the workload (e.g. ``"seed 3"`` or a scenario name).
    policy:
        Policy name (``"offline-optimal"`` for the LP optimum itself).
    max_weighted_flow, max_stretch, makespan:
        Raw metric values of the executed (or optimal) schedule.
    normalised:
        ``max_weighted_flow`` divided by the off-line optimum of the same
        workload (1.0 for the optimum itself).
    preemptions:
        Preemption count (0 for off-line schedules).
    """

    workload: str
    policy: str
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    normalised: float
    preemptions: int = 0


@dataclass
class CampaignResult:
    """All the records of a campaign plus aggregation helpers."""

    records: List[CampaignRecord] = field(default_factory=list)

    def policies(self) -> List[str]:
        """Distinct policy names, off-line optimum first."""
        names = sorted({record.policy for record in self.records})
        if "offline-optimal" in names:
            names.remove("offline-optimal")
            names.insert(0, "offline-optimal")
        return names

    def records_for(self, policy: str) -> List[CampaignRecord]:
        """All records of one policy."""
        return [record for record in self.records if record.policy == policy]

    def mean_degradation(self, policy: str) -> float:
        """Geometric-mean normalised max weighted flow of one policy."""
        values = [record.normalised for record in self.records_for(policy)]
        if not values:
            raise WorkloadError(f"no records for policy {policy!r}")
        return geometric_mean(values)

    def ranking(self) -> List[str]:
        """Policies ordered from best (lowest mean degradation) to worst."""
        return sorted(
            (p for p in self.policies() if p != "offline-optimal"),
            key=self.mean_degradation,
        )

    def as_table(self) -> str:
        """Aggregate table: one row per policy."""
        rows = []
        for policy in self.policies():
            values = [record.normalised for record in self.records_for(policy)]
            stats = summarize(values)
            rows.append((policy, geometric_mean(values), stats.minimum, stats.maximum))
        return format_table(
            ["policy", "geo-mean vs optimum", "min", "max"],
            rows,
            title="Campaign summary (max weighted flow normalised by the off-line optimum)",
            float_format=".3f",
        )


def run_policy_campaign(
    instances: Iterable[Instance],
    policies: Sequence[str],
    *,
    labels: Optional[Sequence[str]] = None,
    include_offline: bool = True,
    scheduler_factory: Callable[[str], object] = make_scheduler,
) -> CampaignResult:
    """Run every policy on every instance and collect normalised metrics.

    Parameters
    ----------
    instances:
        The workloads to schedule.
    policies:
        Policy names understood by ``scheduler_factory``.
    labels:
        Optional workload labels (defaults to ``"workload 0"``, ...).
    include_offline:
        Also record the off-line optimum itself (policy ``"offline-optimal"``),
        which every normalisation is relative to.
    scheduler_factory:
        Factory mapping a policy name to a scheduler object (defaults to
        :func:`repro.heuristics.make_scheduler`).
    """
    instances = list(instances)
    if not instances:
        raise WorkloadError("a campaign needs at least one instance")
    if labels is None:
        labels = [f"workload {index}" for index in range(len(instances))]
    if len(labels) != len(instances):
        raise WorkloadError("labels and instances must have the same length")

    result = CampaignResult()
    for label, instance in zip(labels, instances):
        offline = minimize_max_weighted_flow(instance)
        optimum = offline.objective
        if optimum <= 0:
            raise WorkloadError(f"degenerate workload {label!r}: zero optimal objective")
        if include_offline:
            metrics = offline.schedule.metrics()
            result.records.append(
                CampaignRecord(
                    workload=label,
                    policy="offline-optimal",
                    max_weighted_flow=metrics.max_weighted_flow,
                    max_stretch=metrics.max_stretch or 0.0,
                    makespan=metrics.makespan,
                    normalised=1.0,
                )
            )
        for policy in policies:
            simulation = simulate(instance, scheduler_factory(policy))
            metrics = simulation.metrics()
            result.records.append(
                CampaignRecord(
                    workload=label,
                    policy=policy,
                    max_weighted_flow=metrics.max_weighted_flow,
                    max_stretch=metrics.max_stretch or 0.0,
                    makespan=metrics.makespan,
                    normalised=metrics.max_weighted_flow / optimum,
                    preemptions=simulation.num_preemptions,
                )
            )
    return result
