"""ASCII table rendering for bench output and examples.

The benchmark harness prints, for every reproduced figure/table, the same
rows or series the paper reports.  This module renders them as plain-text
tables so that the bench output is readable in a terminal and diff-able in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_key_values"]

Cell = Union[str, int, float]


def _render_cell(value: Cell, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_format: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row cells; numbers are formatted with ``float_format``.
    float_format:
        ``format()`` spec applied to floats.
    title:
        Optional title printed above the table.
    """
    rendered_rows: List[List[str]] = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = render_line(list(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_key_values(pairs: Sequence[tuple], *, float_format: str = ".4g") -> str:
    """Render ``(key, value)`` pairs as an aligned two-column block."""
    if not pairs:
        return ""
    key_width = max(len(str(key)) for key, _ in pairs)
    lines = []
    for key, value in pairs:
        lines.append(f"{str(key).ljust(key_width)} : {_render_cell(value, float_format)}")
    return "\n".join(lines)
