"""Least-squares linear regression with the statistics the paper quotes.

Section 2 of the paper estimates the fixed overheads of the GriPPS divisibility
experiments by linear regression (1.1 s for sequence partitioning, 10.5 s for
motif partitioning) and argues that the correlation is "nearly perfectly
linear".  This module provides the corresponding analysis: slope, intercept,
coefficient of determination, standard errors and confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from ..exceptions import WorkloadError

__all__ = ["LinearFit", "linear_regression"]


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares fit ``y ≈ intercept + slope * x``.

    Attributes
    ----------
    slope, intercept:
        Fitted coefficients.
    r_squared:
        Coefficient of determination.
    slope_stderr, intercept_stderr:
        Standard errors of the coefficients.
    num_points:
        Number of observations used.
    """

    slope: float
    intercept: float
    r_squared: float
    slope_stderr: float
    intercept_stderr: float
    num_points: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * x

    def intercept_confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Two-sided confidence interval for the intercept (Student t)."""
        return self._confidence_interval(self.intercept, self.intercept_stderr, confidence)

    def slope_confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Two-sided confidence interval for the slope (Student t)."""
        return self._confidence_interval(self.slope, self.slope_stderr, confidence)

    def _confidence_interval(
        self, value: float, stderr: float, confidence: float
    ) -> Tuple[float, float]:
        if not 0.0 < confidence < 1.0:
            raise WorkloadError(f"confidence must be in (0, 1), got {confidence}")
        dof = max(self.num_points - 2, 1)
        quantile = float(stats.t.ppf(0.5 + confidence / 2.0, dof))
        return (value - quantile * stderr, value + quantile * stderr)

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"y = {self.intercept:.4g} + {self.slope:.4g} x  "
            f"(R^2 = {self.r_squared:.5f}, n = {self.num_points})"
        )


def linear_regression(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` against ``x``.

    Raises
    ------
    WorkloadError
        If fewer than two points are supplied or all ``x`` values coincide.
    """
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape:
        raise WorkloadError(
            f"x and y must have the same shape, got {x_array.shape} and {y_array.shape}"
        )
    if x_array.ndim != 1 or x_array.size < 2:
        raise WorkloadError("linear regression needs at least two one-dimensional observations")
    if np.allclose(x_array, x_array[0]):
        raise WorkloadError("cannot regress against a constant abscissa")

    n = x_array.size
    x_mean = x_array.mean()
    y_mean = y_array.mean()
    sxx = float(np.sum((x_array - x_mean) ** 2))
    sxy = float(np.sum((x_array - x_mean) * (y_array - y_mean)))
    syy = float(np.sum((y_array - y_mean) ** 2))

    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    residuals = y_array - (intercept + slope * x_array)
    sse = float(np.sum(residuals**2))
    r_squared = 1.0 if syy == 0.0 else 1.0 - sse / syy

    dof = max(n - 2, 1)
    sigma2 = sse / dof
    slope_stderr = float(np.sqrt(sigma2 / sxx))
    intercept_stderr = float(np.sqrt(sigma2 * (1.0 / n + x_mean**2 / sxx)))

    return LinearFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        slope_stderr=slope_stderr,
        intercept_stderr=intercept_stderr,
        num_points=n,
    )
