"""Regression analyses: least-squares fits and cross-run metric diffs.

Section 2 of the paper estimates the fixed overheads of the GriPPS divisibility
experiments by linear regression (1.1 s for sequence partitioning, 10.5 s for
motif partitioning) and argues that the correlation is "nearly perfectly
linear".  This module provides the corresponding analysis: slope, intercept,
coefficient of determination, standard errors and confidence intervals.

It also hosts the *cross-run* regression analysis of the experiment store:
:func:`cross_run_diff` compares the per-policy headline metrics of two
campaign runs (today's sweep against last PR's) and flags each delta as
``ok`` / ``regressed`` / ``improved`` under a relative tolerance — the
computation behind ``repro-sched store diff``
(:func:`repro.analysis.reporting.render_cross_run_diff` renders it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..exceptions import WorkloadError

__all__ = [
    "CellDelta",
    "CellDiff",
    "CrossRunDiff",
    "LinearFit",
    "MetricDelta",
    "cross_run_cell_diff",
    "cross_run_diff",
    "linear_regression",
]


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares fit ``y ≈ intercept + slope * x``.

    Attributes
    ----------
    slope, intercept:
        Fitted coefficients.
    r_squared:
        Coefficient of determination.
    slope_stderr, intercept_stderr:
        Standard errors of the coefficients.
    num_points:
        Number of observations used.
    """

    slope: float
    intercept: float
    r_squared: float
    slope_stderr: float
    intercept_stderr: float
    num_points: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * x

    def intercept_confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Two-sided confidence interval for the intercept (Student t)."""
        return self._confidence_interval(self.intercept, self.intercept_stderr, confidence)

    def slope_confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Two-sided confidence interval for the slope (Student t)."""
        return self._confidence_interval(self.slope, self.slope_stderr, confidence)

    def _confidence_interval(
        self, value: float, stderr: float, confidence: float
    ) -> Tuple[float, float]:
        if not 0.0 < confidence < 1.0:
            raise WorkloadError(f"confidence must be in (0, 1), got {confidence}")
        dof = max(self.num_points - 2, 1)
        quantile = float(stats.t.ppf(0.5 + confidence / 2.0, dof))
        return (value - quantile * stderr, value + quantile * stderr)

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"y = {self.intercept:.4g} + {self.slope:.4g} x  "
            f"(R^2 = {self.r_squared:.5f}, n = {self.num_points})"
        )


def linear_regression(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` against ``x``.

    Raises
    ------
    WorkloadError
        If fewer than two points are supplied or all ``x`` values coincide.
    """
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape:
        raise WorkloadError(
            f"x and y must have the same shape, got {x_array.shape} and {y_array.shape}"
        )
    if x_array.ndim != 1 or x_array.size < 2:
        raise WorkloadError("linear regression needs at least two one-dimensional observations")
    if np.allclose(x_array, x_array[0]):
        raise WorkloadError("cannot regress against a constant abscissa")

    n = x_array.size
    x_mean = x_array.mean()
    y_mean = y_array.mean()
    sxx = float(np.sum((x_array - x_mean) ** 2))
    sxy = float(np.sum((x_array - x_mean) * (y_array - y_mean)))
    syy = float(np.sum((y_array - y_mean) ** 2))

    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    residuals = y_array - (intercept + slope * x_array)
    sse = float(np.sum(residuals**2))
    r_squared = 1.0 if syy == 0.0 else 1.0 - sse / syy

    dof = max(n - 2, 1)
    sigma2 = sse / dof
    slope_stderr = float(np.sqrt(sigma2 / sxx))
    intercept_stderr = float(np.sqrt(sigma2 * (1.0 / n + x_mean**2 / sxx)))

    return LinearFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        slope_stderr=slope_stderr,
        intercept_stderr=intercept_stderr,
        num_points=n,
    )


# --------------------------------------------------------------------------- #
# Cross-run regression diffs                                                   #
# --------------------------------------------------------------------------- #

#: Metrics compared for exact equality rather than a relative tolerance
#: (a coverage change is a "changed", never a "regressed").
_COUNT_METRICS = frozenset({"records"})


@dataclass(frozen=True)
class MetricDelta:
    """One (policy, metric) comparison between two campaign runs.

    All headline metrics of the experiment store are *lower-is-better*
    (geo-mean/max normalised degradation, mean preemptions) except the
    coverage counts in :data:`_COUNT_METRICS`, which are compared for
    equality.
    """

    policy: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        """``current - baseline`` (``None`` when either side is missing)."""
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def relative_delta(self) -> Optional[float]:
        """``(current - baseline) / |baseline|``; ``None`` when undefined."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)

    def flag(self, tolerance: float = 1e-6) -> str:
        """Classify the delta: ``ok``/``regressed``/``improved``/``changed``/
        ``added``/``removed``."""
        if self.baseline is None:
            return "added"
        if self.current is None:
            return "removed"
        if self.metric in _COUNT_METRICS:
            return "ok" if self.current == self.baseline else "changed"
        scale = max(abs(self.baseline), abs(self.current), 1e-300)
        if abs(self.current - self.baseline) <= tolerance * scale:
            return "ok"
        return "regressed" if self.current > self.baseline else "improved"


@dataclass
class CrossRunDiff:
    """Per-policy metric deltas between a baseline and a current run.

    Deltas are ordered by (policy, metric), so the diff — and anything
    rendered from it — is deterministic for given inputs.
    """

    baseline_label: str
    current_label: str
    deltas: List[MetricDelta]

    def for_policy(self, policy: str) -> List[MetricDelta]:
        """The deltas of one policy."""
        return [delta for delta in self.deltas if delta.policy == policy]

    def regressions(self, tolerance: float = 1e-6) -> List[MetricDelta]:
        """Deltas flagged ``regressed`` under ``tolerance``."""
        return [delta for delta in self.deltas if delta.flag(tolerance) == "regressed"]

    def is_clean(self, tolerance: float = 1e-6) -> bool:
        """True when every delta is ``ok`` (no regressions, improvements or
        coverage changes — byte-level reproducibility)."""
        return all(delta.flag(tolerance) == "ok" for delta in self.deltas)


# --------------------------------------------------------------------------- #
# Per-cell diffs                                                                #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CellDelta:
    """One per-cell comparison: a (workload, policy) measurement in two runs.

    Where :class:`MetricDelta` compares per-policy *aggregates*, a cell delta
    localises a change to one scenario: cells are joined on
    ``(workload_key, policy)`` — the same identity the store digests — so
    label changes between sweeps do not break the join.  The compared metric
    is lower-is-better (``max_weighted_flow`` by default).
    """

    workload: str
    workload_key: str
    policy: str
    baseline: Optional[float]
    current: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        """``current - baseline`` (``None`` when either side is missing)."""
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def relative_delta(self) -> Optional[float]:
        """``(current - baseline) / |baseline|``; ``None`` when undefined."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)

    def flag(self, tolerance: float = 1e-6) -> str:
        """Classify: ``ok``/``regressed``/``improved``/``added``/``removed``."""
        if self.baseline is None:
            return "added"
        if self.current is None:
            return "removed"
        scale = max(abs(self.baseline), abs(self.current), 1e-300)
        if abs(self.current - self.baseline) <= tolerance * scale:
            return "ok"
        return "regressed" if self.current > self.baseline else "improved"


@dataclass
class CellDiff:
    """Per-cell deltas between two runs, ordered by (policy, workload key)."""

    baseline_label: str
    current_label: str
    metric: str
    deltas: List[CellDelta]

    def regressions(self, tolerance: float = 1e-6) -> List[CellDelta]:
        """Cells flagged ``regressed`` under ``tolerance``."""
        return [delta for delta in self.deltas if delta.flag(tolerance) == "regressed"]

    def non_ok(self, tolerance: float = 1e-6) -> List[CellDelta]:
        """Cells whose flag is anything but ``ok``."""
        return [delta for delta in self.deltas if delta.flag(tolerance) != "ok"]

    def is_clean(self, tolerance: float = 1e-6) -> bool:
        """True when every joined cell is within tolerance and none is missing."""
        return not self.non_ok(tolerance)


def cross_run_cell_diff(
    baseline_cells: Sequence,
    current_cells: Sequence,
    *,
    metric: str = "max_weighted_flow",
    baseline_label: str = "baseline",
    current_label: str = "current",
) -> CellDiff:
    """Join two runs' cells on (workload key, policy) and diff one metric.

    ``baseline_cells``/``current_cells`` are record-like objects exposing
    ``workload_key``, ``policy``, ``workload`` and the ``metric`` attribute —
    :class:`repro.store.StoredRecord` rows in practice
    (:func:`repro.store.diff_run_cells` is the store-level entry point).
    Cells present on only one side yield ``added``/``removed`` deltas, which
    is how a coverage change (new scenario, new policy variant) shows up.
    """

    def index(cells) -> Dict[Tuple[str, str], object]:
        table: Dict[Tuple[str, str], object] = {}
        for cell in cells:
            table[(cell.policy, cell.workload_key)] = cell
        return table

    base_table = index(baseline_cells)
    curr_table = index(current_cells)
    deltas: List[CellDelta] = []
    for key in sorted(set(base_table) | set(curr_table)):
        policy, workload_key = key
        base = base_table.get(key)
        curr = curr_table.get(key)
        label_source = curr if curr is not None else base
        deltas.append(
            CellDelta(
                workload=getattr(label_source, "workload", workload_key),
                workload_key=workload_key,
                policy=policy,
                baseline=None if base is None else float(getattr(base, metric)),
                current=None if curr is None else float(getattr(curr, metric)),
            )
        )
    return CellDiff(
        baseline_label=baseline_label,
        current_label=current_label,
        metric=metric,
        deltas=deltas,
    )


def cross_run_diff(
    baseline: Mapping[str, Mapping[str, float]],
    current: Mapping[str, Mapping[str, float]],
    *,
    baseline_label: str = "baseline",
    current_label: str = "current",
) -> CrossRunDiff:
    """Diff two ``policy -> metric -> value`` mappings.

    The mappings are what :meth:`repro.store.ExperimentStore.headline_metrics`
    returns for a finished run; policies or metrics present on only one side
    yield ``added``/``removed`` deltas instead of being dropped.
    """
    if not baseline and not current:
        raise WorkloadError("cross_run_diff needs at least one non-empty run")
    deltas: List[MetricDelta] = []
    for policy in sorted(set(baseline) | set(current)):
        base_metrics = baseline.get(policy, {})
        curr_metrics = current.get(policy, {})
        for metric in sorted(set(base_metrics) | set(curr_metrics)):
            deltas.append(
                MetricDelta(
                    policy=policy,
                    metric=metric,
                    baseline=base_metrics.get(metric),
                    current=curr_metrics.get(metric),
                )
            )
    return CrossRunDiff(
        baseline_label=baseline_label, current_label=current_label, deltas=deltas
    )
