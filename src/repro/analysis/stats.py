"""Summary statistics used by the benches and examples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from ..exceptions import WorkloadError

__all__ = ["SummaryStatistics", "summarize", "confidence_interval", "geometric_mean", "ratio_table"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean / spread summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Compute count/mean/std/min/max/median of a non-empty sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise WorkloadError("cannot summarise an empty sample")
    return SummaryStatistics(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
    )


def confidence_interval(values: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of a sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size < 2:
        raise WorkloadError("a confidence interval needs at least two observations")
    if not 0.0 < confidence < 1.0:
        raise WorkloadError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(array.mean())
    sem = float(array.std(ddof=1) / math.sqrt(array.size))
    quantile = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, array.size - 1))
    return (mean - quantile * sem, mean + quantile * sem)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values (used for ratio aggregation)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise WorkloadError("cannot take the geometric mean of an empty sample")
    if (array <= 0).any():
        raise WorkloadError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(array))))


def ratio_table(reference: Dict[str, float], measured: Dict[str, float]) -> Dict[str, float]:
    """Return ``measured / reference`` for every key present in both mappings."""
    ratios: Dict[str, float] = {}
    for key, ref_value in reference.items():
        if key in measured and ref_value != 0:
            ratios[key] = measured[key] / ref_value
    return ratios
