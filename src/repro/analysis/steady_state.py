"""Steady-state metric estimation over streaming simulations.

A rolling-horizon run (:class:`~repro.simulation.stream.StreamResult`)
produces per-completion metric *series* rather than a single schedule, and
the quantity of interest is the **steady-state** behaviour — what the paper's
portal sees under sustained load — not the transient of the first arrivals.
This module supplies the standard simulation-output machinery:

* **Warmup truncation** — the first ``warmup_fraction`` of completions is
  discarded (the initial transient: an empty system filling up biases every
  mean downward).
* **Batch-means confidence intervals** — the truncated series is cut into
  ``num_batches`` equal batches; batch means of a (weakly dependent)
  stationary series are approximately i.i.d., so a Student-t interval over
  them gives an honest half-width despite the autocorrelation of the raw
  per-job values.
* **Saturation detection** — a super-critical stream has no steady state:
  its queue grows without bound and every estimate is meaningless.  The
  simulator flags hard saturation (queue cap exceeded); here the recorded
  queue-length trajectory is additionally put through MSER-5
  initialisation-bias truncation, and a run whose optimal truncation point
  falls in the second half of the trajectory (the rule's "no steady state
  detected" verdict) is flagged instead of reported as converged — without
  mistaking a long warmup transient for drift.

:func:`analyse_stream` bundles the three into a :class:`SteadyStateReport`
(the payload the streaming load-sweep campaigns persist into the experiment
store).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from ..exceptions import WorkloadError
from ..simulation.stream import StreamResult

__all__ = [
    "SaturationScan",
    "SteadyStateEstimate",
    "SteadyStateReport",
    "analyse_stream",
    "batch_means",
    "detect_saturation",
    "saturation_scan",
]

#: Reported occupancy trajectories are decimated beyond this many points
#: (report/``records.extra`` hygiene; the verdict always sees every batch).
_SCAN_TRAJECTORY_CAP = 160


def _as_float_array(series: Sequence[float]) -> np.ndarray:
    """Float view of ``series`` without round-tripping ndarrays through a list."""
    if isinstance(series, np.ndarray):
        return series.astype(float, copy=False)
    return np.asarray(list(series), dtype=float)


@dataclass(frozen=True)
class SteadyStateEstimate:
    """A batch-means point estimate with its confidence half-width.

    Attributes
    ----------
    metric:
        Name of the estimated quantity (``"mean_stretch"``, ...).
    mean:
        Point estimate: the grand mean of the post-warmup batch means.
    half_width:
        Student-t half-width of the ``confidence`` interval over the batch
        means (``inf`` when fewer than two batches were available).
    confidence:
        Confidence level of the interval.
    num_batches, batch_size:
        Batch-means layout actually used.
    samples:
        Post-warmup samples the estimate is built from.
    warmup_dropped:
        Samples discarded as warmup.
    """

    metric: str
    mean: float
    half_width: float
    confidence: float
    num_batches: int
    batch_size: int
    samples: int
    warmup_dropped: int

    @property
    def lower(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def as_dict(self) -> Dict:
        """JSON-friendly view (round-trips through :meth:`from_dict`)."""
        return {
            "metric": self.metric,
            "mean": self.mean,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "num_batches": self.num_batches,
            "batch_size": self.batch_size,
            "samples": self.samples,
            "warmup_dropped": self.warmup_dropped,
        }

    @staticmethod
    def from_dict(data: Dict) -> "SteadyStateEstimate":
        """Rebuild an estimate from :meth:`as_dict` output."""
        return SteadyStateEstimate(
            metric=str(data["metric"]),
            mean=float(data["mean"]),
            half_width=float(data["half_width"]),
            confidence=float(data["confidence"]),
            num_batches=int(data["num_batches"]),
            batch_size=int(data["batch_size"]),
            samples=int(data["samples"]),
            warmup_dropped=int(data["warmup_dropped"]),
        )


def batch_means(
    series: Sequence[float],
    *,
    metric: str = "value",
    warmup_fraction: float = 0.25,
    num_batches: int = 16,
    confidence: float = 0.95,
) -> SteadyStateEstimate:
    """Batch-means estimate of the steady-state mean of ``series``.

    The first ``warmup_fraction`` of the series is discarded; the remainder
    is cut into ``num_batches`` equal batches (a trailing remainder shorter
    than a batch is dropped) and a Student-t confidence interval is computed
    over the batch means.  Degenerate inputs degrade gracefully: with fewer
    than two non-empty batches the half-width is infinite rather than an
    error, so saturated or tiny runs still produce a report.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise WorkloadError("warmup_fraction must be in [0, 1)")
    if num_batches < 2:
        raise WorkloadError("batch means need at least two batches")
    if not 0.0 < confidence < 1.0:
        raise WorkloadError(f"confidence must be in (0, 1), got {confidence}")
    values = _as_float_array(series)
    dropped = int(values.size * warmup_fraction)
    kept = values[dropped:]
    if kept.size == 0:
        return SteadyStateEstimate(
            metric=metric,
            mean=math.nan,
            half_width=math.inf,
            confidence=confidence,
            num_batches=0,
            batch_size=0,
            samples=0,
            warmup_dropped=dropped,
        )
    batch_size = kept.size // num_batches
    if batch_size == 0:
        # Too few samples for the requested layout: one sample per batch.
        batch_size = 1
        num_batches = kept.size
    used = kept[: num_batches * batch_size]
    means = used.reshape(num_batches, batch_size).mean(axis=1)
    grand_mean = float(means.mean())
    if num_batches < 2:
        half_width = math.inf
    else:
        sem = float(means.std(ddof=1) / math.sqrt(num_batches))
        quantile = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, num_batches - 1))
        half_width = quantile * sem
    return SteadyStateEstimate(
        metric=metric,
        mean=grand_mean,
        half_width=half_width,
        confidence=confidence,
        num_batches=num_batches,
        batch_size=batch_size,
        samples=int(kept.size),
        warmup_dropped=dropped,
    )


@dataclass(frozen=True)
class SaturationScan:
    """Full outcome of one MSER-5 saturation scan (verdict + evidence).

    :func:`detect_saturation` historically returned only the boolean and
    discarded the truncation point and the batch-means trajectory; this
    carries them so reports (and ``repro-sched obs report``) can show *why*
    a run was or wasn't flagged.  The verdict logic is byte-identical to
    the boolean-only rule.

    Attributes
    ----------
    saturated:
        The verdict (exactly :func:`detect_saturation`'s return value).
    truncation:
        MSER-5 optimal truncation point ``d*`` (batch index), or ``None``
        when the trajectory was too short to scan.
    num_batches, batch_size:
        Batch layout of the scan (``num_batches`` is 0 when unscanned).
    trajectory:
        The MSER-5 batch-means occupancy trajectory (decimated beyond
        ``_SCAN_TRAJECTORY_CAP`` points), as plain floats.
    early_occupancy, final_occupancy:
        The occupancy-guard operands: mean of the first-quarter batches
        and the final batch mean (both 0.0 when unscanned).
    """

    saturated: bool
    truncation: Optional[int]
    num_batches: int
    batch_size: int
    trajectory: Tuple[float, ...]
    early_occupancy: float
    final_occupancy: float


def _decimated(batches: np.ndarray) -> Tuple[float, ...]:
    """Stride-decimate a batch-means trajectory to the reporting cap."""
    stride = 1
    while batches.size // stride > _SCAN_TRAJECTORY_CAP:
        stride *= 2
    return tuple(float(v) for v in batches[::stride])


def _unscanned(saturated: bool = False) -> SaturationScan:
    return SaturationScan(
        saturated=saturated,
        truncation=None,
        num_batches=0,
        batch_size=0,
        trajectory=(),
        early_occupancy=0.0,
        final_occupancy=0.0,
    )


def saturation_scan(
    queue_lengths: Sequence[float],
    *,
    batch_size: int = 5,
    min_samples: int = 24,
    occupancy_slack: float = 1.0,
) -> SaturationScan:
    """MSER-5 unbounded-growth test on a queue-length trajectory.

    The marginal standard error rule (White 1997; the MSER-5 variant
    averages the series into non-overlapping batches of five) picks the
    truncation point ``d*`` minimising the marginal standard error of the
    retained batch means,

    ``z(d) = sum_{i>d} (Y_i - mean(Y_{d:}))^2 / (m - d)^2``.

    A trajectory that is stationary after an initial transient puts ``d*``
    in the first half of the series — the rule finds a steady-state window.
    When ``d*`` lands in the **second half**, the rule could not: the series
    is still drifting at its end, the MSER literature's "no steady state
    detected" verdict, and exactly the signature of a near-critical queue
    growing without bound.  That verdict — plus an absolute occupancy guard
    (the final batch must sit ``occupancy_slack`` jobs above the early
    occupancy, so empty-ish systems never trigger) and a peak guard (the
    final batch must sit near the trajectory's running maximum: a busy
    period that peaked mid-run and *recovered* is a burst, not growth) —
    is the saturation flag.

    Deliberately conservative, like the two-window mean test it replaces:
    the hard ``max_active`` cap in the simulator catches runaway queues;
    this catches the near-critical runs that merely trend upward without
    misreporting a long warmup transient as drift.
    """
    values = _as_float_array(queue_lengths)
    if values.size < min_samples:
        return _unscanned()
    num_batches = values.size // batch_size
    if num_batches < 4:
        return _unscanned()
    batches = values[: num_batches * batch_size].reshape(num_batches, batch_size).mean(axis=1)
    # MSER statistic for every truncation point d with >= 2 retained
    # batches, via reversed cumulative sums (O(m), deterministic).
    counts = num_batches - np.arange(num_batches, dtype=np.int64)
    tail_sums = np.cumsum(batches[::-1])[::-1]
    tail_squares = np.cumsum((batches * batches)[::-1])[::-1]
    tail_means = tail_sums / counts
    sse = np.maximum(tail_squares - counts * tail_means * tail_means, 0.0)
    statistic = (sse / (counts * counts))[: num_batches - 1]
    truncation = int(np.argmin(statistic))
    head = num_batches // 4 if num_batches >= 4 else 1
    early_occupancy = float(batches[:head].mean())
    final = float(batches[-1])
    if truncation <= num_batches // 2:
        saturated = False
    elif final <= early_occupancy + occupancy_slack:
        saturated = False
    else:
        # Sustained growth ends at (or near) its running maximum; a queue
        # that peaked mid-run and came back down was a busy period, not
        # saturation.
        saturated = final >= 0.8 * float(batches.max())
    return SaturationScan(
        saturated=saturated,
        truncation=truncation,
        num_batches=num_batches,
        batch_size=batch_size,
        trajectory=_decimated(batches),
        early_occupancy=early_occupancy,
        final_occupancy=final,
    )


def detect_saturation(
    queue_lengths: Sequence[float],
    *,
    batch_size: int = 5,
    min_samples: int = 24,
    occupancy_slack: float = 1.0,
) -> bool:
    """Boolean MSER-5 saturation verdict (see :func:`saturation_scan`).

    Kept as the stable public predicate; :func:`saturation_scan` returns
    the same verdict plus the evidence behind it.
    """
    return saturation_scan(
        queue_lengths,
        batch_size=batch_size,
        min_samples=min_samples,
        occupancy_slack=occupancy_slack,
    ).saturated


@dataclass(frozen=True)
class SteadyStateReport:
    """Steady-state summary of one streamed (stream, policy) measurement.

    Attributes
    ----------
    policy, label:
        Policy and stream identity.
    mean_stretch, mean_weighted_flow:
        Batch-means estimates of the per-job stretch and weighted flow.
    max_stretch, max_weighted_flow:
        Post-warmup maxima (the paper's worst-case objectives).
    utilisation:
        Achieved machine utilisation over the simulated span.
    saturated:
        Hard cap exceeded, or sustained queue growth detected.
    arrivals, completions, peak_active:
        Volume counters from the simulation.
    arrivals_per_second:
        Simulation throughput (wall-clock; bench trajectory food).
    mser_truncation:
        MSER-5 optimal truncation point of the saturation scan (batch
        index), ``None`` when the trajectory was too short to scan.
        Evidence channel only — never part of the verdict or any digest.
    occupancy_trajectory:
        The scan's batch-means queue-occupancy trajectory (decimated).
        Empty for unscanned runs and for reports stored before PR 8
        (:meth:`from_dict` tolerates the missing keys).
    """

    policy: str
    label: str
    mean_stretch: SteadyStateEstimate
    mean_weighted_flow: SteadyStateEstimate
    max_stretch: float
    max_weighted_flow: float
    utilisation: float
    saturated: bool
    arrivals: int
    completions: int
    peak_active: int
    arrivals_per_second: float
    mser_truncation: Optional[int] = None
    occupancy_trajectory: Tuple[float, ...] = ()

    def as_dict(self) -> Dict:
        """JSON-friendly view (round-trips through :meth:`from_dict`)."""
        return {
            "policy": self.policy,
            "label": self.label,
            "mean_stretch": self.mean_stretch.as_dict(),
            "mean_weighted_flow": self.mean_weighted_flow.as_dict(),
            "max_stretch": self.max_stretch,
            "max_weighted_flow": self.max_weighted_flow,
            "utilisation": self.utilisation,
            "saturated": self.saturated,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "peak_active": self.peak_active,
            "arrivals_per_second": self.arrivals_per_second,
            "mser_truncation": self.mser_truncation,
            "occupancy_trajectory": list(self.occupancy_trajectory),
        }

    @staticmethod
    def from_dict(data: Dict) -> "SteadyStateReport":
        """Rebuild a report from :meth:`as_dict` output.

        Tolerates payloads stored before the scan-evidence fields existed
        (pre-PR 8 cells resume with ``mser_truncation=None`` and an empty
        trajectory).
        """
        truncation = data.get("mser_truncation")
        return SteadyStateReport(
            policy=str(data["policy"]),
            label=str(data["label"]),
            mean_stretch=SteadyStateEstimate.from_dict(data["mean_stretch"]),
            mean_weighted_flow=SteadyStateEstimate.from_dict(data["mean_weighted_flow"]),
            max_stretch=float(data["max_stretch"]),
            max_weighted_flow=float(data["max_weighted_flow"]),
            utilisation=float(data["utilisation"]),
            saturated=bool(data["saturated"]),
            arrivals=int(data["arrivals"]),
            completions=int(data["completions"]),
            peak_active=int(data["peak_active"]),
            arrivals_per_second=float(data["arrivals_per_second"]),
            mser_truncation=int(truncation) if truncation is not None else None,
            occupancy_trajectory=tuple(
                float(v) for v in data.get("occupancy_trajectory", ())
            ),
        )


def analyse_stream(
    result: StreamResult,
    *,
    warmup_fraction: float = 0.25,
    num_batches: int = 16,
    confidence: float = 0.95,
) -> SteadyStateReport:
    """Windowed steady-state estimation over one streaming simulation."""
    stretch = batch_means(
        result.stretches,
        metric="mean_stretch",
        warmup_fraction=warmup_fraction,
        num_batches=num_batches,
        confidence=confidence,
    )
    wflow = batch_means(
        result.weighted_flows,
        metric="mean_weighted_flow",
        warmup_fraction=warmup_fraction,
        num_batches=num_batches,
        confidence=confidence,
    )
    dropped = stretch.warmup_dropped
    tail_stretch = result.stretches[dropped:]
    tail_wflow = result.weighted_flows[dropped:]
    scan = saturation_scan(result.queue_lengths)
    saturated = result.saturated or scan.saturated
    return SteadyStateReport(
        policy=result.policy,
        label=result.label,
        mean_stretch=stretch,
        mean_weighted_flow=wflow,
        max_stretch=float(tail_stretch.max()) if tail_stretch.size else 0.0,
        max_weighted_flow=float(tail_wflow.max()) if tail_wflow.size else 0.0,
        utilisation=result.utilisation,
        saturated=saturated,
        arrivals=result.arrivals,
        completions=result.completions,
        peak_active=result.peak_active,
        arrivals_per_second=result.arrivals_per_second,
        mser_truncation=scan.truncation,
        occupancy_trajectory=scan.trajectory,
    )
