"""Per-job fairness analysis of schedules.

The paper motivates the max-weighted-flow / max-stretch objective as a
*fairness* objective: total-flow minimisation starves long jobs, plain
max-flow favours them.  This module quantifies that story for any schedule:

* the per-job stretch / weighted-flow distribution,
* Jain's fairness index over the stretches,
* the starvation ratio (worst stretch over median stretch),
* side-by-side comparison of several schedules for the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.schedule import Schedule
from ..exceptions import WorkloadError
from .tables import format_table

__all__ = ["FairnessReport", "fairness_report", "compare_fairness", "jain_index"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` (1 = perfectly fair)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise WorkloadError("Jain's index needs at least one value")
    if (array < 0).any():
        raise WorkloadError("Jain's index is defined for non-negative values")
    denominator = array.size * float(np.sum(array**2))
    if denominator == 0:
        return 1.0
    return float(np.sum(array)) ** 2 / denominator


@dataclass(frozen=True)
class FairnessReport:
    """Per-job fairness metrics of one schedule.

    Attributes
    ----------
    stretches:
        Per-job stretch, in job order.
    weighted_flows:
        Per-job weighted flow, in job order.
    max_stretch, mean_stretch, median_stretch:
        Aggregates of the stretch distribution.
    jain:
        Jain's fairness index over the stretches.
    starvation_ratio:
        ``max stretch / median stretch`` — how much worse the unluckiest job
        fares compared to the typical one.
    """

    stretches: List[float]
    weighted_flows: List[float]
    max_stretch: float
    mean_stretch: float
    median_stretch: float
    jain: float
    starvation_ratio: float

    def as_rows(self) -> List[tuple]:
        """Rows (job index, stretch, weighted flow) for table rendering."""
        return [
            (index, stretch, weighted)
            for index, (stretch, weighted) in enumerate(zip(self.stretches, self.weighted_flows))
        ]


def fairness_report(schedule: Schedule) -> FairnessReport:
    """Compute the fairness metrics of a complete schedule."""
    instance = schedule.instance
    completions = schedule.completion_times()
    if len(completions) < instance.num_jobs:
        raise WorkloadError("fairness analysis requires a schedule covering every job")

    stretches = [schedule.stretch(j) for j in range(instance.num_jobs)]
    weighted_flows = [schedule.weighted_flow(j) for j in range(instance.num_jobs)]
    median = float(np.median(stretches))
    return FairnessReport(
        stretches=stretches,
        weighted_flows=weighted_flows,
        max_stretch=float(np.max(stretches)),
        mean_stretch=float(np.mean(stretches)),
        median_stretch=median,
        jain=jain_index(stretches),
        starvation_ratio=float(np.max(stretches)) / median if median > 0 else float("inf"),
    )


def compare_fairness(schedules: Dict[str, Schedule]) -> str:
    """Render a comparison table of fairness metrics for several schedules.

    Parameters
    ----------
    schedules:
        Mapping from a label (policy name) to a complete schedule of the same
        instance.
    """
    if not schedules:
        raise WorkloadError("compare_fairness needs at least one schedule")
    rows = []
    for label, schedule in schedules.items():
        report = fairness_report(schedule)
        rows.append(
            (
                label,
                report.max_stretch,
                report.mean_stretch,
                report.jain,
                report.starvation_ratio,
            )
        )
    rows.sort(key=lambda row: row[1])
    return format_table(
        ["schedule", "max stretch", "mean stretch", "Jain index", "starvation ratio"],
        rows,
        title="Fairness comparison (stretch distribution)",
        float_format=".3f",
    )
