"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` package."""


class InvalidInstanceError(ReproError):
    """An :class:`~repro.core.instance.Instance` violates a model assumption.

    Typical causes: negative release dates, non-positive weights, a job whose
    processing time is infinite on every machine (it can never complete), or
    mismatched dimensions between the job list and the cost matrix.
    """


class InfeasibleProblemError(ReproError):
    """A scheduling problem (or one of its LP relaxations) has no solution.

    Raised, for instance, when a deadline-scheduling instance admits no valid
    schedule (Lemma 1 of the paper) or when an LP backend reports primal
    infeasibility for a system that the caller expected to be feasible.
    """


class UnboundedProblemError(ReproError):
    """An LP is unbounded in the direction of optimisation.

    This never happens for well-formed instances of the paper's systems (all
    of them have bounded feasible regions), so encountering it indicates a
    modelling bug rather than a property of the input.
    """


class SolverError(ReproError):
    """An LP backend failed for a reason other than infeasibility.

    Wraps numerical failures, iteration-limit hits and backend-specific status
    codes that do not map onto :class:`InfeasibleProblemError` or
    :class:`UnboundedProblemError`.
    """


class InvalidScheduleError(ReproError):
    """A :class:`~repro.core.schedule.Schedule` violates a model constraint.

    Produced by :meth:`repro.core.schedule.Schedule.validate` when a schedule
    processes a job before its release date, overbooks a machine, fails to
    complete a job, or (in preemptive mode) runs a job on two machines at the
    same instant.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state.

    For example a scheduler returned an allocation referencing an unknown job
    or machine, or an event was scheduled in the past.
    """


class WorkloadError(ReproError):
    """A workload generator or trace reader received invalid parameters."""


class StoreError(ReproError):
    """The persistent experiment store was misused or is corrupt.

    Raised for unknown run references, schema/epoch mismatches, writes to a
    closed store, or resume requests without a backing store.
    """
