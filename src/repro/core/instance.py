"""Scheduling instance: jobs, machines and the unrelated cost matrix.

An :class:`Instance` bundles everything the solvers of Section 4 need:

* the ordered job list ``J_1 … J_n`` (sorted by release date, as the paper
  assumes),
* the machine list ``M_1 … M_m``,
* the cost matrix ``c[i, j]`` — the time machine ``M_i`` needs to process job
  ``J_j`` entirely, with ``+inf`` encoding "the databank needed by ``J_j`` is
  not present on ``M_i``".

Two constructors cover the two models discussed in Section 3:

* :meth:`Instance.from_costs` — fully unrelated machines, explicit matrix;
* :meth:`Instance.from_platform` — uniform machines with restricted
  availabilities: ``c[i, j] = W_j * c_i`` when machine ``i`` hosts every
  databank of job ``j``, ``+inf`` otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidInstanceError
from .job import Job, sort_by_release_date, validate_jobs
from .machine import Machine, Platform

__all__ = ["Instance"]


@dataclass(frozen=True)
class Instance:
    """An off-line scheduling instance on unrelated machines.

    Attributes
    ----------
    jobs:
        Jobs sorted by increasing release date.
    machines:
        The machines, in the order matching the rows of ``costs``.
    costs:
        ``(m, n)`` float array; ``costs[i, j]`` is the time for machine ``i``
        to process the whole of job ``j`` (``np.inf`` when forbidden).
    """

    jobs: Tuple[Job, ...]
    machines: Tuple[Machine, ...]
    costs: np.ndarray

    # ------------------------------------------------------------------ #
    # Constructors                                                        #
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_costs(
        jobs: Sequence[Job],
        costs: Iterable[Iterable[float]],
        machines: Optional[Sequence[Machine]] = None,
    ) -> "Instance":
        """Build a fully unrelated instance from an explicit cost matrix.

        Parameters
        ----------
        jobs:
            The jobs (any order; they are re-sorted by release date and the
            matrix columns are permuted accordingly).
        costs:
            ``m x n`` matrix, one row per machine, one column per job in the
            order of ``jobs`` *as given*.
        machines:
            Optional machine objects; default machines named ``"M0" … "M{m-1}"``
            are created when omitted.
        """
        validate_jobs(jobs)
        cost_array = np.array([[float(v) for v in row] for row in costs], dtype=float)
        if cost_array.ndim != 2:
            raise InvalidInstanceError("cost matrix must be two-dimensional")
        m, n = cost_array.shape
        if n != len(jobs):
            raise InvalidInstanceError(
                f"cost matrix has {n} columns but there are {len(jobs)} jobs"
            )
        if machines is None:
            machines = [Machine(name=f"M{i}") for i in range(m)]
        if len(machines) != m:
            raise InvalidInstanceError(
                f"cost matrix has {m} rows but there are {len(machines)} machines"
            )

        order = sorted(range(len(jobs)), key=lambda k: jobs[k].release_date)
        sorted_jobs = tuple(jobs[k] for k in order)
        permuted = cost_array[:, order]
        return Instance(jobs=sorted_jobs, machines=tuple(machines), costs=permuted)

    @staticmethod
    def from_platform(jobs: Sequence[Job], platform: Platform) -> "Instance":
        """Build a uniform-machines-with-restricted-availabilities instance.

        Every job must carry a ``size``; the cost matrix is
        ``W_j * cycle_time_i`` where the databank constraint is met and
        ``+inf`` elsewhere.
        """
        validate_jobs(jobs)
        sorted_jobs = sort_by_release_date(jobs)
        machines = tuple(platform.machines)
        costs = np.empty((len(machines), len(sorted_jobs)), dtype=float)
        for i, machine in enumerate(machines):
            for j, job in enumerate(sorted_jobs):
                costs[i, j] = machine.processing_time(job)
        return Instance(jobs=tuple(sorted_jobs), machines=machines, costs=costs)

    # ------------------------------------------------------------------ #
    # Validation                                                          #
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if not isinstance(self.costs, np.ndarray):
            object.__setattr__(self, "costs", np.asarray(self.costs, dtype=float))
        if self.costs.shape != (len(self.machines), len(self.jobs)):
            raise InvalidInstanceError(
                f"cost matrix shape {self.costs.shape} does not match "
                f"({len(self.machines)} machines, {len(self.jobs)} jobs)"
            )
        validate_jobs(self.jobs)
        if len(self.machines) == 0:
            raise InvalidInstanceError("an instance needs at least one machine")
        # Jobs must be sorted by release date (the paper's convention).
        for earlier, later in zip(self.jobs, self.jobs[1:]):
            if earlier.release_date > later.release_date:
                raise InvalidInstanceError(
                    "jobs must be sorted by increasing release date; use one of the "
                    "Instance constructors to sort them automatically"
                )
        # Costs must be positive (possibly infinite), never NaN.
        if np.isnan(self.costs).any():
            raise InvalidInstanceError("cost matrix contains NaN entries")
        finite = np.isfinite(self.costs)
        if (self.costs[finite] <= 0).any():
            raise InvalidInstanceError("finite processing times must be positive")
        # Every job needs at least one machine able to run it.
        for j, job in enumerate(self.jobs):
            if not finite[:, j].any():
                raise InvalidInstanceError(
                    f"job {job.name!r} cannot be processed on any machine "
                    "(all processing times are infinite)"
                )

    # ------------------------------------------------------------------ #
    # Basic accessors                                                     #
    # ------------------------------------------------------------------ #
    @property
    def num_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self.jobs)

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return len(self.machines)

    @property
    def release_dates(self) -> List[float]:
        """Release dates in job order (non-decreasing)."""
        return [job.release_date for job in self.jobs]

    @property
    def weights(self) -> List[float]:
        """Job weights in job order."""
        return [job.weight for job in self.jobs]

    def cost(self, machine_index: int, job_index: int) -> float:
        """Return ``c[i, j]``."""
        return float(self.costs[machine_index, job_index])

    def job_index(self, name: str) -> int:
        """Return the index of the job called ``name`` (KeyError when absent)."""
        for index, job in enumerate(self.jobs):
            if job.name == name:
                return index
        raise KeyError(f"no job named {name!r} in instance")

    def machine_index(self, name: str) -> int:
        """Return the index of the machine called ``name`` (KeyError when absent)."""
        for index, machine in enumerate(self.machines):
            if machine.name == name:
                return index
        raise KeyError(f"no machine named {name!r} in instance")

    def eligible_machines(self, job_index: int) -> List[int]:
        """Indices of the machines with finite cost for job ``job_index``."""
        return [i for i in range(self.num_machines) if math.isfinite(self.costs[i, job_index])]

    def eligible_jobs(self, machine_index: int) -> List[int]:
        """Indices of the jobs with finite cost on machine ``machine_index``."""
        return [j for j in range(self.num_jobs) if math.isfinite(self.costs[machine_index, j])]

    # ------------------------------------------------------------------ #
    # Derived quantities                                                  #
    # ------------------------------------------------------------------ #
    def min_cost(self, job_index: int) -> float:
        """Fastest single-machine processing time of job ``job_index``."""
        return float(np.min(self.costs[:, job_index]))

    def job_vectors(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(min_costs, weights, release_dates)`` float vectors in job order.

        Cached after the first call (instances are frozen, so the vectors
        never go stale).  Array-aware policies bind these at ``reset`` /
        ``rebind`` instead of re-deriving them scalar by scalar; the
        streaming :class:`~repro.simulation.window.InstanceView` provides
        the same accessor in O(1) over its incrementally maintained window
        metadata, with byte-identical values.
        """
        cache = getattr(self, "_job_vectors_cache", None)
        if cache is None:
            n = self.num_jobs
            min_costs = np.fromiter(
                (self.min_cost(j) for j in range(n)), dtype=float, count=n
            )
            weights = np.fromiter((job.weight for job in self.jobs), dtype=float, count=n)
            releases = np.fromiter(
                (job.release_date for job in self.jobs), dtype=float, count=n
            )
            cache = (min_costs, weights, releases)
            object.__setattr__(self, "_job_vectors_cache", cache)
        return cache

    def aggregate_rate(self, job_index: int) -> float:
        """Aggregate processing rate of job ``job_index`` over all machines.

        Under the divisible model, the fastest conceivable completion of the
        job uses every eligible machine in parallel; the combined rate is
        ``sum_i 1 / c[i, j]`` (fractions of job per second).
        """
        column = self.costs[:, job_index]
        finite = np.isfinite(column)
        return float(np.sum(1.0 / column[finite]))

    def lower_bound_flow(self, job_index: int) -> float:
        """A lower bound on the flow of job ``job_index`` in any divisible schedule.

        Even with the whole platform to itself the job needs
        ``1 / aggregate_rate`` seconds of wall-clock time after its release.
        """
        return 1.0 / self.aggregate_rate(job_index)

    def trivial_upper_bound_flow(self) -> float:
        """An upper bound on the optimal *maximum weighted flow*.

        Obtained from the schedule that processes jobs one after the other,
        each entirely on its fastest machine, in release-date order.  Useful
        as a safe right end for objective-value searches.
        """
        current_time = 0.0
        worst = 0.0
        for j, job in enumerate(self.jobs):
            start = max(current_time, job.release_date)
            completion = start + self.min_cost(j)
            current_time = completion
            worst = max(worst, job.weighted_flow(completion))
        return worst

    def with_stretch_weights(self) -> "Instance":
        """Return a copy of the instance whose weights encode the max-stretch objective.

        Every job must carry a size; the new weight is ``1 / W_j`` so that the
        maximum weighted flow of the new instance is the maximum stretch of
        the original one.
        """
        new_jobs = tuple(job.with_weight(job.stretch_weight()) for job in self.jobs)
        return Instance(jobs=new_jobs, machines=self.machines, costs=self.costs.copy())

    def restricted_to_jobs(self, job_indices: Sequence[int]) -> "Instance":
        """Return the sub-instance containing only the given job indices."""
        indices = list(job_indices)
        if not indices:
            raise InvalidInstanceError("cannot restrict an instance to zero jobs")
        jobs = tuple(self.jobs[j] for j in indices)
        costs = self.costs[:, indices].copy()
        return Instance(jobs=jobs, machines=self.machines, costs=costs)

    def describe(self) -> str:
        """Return a short human-readable description (used by examples)."""
        finite = np.isfinite(self.costs)
        restricted = int(np.sum(~finite))
        return (
            f"Instance with {self.num_jobs} jobs on {self.num_machines} machines "
            f"({restricted} forbidden job/machine pairs)"
        )

    def to_dict(self) -> Dict:
        """Serialise the instance to plain Python types (JSON-compatible)."""
        return {
            "jobs": [
                {
                    "name": job.name,
                    "release_date": job.release_date,
                    "weight": job.weight,
                    "size": job.size,
                    "databanks": sorted(job.databanks),
                }
                for job in self.jobs
            ],
            "machines": [
                {
                    "name": machine.name,
                    "cycle_time": machine.cycle_time,
                    "databanks": sorted(machine.databanks),
                }
                for machine in self.machines
            ],
            "costs": [
                [None if math.isinf(c) else float(c) for c in row] for row in self.costs
            ],
        }

    @staticmethod
    def from_dict(data: Dict) -> "Instance":
        """Rebuild an instance from :meth:`to_dict` output."""
        jobs = [
            Job(
                name=item["name"],
                release_date=item["release_date"],
                weight=item["weight"],
                size=item.get("size"),
                databanks=frozenset(item.get("databanks", ())),
            )
            for item in data["jobs"]
        ]
        machines = [
            Machine(
                name=item["name"],
                cycle_time=item.get("cycle_time", 1.0),
                databanks=frozenset(item.get("databanks", ())),
            )
            for item in data["machines"]
        ]
        costs = [
            [float("inf") if c is None else float(c) for c in row] for row in data["costs"]
        ]
        return Instance.from_costs(jobs, costs, machines)
