"""Core scheduling library: the paper's models, algorithms and schedules.

This subpackage implements everything in Sections 3 and 4 of the paper:

* the platform/application model (:mod:`repro.core.instance`),
* the interval and milestone machinery (:mod:`repro.core.intervals`,
  :mod:`repro.core.milestones`, :mod:`repro.core.affine`),
* makespan minimisation — Theorem 1 (:mod:`repro.core.makespan`),
* deadline feasibility — Lemma 1 (:mod:`repro.core.deadline`),
* max weighted flow, divisible — Theorem 2 (:mod:`repro.core.maxflow`),
* max weighted flow, preemptive — Section 4.4 (:mod:`repro.core.preemptive`,
  :mod:`repro.core.lawler_labetoulle`),
* schedule objects with metrics and validation (:mod:`repro.core.schedule`).
"""

from .affine import Affine
from .deadline import DeadlineFeasibility, check_deadline_feasibility
from .gantt import render_gantt
from .instance import Instance
from .intervals import TimeInterval, build_affine_intervals, build_constant_intervals
from .job import Job, sort_by_release_date
from .lower_bounds import (
    deadline_capacity_violated,
    fluid_completion_bound,
    machine_load_lower_bound,
    makespan_lower_bound,
    max_weighted_flow_lower_bound,
)
from .machine import Machine, Platform
from .makespan import MakespanResult, minimize_makespan
from .maxflow import (
    FeasibilityProbe,
    MaxWeightedFlowResult,
    minimize_max_stretch,
    minimize_max_weighted_flow,
    minimize_max_weighted_flow_bisection,
)
from .milestones import compute_milestones, deadline_function, milestone_ranges
from .preemptive import (
    check_deadline_feasibility_preemptive,
    minimize_makespan_preemptive,
    minimize_max_stretch_preemptive,
    minimize_max_weighted_flow_preemptive,
)
from .replanning import ReplanProbe, remaining_subinstance
from .schedule import Schedule, ScheduleMetrics, SchedulePiece

__all__ = [
    "Affine",
    "DeadlineFeasibility",
    "FeasibilityProbe",
    "Instance",
    "Job",
    "Machine",
    "MakespanResult",
    "MaxWeightedFlowResult",
    "Platform",
    "ReplanProbe",
    "Schedule",
    "ScheduleMetrics",
    "SchedulePiece",
    "TimeInterval",
    "build_affine_intervals",
    "build_constant_intervals",
    "check_deadline_feasibility",
    "check_deadline_feasibility_preemptive",
    "compute_milestones",
    "deadline_capacity_violated",
    "deadline_function",
    "fluid_completion_bound",
    "machine_load_lower_bound",
    "makespan_lower_bound",
    "max_weighted_flow_lower_bound",
    "milestone_ranges",
    "minimize_makespan",
    "minimize_makespan_preemptive",
    "minimize_max_stretch",
    "minimize_max_stretch_preemptive",
    "minimize_max_weighted_flow",
    "minimize_max_weighted_flow_bisection",
    "minimize_max_weighted_flow_preemptive",
    "remaining_subinstance",
    "render_gantt",
    "sort_by_release_date",
]
