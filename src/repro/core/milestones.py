"""Milestone enumeration for the max-weighted-flow binary search (Section 4.3.2).

A *milestone* is an objective value ``F`` at which the relative order of the
release dates ``r_1 … r_n`` and the deadlines ``d_j(F) = r_j + F / w_j``
changes, i.e. a value where a deadline coincides with a release date or with
another deadline.  (Labetoulle, Lawler, Lenstra and Rinnooy Kan call these
"critical trial values".)

The paper bounds their number by ``n² - n``:

* at most ``n (n - 1) / 2`` values where a deadline crosses a release date,
* at most ``n (n - 1) / 2`` values where two deadlines cross (two affine
  functions intersect in at most one point).

Only strictly positive milestones matter: the optimal maximum weighted flow of
an instance with positive processing requirements is strictly positive, and
the feasibility of an objective value is monotone, so the search space is the
sequence of milestone ranges ``(0, F_1], (F_1, F_2], …, (F_nq, +inf)``.
"""

from __future__ import annotations

from typing import List, Sequence

from .affine import Affine
from .job import Job
from .tolerances import ABS_TOL

__all__ = ["compute_milestones", "deadline_function", "milestone_ranges"]


def deadline_function(job: Job) -> Affine:
    """Return the affine deadline ``d_j(F) = r_j + F / w_j`` of ``job``."""
    return Affine(job.release_date, 1.0 / job.weight)


def compute_milestones(jobs: Sequence[Job], tol: float = ABS_TOL) -> List[float]:
    """Return the sorted distinct strictly-positive milestones of the job set.

    Parameters
    ----------
    jobs:
        The instance's jobs.
    tol:
        Two milestones closer than ``tol`` are merged.

    Returns
    -------
    list of float
        Milestones in increasing order.  May be empty (for example with a
        single job, whose deadline never crosses anything).
    """
    candidates: List[float] = []
    deadlines = [deadline_function(job) for job in jobs]

    # Deadline meets a release date: r_k = r_j + F / w_j  =>  F = w_j (r_k - r_j).
    release_dates = {job.release_date for job in jobs}
    for job in jobs:
        for release in release_dates:
            value = job.weight * (release - job.release_date)
            if value > tol:
                candidates.append(value)

    # Deadline meets another deadline: the affine functions intersect in at
    # most one point.
    for a in range(len(deadlines)):
        for b in range(a + 1, len(deadlines)):
            crossing = deadlines[a].intersection(deadlines[b])
            if crossing is not None and crossing > tol:
                candidates.append(crossing)

    candidates.sort()
    milestones: List[float] = []
    for value in candidates:
        if not milestones or value - milestones[-1] > tol:
            milestones.append(value)
    return milestones


def milestone_ranges(milestones: Sequence[float]) -> List[tuple]:
    """Return the closed search ranges delimited by the milestones.

    The ranges are ``[0, F_1], [F_1, F_2], …, [F_nq, None]`` where ``None``
    stands for "+infinity".  With no milestones at all the single range
    ``[0, None]`` is returned.
    """
    if not milestones:
        return [(0.0, None)]
    ranges: List[tuple] = [(0.0, milestones[0])]
    for left, right in zip(milestones, milestones[1:]):
        ranges.append((left, right))
    ranges.append((milestones[-1], None))
    return ranges
