"""Parametric deadline-feasibility probes for on-line replanning.

The on-line adaptation of the off-line algorithm re-optimises the remaining
work at every replanning event: a bounded-precision bisection on the objective
``F``, each step of which is one deadline-feasibility test
(:func:`repro.core.deadline.check_deadline_feasibility`) over the
sub-instance of remaining work.  Before this module existed, every one of
those tests rebuilt its allocation LP from scratch — the symbolic model and
its matrix lowering dominated the cost of a replanning event, and a
simulation with ``E`` events performed ``E × bisection-steps`` builds.

:class:`ReplanProbe` amortises that work.  The observation is the same one
behind the milestone machinery of :mod:`repro.core.maxflow`: the *structure*
of System (2) — how many intervals the epochal times cut, and which
``alpha[i, j, t]`` variables are allowed — is determined entirely by the
allowed/forbidden pattern, while the remaining-work bounds only change
*numbers* (constraint coefficients ``c_{i,j} · remaining_j`` and interval
lengths on the inequality right-hand side).  The probe therefore

* computes the structure signature of every feasibility question it is asked
  (interval count plus the allowed-variable bitmap — a cheap scan, no LP
  objects);
* keeps one **lowered matrix template** per distinct signature in an LRU
  cache; a cache hit answers the probe by writing the current coefficients
  and interval lengths into copies of the template's arrays and re-solving —
  no symbolic model, no lowering;
* on a miss, builds the model through the exact same
  :func:`~repro.core.formulations.build_allocation_model` →
  ``to_matrix_form`` pipeline the from-scratch path uses, and records the
  value positions for later refreshes.

Because a refreshed template reproduces the from-scratch LP **bit for bit**
(same variable order, same constraint order, same coefficient values, same
right-hand sides), the backend returns the identical solution and the witness
schedule is byte-identical to the one ``check_deadline_feasibility`` would
have produced.  The property suite asserts this across the scenario grid.

Replanning events with the same number of active jobs and the same relative
deadline order share a signature, so a simulation builds O(distinct active
job-set structures) models instead of O(events × bisection steps) — the
economy asserted by ``benchmarks/bench_replanning.py``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import InvalidInstanceError
from ..lp import LPSolution, MatrixForm, to_matrix_form
from ..obs.metrics import Recorder, get_recorder
from ..lp.revised_simplex import BasisState, ProgramHandle, solve_matrix_form_revised
from ..lp.scipy_backend import solve_matrix_form as _scipy_solve_form
from ..lp.simplex import solve_matrix_form_tableau as _tableau_solve_form
from .deadline import _BACKEND_LABELS, DeadlineFeasibility
from .maxflow import _normalise_backend
from .formulations import (
    AllocationModel,
    build_allocation_model,
    divisible_schedule_from_solution,
    preemptive_schedule_from_solution,
)
from .instance import Instance
from .intervals import TimeInterval, build_constant_intervals
from .job import Job
from .tolerances import ABS_TOL, lt

__all__ = ["ReplanProbe", "remaining_subinstance"]


def remaining_subinstance(
    instance: Instance,
    time: float,
    active: Sequence[int],
    remaining: Sequence[float],
) -> Tuple[Instance, List[int]]:
    """Build the instance of remaining work for the currently active jobs.

    Every active job is re-released at ``time`` with its size and costs scaled
    by its remaining fraction (floored at ``1e-9`` so fully-degenerate jobs
    still carry a well-posed LP column).  ``remaining`` aligns with ``active``
    as given; sub-instance jobs are ordered by ascending original index.
    Returns the sub-instance and the list mapping sub-instance job positions
    back to original job indices.
    """
    paired = sorted(zip(active, remaining))
    jobs = []
    columns = []
    for job_index, fraction in paired:
        original = instance.jobs[job_index]
        fraction = max(float(fraction), 1e-9)
        jobs.append(
            Job(
                name=original.name,
                release_date=time,
                weight=original.weight,
                size=(original.size * fraction) if original.size is not None else None,
                databanks=original.databanks,
            )
        )
        columns.append(
            [instance.cost(i, job_index) * fraction for i in range(instance.num_machines)]
        )
    costs = [
        [columns[j][i] for j in range(len(paired))] for i in range(instance.num_machines)
    ]
    sub_instance = Instance.from_costs(jobs, costs, machines=list(instance.machines))
    # ``from_costs`` re-sorts by release date; all release dates are equal to
    # ``time`` so the original order (ascending job index) is preserved
    # because Python's sort is stable.
    return sub_instance, [job_index for job_index, _ in paired]


@dataclass
class _ModelTemplate:
    """One cached System (2) skeleton: symbolic model plus refresh positions."""

    alloc: AllocationModel
    form: MatrixForm
    #: Machine/job source of every inequality coefficient, in CSR data order.
    coef_machines: np.ndarray
    coef_jobs: np.ndarray
    #: Interval index feeding each inequality row's right-hand side.
    row_intervals: np.ndarray
    #: Dense refresh targets (tableau backend): (row, col) per coefficient.
    coef_rows: Optional[np.ndarray] = None
    coef_cols: Optional[np.ndarray] = None
    #: Persistent solver state for warm re-solves (ISSUE 9): the last usable
    #: basis of the in-house revised backend, the kept-alive assembled
    #: program (rhs-only re-solves within one event skip assembly and
    #: refactorisation entirely), and the kept-alive highspy model.
    basis: Optional[BasisState] = None
    solver_handle: Optional[ProgramHandle] = None
    highs_model: Optional[object] = None


class ReplanProbe:
    """Structure-cached deadline-feasibility oracle for replanning loops.

    ``check(instance, deadlines)`` answers exactly like
    :func:`repro.core.deadline.check_deadline_feasibility` — including the
    witness schedule, byte for byte — but builds the allocation LP only when
    it meets a structure it has never seen.  One probe serves any number of
    sub-instances (and any number of simulations); it is keyed purely by
    structure, so campaign-style reuse across runs is free.

    Two amortisations sit on top of the structure cache:

    * **Event-scoped refresh** (always on): within one replanning event the
      coefficient values are constant — repeated checks on the same
      (sub-)instance object reuse the refreshed constraint matrix and only
      rewrite the right-hand sides.
    * **Rank-pattern canonicalisation** (``rank_keyed=True``): for
      equal-release sub-instances asked without a witness schedule
      (``build_schedule=False``), jobs are relabelled in deadline order
      before the structure key is computed.  The LP structure of such an
      instance depends only on the deadline *rank pattern* plus the
      relabelled eligibility bitmap, so probes from different events — and
      different runs — collapse onto one skeleton per pattern.  The
      relabelled LP is a row/column permutation of the original (same
      constraint set), so the feasibility answer is unchanged; witness
      callers keep the exact unpermuted path.

    Attributes
    ----------
    probes:
        Feasibility questions answered.
    lp_solves:
        Questions that reached a solver (all of them except the trivially
        infeasible deadline-before-release rejections).
    model_constructions:
        Symbolic-model builds (structure-cache misses).
    cache_hits:
        Questions answered by refreshing a cached template.
    rank_canonicalisations:
        Probes answered through a deadline-rank relabelling.
    coefficient_refreshes, event_refresh_reuses:
        Constraint-matrix rewrites performed vs skipped through the
        event-scoped cache.
    """

    def __init__(
        self,
        *,
        preemptive: bool = False,
        backend: str = "scipy",
        max_cached_models: int = 64,
        rank_keyed: bool = False,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if max_cached_models < 1:
            raise ValueError("max_cached_models must be at least 1")
        self.preemptive = preemptive
        self.backend = backend
        self._backend_kind = _normalise_backend(backend)  # raises on unknown
        # Every backend except the frozen dense tableau consumes CSR blocks.
        self._sparse = self._backend_kind != "tableau"
        self._max_cached_models = max_cached_models
        self._rank_keyed = rank_keyed
        # Injected metrics sink (None resolves to the process default at
        # probe time; the obs-recorder-default lint rule forbids concrete
        # recorders here).
        self.recorder = recorder
        self._templates: "OrderedDict[Tuple, _ModelTemplate]" = OrderedDict()
        # Event-scoped refresh cache: coefficients are constant while the
        # same (sub-)instance object is probed repeatedly (one replanning
        # event), so the refreshed constraint matrix can be reused across a
        # whole bisection.  Keyed by (template key, job permutation); the
        # strong reference to the instance keeps identity checks sound.
        self._event_instance: Optional[Instance] = None
        self._event_forms: Dict[Tuple, object] = {}
        self.probes = 0
        self.lp_solves = 0
        self.model_constructions = 0
        self.cache_hits = 0
        self.rank_canonicalisations = 0
        self.coefficient_refreshes = 0
        self.event_refresh_reuses = 0

    # ------------------------------------------------------------------ #
    @property
    def cached_model_count(self) -> int:
        """Number of LP skeletons currently held in the LRU cache."""
        return len(self._templates)

    def check(
        self,
        instance: Instance,
        deadlines: Sequence[float],
        *,
        build_schedule: bool = True,
    ) -> DeadlineFeasibility:
        """Decide whether every job fits in ``[r_j, d_j]`` (see module docs).

        Drop-in for :func:`~repro.core.deadline.check_deadline_feasibility`
        with the probe's ``preemptive``/``backend`` configuration; the result
        (and the witness schedule) is identical to the from-scratch path.
        """
        self.probes += 1
        recorder = self.recorder if self.recorder is not None else get_recorder()
        if recorder.enabled:
            recorder.count("replan.probes")
            counters_before = (
                self.model_constructions,
                self.cache_hits,
                self.rank_canonicalisations,
                self.coefficient_refreshes,
                self.event_refresh_reuses,
            )
        if len(deadlines) != instance.num_jobs:
            raise InvalidInstanceError(
                f"expected {instance.num_jobs} deadlines, got {len(deadlines)}"
            )
        deadlines = [float(d) for d in deadlines]
        for job, deadline in zip(instance.jobs, deadlines):
            if lt(deadline, job.release_date, tol=ABS_TOL):
                # Trivially infeasible, exactly as in the from-scratch path.
                return DeadlineFeasibility(
                    feasible=False,
                    schedule=None,
                    num_intervals=0,
                    lp_variables=0,
                    lp_constraints=0,
                    backend=_BACKEND_LABELS[self.backend],
                )

        # Event scope: consecutive checks on the same instance object (one
        # replanning event's bisection) share refreshed coefficient arrays.
        if instance is not self._event_instance:
            self._event_instance = instance
            self._event_forms.clear()

        order: Optional[List[int]] = None
        if self._rank_keyed and not build_schedule and instance.num_jobs > 1:
            order = self._rank_order(instance, deadlines)
        if order is not None:
            # Rank-pattern canonicalisation: relabel the jobs in deadline
            # order.  For the equal-release sub-instances of the replanning
            # loops the LP *structure* depends only on the deadline rank
            # pattern and the (relabelled) eligibility bitmap, so probes from
            # different events — different deadline values, even different
            # jobs — collapse onto one cached skeleton.  The relabelled LP is
            # a row/column permutation of the original: same constraints,
            # same feasibility answer.  Gated to ``build_schedule=False``
            # callers (the witness schedule would come back permuted).
            self.rank_canonicalisations += 1
            instance = Instance(
                jobs=tuple(instance.jobs[k] for k in order),
                machines=instance.machines,
                costs=instance.costs[:, order],
            )
            deadlines = [deadlines[k] for k in order]

        epochal_times = list(instance.release_dates) + deadlines
        intervals = build_constant_intervals(epochal_times)
        cuts = _cut_values(intervals)

        allowed = self._allowed_pattern(instance, deadlines, cuts)
        key = (instance.num_machines, instance.num_jobs, len(intervals), allowed.tobytes())

        template = self._templates.get(key)
        if template is None:
            template = self._build_template(instance, deadlines, key, intervals, cuts)
        else:
            self._templates.move_to_end(key)
            self.cache_hits += 1
        event_key = (key, tuple(order) if order is not None else None)
        form = self._refresh(template, instance, cuts, event_key=event_key)

        self.lp_solves += 1
        solution = self._solve_template(template, form)
        if recorder.enabled:
            # One delta emission per probe (the per-counter increments are
            # spread over the template/refresh helpers above).
            recorder.count("replan.lp_solves")
            recorder.count(
                "replan.template_builds", float(self.model_constructions - counters_before[0])
            )
            recorder.count("replan.cache_hits", float(self.cache_hits - counters_before[1]))
            recorder.count(
                "replan.rank_canonicalisations",
                float(self.rank_canonicalisations - counters_before[2]),
            )
            recorder.count(
                "replan.coefficient_refreshes",
                float(self.coefficient_refreshes - counters_before[3]),
            )
            recorder.count(
                "replan.event_refresh_reuses",
                float(self.event_refresh_reuses - counters_before[4]),
            )

        alloc = template.alloc
        if not solution.is_optimal:
            return DeadlineFeasibility(
                feasible=False,
                schedule=None,
                num_intervals=len(intervals),
                lp_variables=alloc.model.num_variables,
                lp_constraints=alloc.model.num_constraints,
                backend=solution.backend,
            )

        schedule = None
        if build_schedule:
            # The cached skeleton carries the intervals and costs of the probe
            # that built it; rebind the current ones for reconstruction (the
            # variable mapping — indices and iteration order — is shared).
            bound = AllocationModel(
                model=alloc.model,
                instance=instance,
                intervals=intervals,
                variables=alloc.variables,
                objective_variable=None,
                sample_objective=0.0,
            )
            if self.preemptive:
                schedule = preemptive_schedule_from_solution(bound, solution)
            else:
                schedule = divisible_schedule_from_solution(bound, solution)

        return DeadlineFeasibility(
            feasible=True,
            schedule=schedule,
            num_intervals=len(intervals),
            lp_variables=alloc.model.num_variables,
            lp_constraints=alloc.model.num_constraints,
            backend=solution.backend,
        )

    # ------------------------------------------------------------------ #
    def _solve_template(self, template: _ModelTemplate, form: MatrixForm) -> LPSolution:
        """Solve one refreshed probe LP with the configured backend.

        The in-house revised backend warm-starts every probe from the
        template's persisted basis: the probe LPs have a zero objective, so
        any basis stays dual feasible across the deadline/coefficient
        refreshes and a re-solve is a few dual-simplex pivots.  Warm-started
        vertices depend on the basis *history*, so witness schedules built
        from them are a deterministic function of the probe's solve sequence
        rather than of each LP in isolation — a CODE_EPOCH-gated semantic
        (2005.6); within a run the sequence is deterministic, so results and
        digests stay reproducible.  Every solve refreshes the stored basis
        for the probes after it.
        """
        kind = self._backend_kind
        if kind == "scipy":
            return _scipy_solve_form(form)
        if kind == "tableau":
            return _tableau_solve_form(form)
        if kind == "highspy":  # pragma: no cover - needs the repro[highs] extra
            from ..lp.highs_backend import HighsWarmModel

            model = template.highs_model
            if isinstance(model, HighsWarmModel):
                model.update_rows(form)
            else:
                model = HighsWarmModel(form)
                template.highs_model = model
            return model.solve()
        if template.solver_handle is None:
            template.solver_handle = ProgramHandle()
        result = solve_matrix_form_revised(
            form, warm_basis=template.basis, handle=template.solver_handle
        )
        if result.basis is not None:
            template.basis = result.basis
        return result.solution

    # ------------------------------------------------------------------ #
    @staticmethod
    def _rank_order(instance: Instance, deadlines: Sequence[float]) -> Optional[List[int]]:
        """Deadline-rank permutation when the instance is rank-canonicalisable.

        Returns the stable deadline-ascending job order for equal-release
        instances (the shape of every replanning sub-instance), or ``None``
        when the jobs already are in that order or the release dates differ
        (heterogeneous releases make the structure depend on the release /
        deadline interleaving, which relabelling does not normalise).
        """
        releases = instance.release_dates
        first = releases[0]
        if any(release != first for release in releases):
            return None
        order = sorted(range(instance.num_jobs), key=lambda j: (deadlines[j], j))
        if order == list(range(instance.num_jobs)):
            return None
        return order

    def _allowed_pattern(
        self, instance: Instance, deadlines: Sequence[float], cuts: Sequence[float]
    ) -> np.ndarray:
        """The allowed-variable bitmap, with the exact from-scratch comparisons."""
        num_intervals = max(len(cuts) - 1, 0)
        pattern = np.zeros((num_intervals, instance.num_jobs, instance.num_machines), dtype=bool)
        costs = instance.costs
        for t in range(num_intervals):
            lower = cuts[t]
            upper = cuts[t + 1]
            for j, job in enumerate(instance.jobs):
                if job.release_date > lower + ABS_TOL:
                    continue
                if deadlines[j] < upper - ABS_TOL:
                    continue
                for i in range(instance.num_machines):
                    if math.isfinite(costs[i, j]):
                        pattern[t, j, i] = True
        return pattern

    def _build_template(
        self,
        instance: Instance,
        deadlines: Sequence[float],
        key: Tuple,
        intervals: Sequence[TimeInterval],
        cuts: Sequence[float],
    ) -> _ModelTemplate:
        """Structure miss: run the from-scratch pipeline and record positions."""
        from .affine import Affine  # deferred: tiny import, keeps header lean

        alloc = build_allocation_model(
            instance,
            intervals,
            deadlines=[Affine.const(d) for d in deadlines],
            objective_bounds=None,
            sample_objective=0.0,
            preemptive=self.preemptive,
            name="deadline-system2" + ("-preemptive" if self.preemptive else ""),
        )
        form = to_matrix_form(alloc.model, sparse=self._sparse)
        self.model_constructions += 1

        # Inequality rows are, in order: capacity[(t, i)] rows (t-major, only
        # machines with allowed variables), then — preemptive model only —
        # job_window[(t, j)] rows.  Within a row the CSR columns are sorted by
        # variable index, which is creation order (t, j, i)-lexicographic, so
        # a capacity row's columns run over ascending j and a job-window row's
        # over ascending i.  Record the (machine, job, interval) source of
        # every coefficient and right-hand side in that exact order.
        coef_machines: List[int] = []
        coef_jobs: List[int] = []
        row_intervals: List[int] = []
        for t in range(len(intervals)):
            for i in range(instance.num_machines):
                row_jobs = [
                    j for j in range(instance.num_jobs) if (i, j, t) in alloc.variables
                ]
                if not row_jobs:
                    continue
                row_intervals.append(t)
                for j in row_jobs:
                    coef_machines.append(i)
                    coef_jobs.append(j)
        if self.preemptive:
            for t in range(len(intervals)):
                for j in range(instance.num_jobs):
                    row_machines = [
                        i for i in range(instance.num_machines) if (i, j, t) in alloc.variables
                    ]
                    if not row_machines:
                        continue
                    row_intervals.append(t)
                    for i in row_machines:
                        coef_machines.append(i)
                        coef_jobs.append(j)

        template = _ModelTemplate(
            alloc=alloc,
            form=form,
            coef_machines=np.asarray(coef_machines, dtype=np.intp),
            coef_jobs=np.asarray(coef_jobs, dtype=np.intp),
            row_intervals=np.asarray(row_intervals, dtype=np.intp),
        )
        if not self._sparse and form.num_inequalities:
            rows, cols = np.nonzero(form.a_ub)
            template.coef_rows = rows
            template.coef_cols = cols

        # The refresh path must land exactly where the lowering put the
        # original values; verify once per construction, then trust the map.
        refreshed = self._refresh(template, instance, cuts, event_key=None)
        self.coefficient_refreshes -= 1  # verification refresh, not a probe answer
        if self._sparse and form.num_inequalities:
            assert np.array_equal(refreshed.a_ub.data, form.a_ub.data), (
                "ReplanProbe refresh map does not match the lowered form"
            )
        elif form.num_inequalities:
            assert np.array_equal(refreshed.a_ub, form.a_ub), (
                "ReplanProbe refresh map does not match the lowered form"
            )
        assert np.array_equal(refreshed.b_ub, form.b_ub), (
            "ReplanProbe interval map does not match the lowered form"
        )

        self._templates[key] = template
        while len(self._templates) > self._max_cached_models:
            self._templates.popitem(last=False)
        return template

    def _refresh(
        self,
        template: _ModelTemplate,
        instance: Instance,
        cuts: Sequence[float],
        *,
        event_key: Optional[Tuple] = None,
    ) -> MatrixForm:
        """Write the current coefficients/lengths into a copy of the template.

        Within one replanning event the coefficient values are constant —
        only the interval lengths (right-hand sides) move with the probed
        deadlines — so when ``event_key`` names a (template, permutation)
        pair already refreshed for the current event instance, the whole
        constraint-matrix rewrite is skipped and the cached matrix is reused
        (both backends treat it as read-only).
        """
        form = template.form
        if not form.num_inequalities:
            return form
        lengths = np.array(
            [cuts[t + 1] - cuts[t] for t in range(len(cuts) - 1)], dtype=float
        )
        b_ub = lengths[template.row_intervals]
        a_ub = self._event_forms.get(event_key) if event_key is not None else None
        if a_ub is None:
            data = np.asarray(instance.costs)[
                template.coef_machines, template.coef_jobs
            ].astype(float, copy=False)
            if self._sparse:
                a_ub = sp.csr_matrix(
                    (data, form.a_ub.indices, form.a_ub.indptr), shape=form.a_ub.shape
                )
            else:
                a_ub = form.a_ub.copy()
                a_ub[template.coef_rows, template.coef_cols] = data
            self.coefficient_refreshes += 1
            if event_key is not None:
                if len(self._event_forms) >= 16:  # one event touches few templates
                    self._event_forms.clear()
                self._event_forms[event_key] = a_ub
        else:
            self.event_refresh_reuses += 1
        return MatrixForm(
            c=form.c,
            objective_constant=form.objective_constant,
            objective_sign=form.objective_sign,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=form.a_eq,
            b_eq=form.b_eq,
            bounds=form.bounds,
        )


def _cut_values(intervals: Sequence[TimeInterval]) -> List[float]:
    """Interval boundary values (lower bounds plus the final upper bound)."""
    cuts = [interval.lower_at(0.0) for interval in intervals]
    if intervals:
        cuts.append(intervals[-1].upper_at(0.0))
    return cuts
