"""Shared machinery for building the paper's linear programs.

Systems (2), (3) and (5) of the paper share the same skeleton: allocation
variables ``alpha[i, j, t]`` (the fraction of job ``j`` processed by machine
``i`` during interval ``I_t``), release-date and deadline restrictions that
simply *remove* variables, per-interval resource constraints and per-job
completion constraints.  This module builds that skeleton once so that the
individual solvers (:mod:`repro.core.deadline`, :mod:`repro.core.maxflow`,
:mod:`repro.core.preemptive`) only state what is specific to them.

The same module also converts LP solutions back into concrete
:class:`~repro.core.schedule.Schedule` objects:

* in the divisible model the fractions of an interval are simply laid out
  sequentially on each machine (any order is valid, as the paper notes);
* in the preemptive model the per-interval allocation matrix is handed to the
  Lawler–Labetoulle reconstruction so that no job ever runs on two machines
  simultaneously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..lp import LinearProgram, LinearExpression, LPSolution, Variable, linear_sum
from .affine import Affine
from .instance import Instance
from .intervals import TimeInterval
from .lawler_labetoulle import build_preemptive_pieces
from .schedule import Schedule
from .tolerances import ABS_TOL

__all__ = [
    "AllocationModel",
    "build_allocation_model",
    "divisible_schedule_from_solution",
    "preemptive_schedule_from_solution",
]

#: Allocation fractions below this threshold are dropped when building schedules.
_FRACTION_DUST = 1e-10


@dataclass
class AllocationModel:
    """A linear program over allocation variables ``alpha[i, j, t]``.

    Attributes
    ----------
    model:
        The underlying :class:`~repro.lp.model.LinearProgram`.
    instance:
        The scheduling instance.
    intervals:
        The time intervals indexing the allocation variables.
    variables:
        Mapping ``(machine_index, job_index, interval_index) -> Variable``;
        only *allowed* combinations are present.
    objective_variable:
        The ``F`` variable of System (3)/(5), or ``None`` for fixed-deadline
        systems.
    sample_objective:
        The objective value used to order the (possibly affine) epochal times.
    """

    model: LinearProgram
    instance: Instance
    intervals: List[TimeInterval]
    variables: Dict[Tuple[int, int, int], Variable] = field(default_factory=dict)
    objective_variable: Optional[Variable] = None
    sample_objective: float = 0.0

    def allocation(self, solution: LPSolution) -> Dict[Tuple[int, int, int], float]:
        """Extract the non-negligible allocation fractions from a solution."""
        values: Dict[Tuple[int, int, int], float] = {}
        for key, var in self.variables.items():
            value = solution.value(var)
            if value > _FRACTION_DUST:
                values[key] = value
        return values


def _is_allowed(
    instance: Instance,
    machine_index: int,
    job_index: int,
    interval: TimeInterval,
    deadline: Optional[Affine],
    sample_objective: float,
    tol: float,
) -> bool:
    """Decide structurally whether ``alpha[i, j, t]`` may be non-zero.

    Encodes constraints (2a)/(2b) (equivalently (3b)/(3c), (5d)/(5e)) of the
    paper: the job must be released no later than the interval starts and, if
    it has a deadline, the interval must end no later than the deadline.
    Machines that cannot process the job at all (infinite ``c_{i,j}``) are
    excluded as well.
    """
    if not math.isfinite(instance.costs[machine_index, job_index]):
        return False
    job = instance.jobs[job_index]
    if job.release_date > interval.lower_at(sample_objective) + tol:
        return False
    if deadline is not None and deadline(sample_objective) < interval.upper_at(sample_objective) - tol:
        return False
    return True


def build_allocation_model(
    instance: Instance,
    intervals: Sequence[TimeInterval],
    deadlines: Optional[Sequence[Affine]] = None,
    objective_bounds: Optional[Tuple[float, Optional[float]]] = None,
    sample_objective: float = 0.0,
    preemptive: bool = False,
    name: str = "",
    tol: float = ABS_TOL,
) -> AllocationModel:
    """Build the LP skeleton shared by Systems (2), (3) and (5).

    Parameters
    ----------
    instance:
        The scheduling instance.
    intervals:
        The time intervals (constant or affine bounds).
    deadlines:
        Per-job deadlines as affine functions of the objective, or ``None``
        when jobs have no deadlines (makespan-style formulations).
    objective_bounds:
        When given, a variable ``F`` with these ``(lower, upper)`` bounds is
        created, the interval lengths become affine expressions of ``F`` and
        the model minimises ``F`` (this is System (3)/(5)).  ``upper`` may be
        ``None`` for an unbounded search range.  When omitted, interval
        lengths are evaluated at ``sample_objective`` and the model has a
        constant zero objective (pure feasibility, System (2)).
    sample_objective:
        Objective value used to fix the epochal-time order (must lie strictly
        inside the milestone range when ``objective_bounds`` is given).
    preemptive:
        When ``True``, add the per-job per-interval constraints (5b) that
        forbid a job from receiving more work in an interval than the
        interval's length — the extra requirement of the preemptive
        (non-divisible) model.
    name:
        Model name for diagnostics.
    tol:
        Numerical tolerance for the structural allowed/forbidden decisions.
    """
    model = LinearProgram(name=name or "allocation", sense="min")
    alloc = AllocationModel(
        model=model,
        instance=instance,
        intervals=list(intervals),
        sample_objective=sample_objective,
    )

    # Objective variable F (System (3)/(5)) -------------------------------
    objective_var: Optional[Variable] = None
    if objective_bounds is not None:
        lower, upper = objective_bounds
        objective_var = model.add_variable(
            "F", lower=lower, upper=float("inf") if upper is None else upper
        )
        model.set_objective(objective_var)
        alloc.objective_variable = objective_var
    else:
        model.set_objective(0.0)

    # Allocation variables --------------------------------------------------
    for t, interval in enumerate(alloc.intervals):
        for j in range(instance.num_jobs):
            deadline = deadlines[j] if deadlines is not None else None
            for i in range(instance.num_machines):
                if _is_allowed(instance, i, j, interval, deadline, sample_objective, tol):
                    var = model.add_variable(f"alpha[{i},{j},{t}]", lower=0.0, upper=1.0)
                    alloc.variables[(i, j, t)] = var

    # Resource constraints (1b)/(2c)/(3d)/(5c) ------------------------------
    for t, interval in enumerate(alloc.intervals):
        length = interval.length()
        for i in range(instance.num_machines):
            terms = [
                alloc.variables[(i, j, t)] * float(instance.costs[i, j])
                for j in range(instance.num_jobs)
                if (i, j, t) in alloc.variables
            ]
            if not terms:
                continue
            usage = linear_sum(terms)
            model.add_constraint(
                _usage_constraint(usage, length, objective_var),
                name=f"capacity[m{i},t{t}]",
            )

    # Preemptive per-job constraints (5b) ------------------------------------
    if preemptive:
        for t, interval in enumerate(alloc.intervals):
            length = interval.length()
            for j in range(instance.num_jobs):
                terms = [
                    alloc.variables[(i, j, t)] * float(instance.costs[i, j])
                    for i in range(instance.num_machines)
                    if (i, j, t) in alloc.variables
                ]
                if not terms:
                    continue
                usage = linear_sum(terms)
                model.add_constraint(
                    _usage_constraint(usage, length, objective_var),
                    name=f"job_window[j{j},t{t}]",
                )

    # Completion constraints (1d)/(2d)/(3e)/(5a) ------------------------------
    for j in range(instance.num_jobs):
        terms = [
            alloc.variables[(i, j, t)]
            for t in range(len(alloc.intervals))
            for i in range(instance.num_machines)
            if (i, j, t) in alloc.variables
        ]
        if not terms:
            # The job cannot be scheduled anywhere within its window: encode
            # an explicitly infeasible constraint so the solver reports
            # infeasibility instead of silently dropping the job.
            model.add_constraint(
                LinearExpression({}, 1.0) == 0.0, name=f"completion[j{j}]-impossible"
            )
            continue
        model.add_constraint(linear_sum(terms) == 1.0, name=f"completion[j{j}]")

    return alloc


def _usage_constraint(usage, length: Affine, objective_var: Optional[Variable]):
    """Build ``usage <= length`` where ``length`` may depend on the objective variable."""
    if objective_var is not None:
        rhs = length.constant + length.slope * objective_var
    else:
        rhs = length.constant
        if length.slope != 0.0:
            raise ValueError(
                "interval length depends on the objective but no objective variable was created"
            )
    return usage <= rhs


# --------------------------------------------------------------------------- #
# Schedule reconstruction                                                     #
# --------------------------------------------------------------------------- #
def divisible_schedule_from_solution(
    alloc: AllocationModel,
    solution: LPSolution,
    objective_value: float = 0.0,
) -> Schedule:
    """Build a divisible schedule from an allocation solution.

    Inside every interval the fractions assigned to a machine are laid out
    one after the other starting at the interval's lower bound; the resource
    constraints guarantee they fit.  Jobs are laid out in index order — any
    order is valid in the divisible model, as the paper observes.
    """
    instance = alloc.instance
    schedule = Schedule(instance=instance, divisible=True)
    fractions = alloc.allocation(solution)

    for t, interval in enumerate(alloc.intervals):
        start_time = interval.lower_at(objective_value)
        for i in range(instance.num_machines):
            cursor = start_time
            for j in range(instance.num_jobs):
                fraction = fractions.get((i, j, t), 0.0)
                if fraction <= _FRACTION_DUST:
                    continue
                duration = fraction * float(instance.costs[i, j])
                schedule.add_piece(j, i, cursor, cursor + duration, fraction)
                cursor += duration
    return schedule.compact()


def preemptive_schedule_from_solution(
    alloc: AllocationModel,
    solution: LPSolution,
    objective_value: float = 0.0,
) -> Schedule:
    """Build a preemptive (non-divisible) schedule from an allocation solution.

    Every interval's allocation matrix is handed to the Lawler–Labetoulle
    reconstruction (:mod:`repro.core.lawler_labetoulle`); the per-interval
    schedules are then concatenated, exactly as in Section 4.4 of the paper.
    """
    instance = alloc.instance
    schedule = Schedule(instance=instance, divisible=False)
    fractions = alloc.allocation(solution)

    for t, interval in enumerate(alloc.intervals):
        window_start = interval.lower_at(objective_value)
        window_length = interval.length_at(objective_value)
        if window_length <= 0:
            continue

        times = np.zeros((instance.num_machines, instance.num_jobs))
        for (i, j, tt), fraction in fractions.items():
            if tt != t:
                continue
            times[i, j] = fraction * float(instance.costs[i, j])
        if times.sum() <= _FRACTION_DUST:
            continue

        # LP rounding can leave row/column sums a hair above the window
        # length; rescale the whole matrix by the (tiny) excess so that the
        # Lawler-Labetoulle preconditions hold exactly.
        max_load = max(times.sum(axis=1).max(), times.sum(axis=0).max())
        if max_load > window_length:
            relative_excess = (max_load - window_length) / max(window_length, 1e-30)
            if relative_excess > 1e-4:
                raise ValueError(
                    "allocation exceeds the interval length by more than the LP tolerance "
                    f"({max_load:.9g} > {window_length:.9g})"
                )
            times *= window_length / max_load

        for machine_index, job_index, start, end in build_preemptive_pieces(
            times, window_length, window_start
        ):
            cost = float(instance.costs[machine_index, job_index])
            schedule.add_piece(job_index, machine_index, start, end, (end - start) / cost)

    return schedule.compact()
