"""Affine functions of the objective value ``F``.

Section 4.3 of the paper turns the max-weighted-flow problem into a family of
deadline problems whose deadlines ``d_j(F) = r_j + F / w_j`` are *affine* in
the objective ``F``.  Between two consecutive milestones the relative order
of all release dates and deadlines is fixed, so every epochal time — and
hence every interval length appearing in System (3)/(5) — is an affine
function of ``F``.

This module provides the tiny symbolic type used to carry those functions
around: :class:`Affine` represents ``constant + slope * F``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from .tolerances import ABS_TOL, is_close

__all__ = ["Affine"]

Number = Union[int, float]


@dataclass(frozen=True)
class Affine:
    """An affine function of the objective value: ``value(F) = constant + slope * F``.

    Release dates are encoded with ``slope == 0``; the deadline of job ``j``
    is ``Affine(r_j, 1 / w_j)``.
    """

    constant: float
    slope: float = 0.0

    # ------------------------------------------------------------------ #
    @staticmethod
    def const(value: float) -> "Affine":
        """Return the constant function ``F -> value``."""
        return Affine(float(value), 0.0)

    def __call__(self, objective: float) -> float:
        """Evaluate the function at objective value ``objective``."""
        return self.constant + self.slope * objective

    # ------------------------------------------------------------------ #
    # Arithmetic                                                          #
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Affine", Number]) -> "Affine":
        if isinstance(other, Affine):
            return Affine(self.constant + other.constant, self.slope + other.slope)
        return Affine(self.constant + float(other), self.slope)

    def __radd__(self, other: Number) -> "Affine":
        return self.__add__(other)

    def __sub__(self, other: Union["Affine", Number]) -> "Affine":
        if isinstance(other, Affine):
            return Affine(self.constant - other.constant, self.slope - other.slope)
        return Affine(self.constant - float(other), self.slope)

    def __rsub__(self, other: Number) -> "Affine":
        return Affine(float(other) - self.constant, -self.slope)

    def __mul__(self, scalar: Number) -> "Affine":
        return Affine(self.constant * float(scalar), self.slope * float(scalar))

    def __rmul__(self, scalar: Number) -> "Affine":
        return self.__mul__(scalar)

    def __neg__(self) -> "Affine":
        return Affine(-self.constant, -self.slope)

    # ------------------------------------------------------------------ #
    # Structure                                                           #
    # ------------------------------------------------------------------ #
    def is_constant(self, tol: float = ABS_TOL) -> bool:
        """Return ``True`` when the slope is (numerically) zero."""
        return abs(self.slope) <= tol

    def functionally_equal(self, other: "Affine", tol: float = ABS_TOL) -> bool:
        """Return ``True`` when the two functions coincide everywhere (up to tolerance)."""
        return is_close(self.constant, other.constant, abs_tol=tol) and is_close(
            self.slope, other.slope, abs_tol=tol
        )

    def intersection(self, other: "Affine") -> Optional[float]:
        """Return the objective value at which the two functions are equal.

        Returns ``None`` when the functions are parallel (including when they
        are identical — an identical pair never defines a milestone).
        """
        slope_diff = self.slope - other.slope
        if abs(slope_diff) <= ABS_TOL:
            return None
        crossing = (other.constant - self.constant) / slope_diff
        if not math.isfinite(crossing):
            return None
        return crossing

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.slope == 0:
            return f"Affine({self.constant:g})"
        return f"Affine({self.constant:g} + {self.slope:g}*F)"
