"""Preemptive (non-divisible) scheduling — Section 4.4 of the paper.

The divisible-load model lets a job run on several machines at the same time.
The classical preemptive model does not: a job may be interrupted and resumed
on another machine, but at any instant it occupies at most one machine.
Section 4.4 shows that the max-weighted-flow problem remains polynomial in
this model: System (5) adds to System (3) the per-job interval constraints
(5b), and a feasible allocation is turned into an actual preemptive schedule
inside every interval with the Lawler–Labetoulle construction.

This module exposes the preemptive entry points under their own names; they
are thin wrappers over the shared implementations with ``preemptive=True``.
"""

from __future__ import annotations

from typing import Sequence

from .deadline import DeadlineFeasibility, check_deadline_feasibility
from .instance import Instance
from .makespan import MakespanResult, minimize_makespan
from .maxflow import (
    MaxWeightedFlowResult,
    minimize_max_stretch,
    minimize_max_weighted_flow,
)

__all__ = [
    "minimize_max_weighted_flow_preemptive",
    "minimize_max_stretch_preemptive",
    "minimize_makespan_preemptive",
    "check_deadline_feasibility_preemptive",
]


def minimize_max_weighted_flow_preemptive(
    instance: Instance, *, backend: str = "scipy"
) -> MaxWeightedFlowResult:
    """Minimise the maximum weighted flow with preemption but no divisibility.

    This is the algorithm of Section 4.4: milestone binary search over
    System (5) followed by the Lawler–Labetoulle reconstruction of a concrete
    preemptive schedule.  The returned schedule never runs a job on two
    machines at the same instant (``Schedule.divisible`` is ``False`` and
    validation enforces the property).
    """
    return minimize_max_weighted_flow(instance, preemptive=True, backend=backend)


def minimize_max_stretch_preemptive(
    instance: Instance, *, backend: str = "scipy"
) -> MaxWeightedFlowResult:
    """Minimise the maximum stretch in the preemptive (non-divisible) model."""
    return minimize_max_stretch(instance, preemptive=True, backend=backend)


def minimize_makespan_preemptive(instance: Instance, *, backend: str = "scipy") -> MakespanResult:
    """Minimise the makespan with preemption but no divisibility.

    Not stated as a theorem in the paper but an immediate corollary of the
    same technique (and of Lawler & Labetoulle's original result extended
    with release dates); provided as an extension.
    """
    return minimize_makespan(instance, preemptive=True, backend=backend)


def check_deadline_feasibility_preemptive(
    instance: Instance,
    deadlines: Sequence[float],
    *,
    build_schedule: bool = True,
    backend: str = "scipy",
) -> DeadlineFeasibility:
    """Deadline feasibility in the preemptive (non-divisible) model."""
    return check_deadline_feasibility(
        instance,
        deadlines,
        preemptive=True,
        build_schedule=build_schedule,
        backend=backend,
    )
