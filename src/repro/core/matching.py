"""Bipartite maximum matching (Hopcroft–Karp).

The preemptive-schedule reconstruction of Section 4.4 repeatedly extracts a
perfect matching from the support of a non-negative matrix whose row and
column sums are all equal (a generalised Birkhoff–von Neumann decomposition,
following Lawler & Labetoulle and Gonzalez & Sahni).  This module provides
the matching primitive.

The implementation is a from-scratch Hopcroft–Karp: BFS builds layered
distances from free left vertices, DFS finds a maximal set of vertex-disjoint
shortest augmenting paths, and the two phases repeat until no augmenting path
exists.  Complexity ``O(E sqrt(V))``.

``networkx`` is deliberately *not* used here (it serves as an independent
oracle in the tests).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Mapping, Optional, Set

__all__ = ["hopcroft_karp", "maximum_matching", "is_perfect_matching"]

_INFINITY = float("inf")


def hopcroft_karp(adjacency: Mapping[Hashable, Iterable[Hashable]]) -> Dict[Hashable, Hashable]:
    """Compute a maximum matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        Mapping from each *left* vertex to the iterable of *right* vertices it
        is connected to.  Left and right vertex labels live in separate
        namespaces (a label may appear on both sides without creating an
        edge between its two occurrences).

    Returns
    -------
    dict
        Mapping from matched left vertices to their right partner.  Unmatched
        left vertices are absent from the dictionary.
    """
    # Normalise adjacency to lists for repeatable iteration order.
    graph: Dict[Hashable, list] = {u: list(neighbours) for u, neighbours in adjacency.items()}

    match_left: Dict[Hashable, Optional[Hashable]] = {u: None for u in graph}
    match_right: Dict[Hashable, Optional[Hashable]] = {}
    for neighbours in graph.values():
        for v in neighbours:
            match_right.setdefault(v, None)

    distance: Dict[Hashable, float] = {}

    def bfs() -> bool:
        """Layered BFS from free left vertices; returns True when an augmenting path exists."""
        queue = deque()
        for u in graph:
            if match_left[u] is None:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INFINITY
        found_free_right = False
        while queue:
            u = queue.popleft()
            for v in graph[u]:
                partner = match_right[v]
                if partner is None:
                    found_free_right = True
                elif distance[partner] == _INFINITY:
                    distance[partner] = distance[u] + 1.0
                    queue.append(partner)
        return found_free_right

    def dfs(u: Hashable) -> bool:
        """Try to extend an augmenting path from left vertex ``u``."""
        for v in graph[u]:
            partner = match_right[v]
            if partner is None or (distance[partner] == distance[u] + 1.0 and dfs(partner)):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INFINITY
        return False

    while bfs():
        for u in graph:
            if match_left[u] is None:
                dfs(u)

    return {u: v for u, v in match_left.items() if v is not None}


def maximum_matching(adjacency: Mapping[Hashable, Iterable[Hashable]]) -> Dict[Hashable, Hashable]:
    """Alias of :func:`hopcroft_karp` with a more descriptive name."""
    return hopcroft_karp(adjacency)


def is_perfect_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]], matching: Mapping[Hashable, Hashable]
) -> bool:
    """Return ``True`` when ``matching`` saturates every left vertex of ``adjacency``.

    Also checks that the matching only uses edges present in the graph and
    never reuses a right vertex.
    """
    used_right: Set[Hashable] = set()
    for u in adjacency:
        v = matching.get(u)
        if v is None:
            return False
        if v in used_right:
            return False
        if v not in set(adjacency[u]):
            return False
        used_right.add(v)
    return True
