"""Minimisation of the maximum weighted flow (Sections 4.3 and 4.4, Theorem 2).

This is the paper's headline result.  The algorithm:

1. **Deadline reformulation** — a schedule has maximum weighted flow at most
   ``F`` iff every job meets the deadline ``d_j(F) = r_j + F / w_j``
   (Section 4.3.1), so feasibility of an objective value reduces to the
   deadline-scheduling test of Lemma 1.
2. **Milestones** — the relative order of release dates and deadlines only
   changes at the ``O(n²)`` objective values where a deadline meets a release
   date or another deadline (Section 4.3.2).  Between two consecutive
   milestones the structure of System (2) is constant and the interval
   lengths are *affine* in ``F``.
3. **Binary search over milestones** — each probe is one LP feasibility test;
   the search locates the milestone range containing the optimum.
4. **System (3)/(5) on the located range** — a final LP with ``F`` as a
   decision variable returns the exact optimum and an optimal allocation,
   which is converted into a schedule (sequential layout for the divisible
   model, Lawler–Labetoulle reconstruction for the preemptive model).

The module also provides a naive ε-precision binary search
(:func:`minimize_max_weighted_flow_bisection`), which the paper discusses and
rejects because it only reaches the optimum approximately; it is kept as a
baseline for the milestone-search ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..exceptions import InvalidInstanceError
from .affine import Affine
from .deadline import check_deadline_feasibility
from .formulations import (
    build_allocation_model,
    divisible_schedule_from_solution,
    preemptive_schedule_from_solution,
)
from .instance import Instance
from .intervals import build_affine_intervals
from .milestones import compute_milestones, deadline_function
from .schedule import Schedule

__all__ = [
    "MaxWeightedFlowResult",
    "minimize_max_weighted_flow",
    "minimize_max_stretch",
    "minimize_max_weighted_flow_bisection",
]


@dataclass(frozen=True)
class MaxWeightedFlowResult:
    """Result of a maximum-weighted-flow optimisation.

    Attributes
    ----------
    objective:
        Optimal maximum weighted flow ``F*``.
    schedule:
        A schedule whose maximum weighted flow equals ``F*`` (up to LP
        tolerance).
    milestones:
        The milestone values enumerated by the search.
    search_range:
        The milestone range ``(low, high)`` in which the optimum was located
        (``high`` is ``None`` for the unbounded final range).
    feasibility_checks:
        Number of deadline-feasibility LPs solved during the binary search.
    lp_variables, lp_constraints:
        Size of the final System (3)/(5) LP.
    preemptive:
        Whether the preemptive (non-divisible) model was used.
    backend:
        LP backend used.
    """

    objective: float
    schedule: Schedule
    milestones: List[float]
    search_range: Tuple[float, Optional[float]]
    feasibility_checks: int
    lp_variables: int
    lp_constraints: int
    preemptive: bool
    backend: str


# --------------------------------------------------------------------------- #
# Milestone-exact algorithm (Theorem 2)                                        #
# --------------------------------------------------------------------------- #
def minimize_max_weighted_flow(
    instance: Instance,
    *,
    preemptive: bool = False,
    backend: str = "scipy",
) -> MaxWeightedFlowResult:
    """Compute the optimal maximum weighted flow and an optimal schedule.

    Parameters
    ----------
    instance:
        The scheduling instance.
    preemptive:
        ``False`` (default): divisible-load model (Section 4.3).
        ``True``: preemption allowed but no simultaneous execution of a job
        on two machines (Section 4.4).
    backend:
        LP backend (``"scipy"`` or ``"simplex"``).
    """
    if instance.num_jobs == 0:
        raise InvalidInstanceError("cannot optimise an empty instance")

    milestones = compute_milestones(instance.jobs)

    def feasible(objective: float) -> bool:
        deadlines = [job.deadline_for_flow(objective) for job in instance.jobs]
        outcome = check_deadline_feasibility(
            instance,
            deadlines,
            preemptive=preemptive,
            build_schedule=False,
            backend=backend,
        )
        return outcome.feasible

    # Binary search for the leftmost feasible milestone. ---------------------
    feasibility_checks = 0
    search_low = 0.0
    search_high: Optional[float] = None

    if milestones:
        lo, hi = 0, len(milestones) - 1
        leftmost_feasible: Optional[int] = None
        # Check the last milestone first: if even it is infeasible the
        # optimum lies in the unbounded final range.
        feasibility_checks += 1
        if not feasible(milestones[-1]):
            search_low = milestones[-1]
            search_high = None
        else:
            hi = len(milestones) - 1
            leftmost_feasible = hi
            while lo < hi:
                mid = (lo + hi) // 2
                feasibility_checks += 1
                if feasible(milestones[mid]):
                    leftmost_feasible = mid
                    hi = mid
                else:
                    lo = mid + 1
            leftmost_feasible = lo
            search_high = milestones[leftmost_feasible]
            search_low = milestones[leftmost_feasible - 1] if leftmost_feasible > 0 else 0.0
    # With no milestones at all the order of epochal times never changes and
    # the single range [0, +inf) is searched directly.

    objective, schedule, lp_vars, lp_cons, backend_name = _solve_on_range(
        instance,
        search_low,
        search_high,
        preemptive=preemptive,
        backend=backend,
    )

    return MaxWeightedFlowResult(
        objective=objective,
        schedule=schedule,
        milestones=milestones,
        search_range=(search_low, search_high),
        feasibility_checks=feasibility_checks,
        lp_variables=lp_vars,
        lp_constraints=lp_cons,
        preemptive=preemptive,
        backend=backend_name,
    )


def _solve_on_range(
    instance: Instance,
    low: float,
    high: Optional[float],
    *,
    preemptive: bool,
    backend: str,
) -> Tuple[float, Schedule, int, int, str]:
    """Solve System (3) (or (5)) on the milestone range ``[low, high]``."""
    if high is not None:
        sample = 0.5 * (low + high)
        if sample <= 0.0:
            sample = high * 0.5 if high > 0 else 1.0
    else:
        sample = low + max(1.0, abs(low))

    deadlines = [deadline_function(job) for job in instance.jobs]
    epochal = [deadline_function(job) for job in instance.jobs]
    epochal += [Affine.const(job.release_date) for job in instance.jobs]
    intervals = build_affine_intervals(epochal, sample)

    alloc = build_allocation_model(
        instance,
        intervals,
        deadlines=deadlines,
        objective_bounds=(low, high),
        sample_objective=sample,
        preemptive=preemptive,
        name="maxflow-system" + ("5" if preemptive else "3"),
    )
    solution = alloc.model.solve_or_raise(backend=backend)
    objective = float(solution.value(alloc.objective_variable))

    if preemptive:
        schedule = preemptive_schedule_from_solution(alloc, solution, objective_value=objective)
    else:
        schedule = divisible_schedule_from_solution(alloc, solution, objective_value=objective)

    return (
        objective,
        schedule,
        alloc.model.num_variables,
        alloc.model.num_constraints,
        solution.backend,
    )


# --------------------------------------------------------------------------- #
# Convenience wrappers                                                         #
# --------------------------------------------------------------------------- #
def minimize_max_stretch(
    instance: Instance,
    *,
    preemptive: bool = False,
    backend: str = "scipy",
) -> MaxWeightedFlowResult:
    """Minimise the maximum stretch (flow divided by processing demand).

    Max-stretch is the special case of max weighted flow with weights
    ``w_j = 1 / W_j`` (see :meth:`repro.core.job.Job.stretch_weight`).  Jobs
    without an explicit size use their fastest single-machine processing time
    as the normalisation, which matches the definition used by
    :meth:`repro.core.schedule.Schedule.stretch`.
    """
    new_jobs = []
    for j, job in enumerate(instance.jobs):
        if job.size is not None:
            weight = job.stretch_weight()
        else:
            weight = 1.0 / instance.min_cost(j)
        new_jobs.append(job.with_weight(weight))
    stretch_instance = Instance(
        jobs=tuple(new_jobs), machines=instance.machines, costs=instance.costs.copy()
    )
    return minimize_max_weighted_flow(
        stretch_instance, preemptive=preemptive, backend=backend
    )


def minimize_max_weighted_flow_bisection(
    instance: Instance,
    *,
    precision: float = 1e-4,
    preemptive: bool = False,
    backend: str = "scipy",
    max_iterations: int = 200,
) -> Tuple[float, int]:
    """Naive ε-precision bisection on the objective value (the rejected approach).

    The paper points out that a plain binary search on the objective value
    cannot reach the exact optimum in bounded time because the optimum is an
    arbitrary rational.  This routine implements that naive search anyway so
    the milestone algorithm can be compared against it (ablation bench E6):
    it returns an objective value within ``precision`` of the optimum and the
    number of feasibility LPs it needed.

    Returns
    -------
    (objective_upper_bound, feasibility_checks)
    """
    def feasible(objective: float) -> bool:
        deadlines = [job.deadline_for_flow(objective) for job in instance.jobs]
        return check_deadline_feasibility(
            instance,
            deadlines,
            preemptive=preemptive,
            build_schedule=False,
            backend=backend,
        ).feasible

    low = 0.0
    high = max(instance.trivial_upper_bound_flow(), precision)
    checks = 0
    # Make sure the upper bound really is feasible (it is by construction,
    # but the explicit check keeps the invariant obvious).
    checks += 1
    while not feasible(high) and checks < max_iterations:
        high *= 2.0
        checks += 1

    iterations = 0
    while high - low > precision and iterations < max_iterations:
        mid = 0.5 * (low + high)
        checks += 1
        if feasible(mid):
            high = mid
        else:
            low = mid
        iterations += 1
    return high, checks
