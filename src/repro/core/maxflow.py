"""Minimisation of the maximum weighted flow (Sections 4.3 and 4.4, Theorem 2).

This is the paper's headline result.  The algorithm:

1. **Deadline reformulation** — a schedule has maximum weighted flow at most
   ``F`` iff every job meets the deadline ``d_j(F) = r_j + F / w_j``
   (Section 4.3.1), so feasibility of an objective value reduces to the
   deadline-scheduling test of Lemma 1.
2. **Milestones** — the relative order of release dates and deadlines only
   changes at the ``O(n²)`` objective values where a deadline meets a release
   date or another deadline (Section 4.3.2).  Between two consecutive
   milestones the structure of System (2) is constant and the interval
   lengths are *affine* in ``F``.
3. **Binary search over milestones** — each probe is one LP feasibility test;
   the search locates the milestone range containing the optimum.
4. **System (3)/(5) on the located range** — a final LP with ``F`` as a
   decision variable returns the exact optimum and an optimal allocation,
   which is converted into a schedule (sequential layout for the divisible
   model, Lawler–Labetoulle reconstruction for the preemptive model).

Probe reuse
-----------
Feasibility probes go through a :class:`FeasibilityProbe`, the hot-path
object of the search.  Instead of rebuilding the whole allocation model for
every probed objective value, the probe exploits the milestone structure:

* the combinatorial structure of the LP (interval order, allowed allocation
  variables) is constant over a milestone range, so the probe builds **one
  parametric model per range it touches** — with ``F`` as a bounded decision
  variable — lowers it to a sparse matrix form once, and answers every probe
  in that range by re-solving with updated ``F`` bounds only;
* a probe at ``F`` is answered by minimising ``F`` over the range restricted
  to ``[range_low, F]``.  A *feasible* solve therefore yields the least
  feasible objective of the whole range, not just a yes/no answer.  When that
  minimum lies strictly inside the range it equals the global optimum ``F*``
  (feasibility is monotone in ``F``), after which **every** further probe is
  answered by comparing against ``F*`` without touching a solver;
* an *infeasible* solve proves every ``F`` at or below the probed value
  infeasible, again by monotonicity; both facts are recorded as monotone
  bounds and consulted before any LP work;
* an LRU memo keyed by the exact probed value guarantees that the milestone
  search and the ε-bisection baseline never solve the same objective twice;
* the per-range parametric models themselves sit in a size-capped LRU cache
  (``max_cached_ranges``), so campaign-scale sweeps that keep many probes
  alive at once stay in bounded memory.

The per-call counters (``probes``, ``lp_solves``, ``model_constructions``)
feed the milestone-search bench, which asserts that the probe path performs
strictly fewer model constructions than it answers probes.

The module also provides a naive ε-precision binary search
(:func:`minimize_max_weighted_flow_bisection`), which the paper discusses and
rejects because it only reaches the optimum approximately; it is kept as a
baseline for the milestone-search ablation bench.  It accepts the same
``probe`` object so the two searches can share cached structures and memoised
answers.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import InfeasibleProblemError, InvalidInstanceError, SolverError
from ..lp import LPSolution, MatrixForm, to_matrix_form
from ..lp.backends import canonical_backend
from ..lp.revised_simplex import BasisState, solve_matrix_form_revised
from ..lp.scipy_backend import solve_matrix_form as _scipy_solve_form
from ..lp.simplex import solve_matrix_form_tableau as _tableau_solve_form
from .affine import Affine
from .formulations import (
    AllocationModel,
    build_allocation_model,
    divisible_schedule_from_solution,
    preemptive_schedule_from_solution,
)
from .instance import Instance
from .intervals import build_affine_intervals
from .lower_bounds import max_weighted_flow_lower_bound
from .milestones import compute_milestones, deadline_function
from .schedule import Schedule
from .tolerances import ABS_TOL

__all__ = [
    "FeasibilityProbe",
    "MaxWeightedFlowResult",
    "minimize_max_weighted_flow",
    "minimize_max_stretch",
    "minimize_max_weighted_flow_bisection",
]


@dataclass(frozen=True)
class MaxWeightedFlowResult:
    """Result of a maximum-weighted-flow optimisation.

    Attributes
    ----------
    objective:
        Optimal maximum weighted flow ``F*``.
    schedule:
        A schedule whose maximum weighted flow equals ``F*`` (up to LP
        tolerance).
    milestones:
        The milestone values enumerated by the search.
    search_range:
        The milestone range ``(low, high)`` in which the optimum was located
        (``high`` is ``None`` for the unbounded final range).
    feasibility_checks:
        Number of feasibility probes answered during the binary search
        (solved by an LP or served from the probe's caches).
    lp_variables, lp_constraints:
        Size of the final System (3)/(5) LP.
    preemptive:
        Whether the preemptive (non-divisible) model was used.
    backend:
        LP backend used.
    model_constructions:
        Number of allocation models built while optimising (parametric range
        structures, including the final range solve when it could not reuse
        a cached one).  Strictly smaller than ``feasibility_checks`` whenever
        the probe answered at least one probe from its caches.
    lp_solves:
        Number of LPs actually solved (probes that missed every cache, plus
        the final range solve when the optimum was not already pinned).
    """

    objective: float
    schedule: Schedule
    milestones: List[float]
    search_range: Tuple[float, Optional[float]]
    feasibility_checks: int
    lp_variables: int
    lp_constraints: int
    preemptive: bool
    backend: str
    model_constructions: int = 0
    lp_solves: int = 0


# --------------------------------------------------------------------------- #
# Reusable feasibility probe                                                  #
# --------------------------------------------------------------------------- #
@dataclass
class _RangeModel:
    """Parametric allocation model of one milestone range ``(low, high]``.

    ``basis`` (in-house revised backend) and ``highs_model`` (highspy
    backend) carry the persistent solver state of the previous solve of this
    range: every re-probe only moves the objective variable's bounds, which
    preserves dual feasibility, so the next solve warm-starts from the last
    basis instead of starting from scratch (ISSUE 9).
    """

    index: int
    low: float
    high: Optional[float]
    alloc: AllocationModel
    form: MatrixForm
    objective_column: int
    basis: Optional[BasisState] = None
    highs_model: Optional[object] = None


class FeasibilityProbe:
    """Reusable deadline-feasibility oracle over objective values.

    ``probe(F)`` answers "does a schedule with maximum weighted flow at most
    ``F`` exist?" exactly like
    :func:`repro.core.deadline.check_deadline_feasibility` on the deadlines
    ``d_j(F)``, but amortises the model-building work across probes (see the
    module docstring for the reuse strategy).  Instances are single-purpose:
    one probe per (instance, preemptive-flag, backend) triple.

    Attributes
    ----------
    probes:
        Total number of ``probe`` calls answered.
    lp_solves:
        Number of probes that required an actual LP solve.
    model_constructions:
        Number of parametric range models built (each lowered to matrix form
        exactly once, unless evicted from the size-capped LRU range cache and
        needed again — see ``max_cached_ranges``).
    """

    def __init__(
        self,
        instance: Instance,
        *,
        preemptive: bool = False,
        backend: str = "scipy",
        memo_size: int = 256,
        max_cached_ranges: int = 64,
    ) -> None:
        if instance.num_jobs == 0:
            raise InvalidInstanceError("cannot probe an empty instance")
        if max_cached_ranges < 1:
            raise ValueError("max_cached_ranges must be at least 1")
        self.instance = instance
        self.preemptive = preemptive
        self.backend = backend
        self._backend_kind = _normalise_backend(backend)
        self.milestones: List[float] = compute_milestones(instance.jobs)
        #: Range ``k`` spans ``(boundaries[k], boundaries[k + 1]]`` (the last
        #: range is unbounded above).
        self._boundaries: List[float] = [0.0] + self.milestones
        #: LRU cache of parametric range models, capped at
        #: ``max_cached_ranges`` so that campaign-scale sweeps holding many
        #: probes alive stay in bounded memory (an evicted range is simply
        #: rebuilt — and counted — if a later probe needs it again).
        self._ranges: "OrderedDict[int, _RangeModel]" = OrderedDict()
        self._max_cached_ranges = max_cached_ranges
        self._memo: "OrderedDict[float, bool]" = OrderedDict()
        self._memo_size = memo_size
        # Monotone knowledge accumulated from parametric solves:
        #   every F >= _feasible_min is feasible,
        #   every F <= _infeasible_max is infeasible,
        #   every F < _strict_below is infeasible (tightened once F* is pinned).
        # Seeded with the instance's analytic bounds: the trivial sequential
        # schedule achieves its bound in both models (so it is feasible), and
        # the per-job fluid bound certifies infeasibility below it.
        self._feasible_min = instance.trivial_upper_bound_flow()
        self._infeasible_max = 0.0
        self._strict_below = max_weighted_flow_lower_bound(instance)
        self._pinned: Optional[Tuple[_RangeModel, LPSolution, float]] = None
        self.probes = 0
        self.lp_solves = 0
        self.model_constructions = 0

    # -- public API ---------------------------------------------------------
    def __call__(self, objective: float) -> bool:
        return self.probe(objective)

    def probe(self, objective: float) -> bool:
        """Return ``True`` when max weighted flow ``objective`` is achievable."""
        self.probes += 1
        cached = self._lookup(objective)
        if cached is not None:
            return cached
        return self._probe_lp(objective)

    def pinned_optimum(self) -> Optional[Tuple[float, AllocationModel, LPSolution]]:
        """Return ``(F*, range model, solution)`` once the optimum is exact.

        The optimum is *pinned* when a parametric range solve returned a
        minimum strictly inside its milestone range — that minimum is the
        global optimum and the recorded solution is an optimal allocation,
        so callers can skip the final System (3)/(5) solve entirely.
        Returns ``None`` while the optimum has not been located yet.
        """
        if self._pinned is None:
            return None
        range_model, solution, threshold = self._pinned
        return threshold, range_model.alloc, solution

    def solve_range(self, low: float, high: Optional[float]) -> Tuple[float, AllocationModel, LPSolution]:
        """Minimise ``F`` over the milestone range ``(low, high]`` (System (3)/(5)).

        This is the final step of the milestone search: ``(low, high)`` must
        be a milestone range boundary pair as returned in
        :attr:`MaxWeightedFlowResult.search_range`.  The range structure is
        taken from (or added to) the probe's cache, and the located optimum
        is pinned so that subsequent probes are LP-free.

        Raises
        ------
        InfeasibleProblemError
            When the range LP is infeasible (cannot happen for a range whose
            upper boundary passed a feasibility probe).
        """
        if high is not None:
            k = bisect_left(self.milestones, high)
        else:
            k = len(self.milestones)
        range_model = self._ranges.get(k)
        if range_model is None:
            range_model = self._build_range(k)
        else:
            self._ranges.move_to_end(k)
        bounds = range_model.form.bounds.copy()
        bounds[range_model.objective_column] = (
            low,
            high if high is not None else np.inf,
        )
        solution = self._solve_form(range_model.form.with_bounds(bounds), range_model)
        self.lp_solves += 1
        if not solution.is_optimal:
            if solution.is_infeasible:
                raise InfeasibleProblemError(
                    f"milestone range ({low}, {high}] is infeasible"
                )
            raise SolverError(
                f"range solve on ({low}, {high}] failed: "
                f"{solution.message or solution.status}"
            )
        threshold = solution.values.get(range_model.objective_column, low)
        self._feasible_min = min(self._feasible_min, threshold)
        if threshold > low + ABS_TOL:
            self._strict_below = max(self._strict_below, threshold)
        self._pinned = (range_model, solution, threshold)
        return threshold, range_model.alloc, solution

    # -- cache lookups ------------------------------------------------------
    def _lookup(self, objective: float) -> Optional[bool]:
        if objective <= 0.0:
            # Positive work cannot complete by the release date itself.
            return False
        if objective in self._memo:
            self._memo.move_to_end(objective)
            return self._memo[objective]
        if objective >= self._feasible_min:
            return True
        if objective < self._strict_below:
            return False
        if objective <= self._infeasible_max:
            return False
        return None

    def _remember(self, objective: float, feasible: bool) -> None:
        self._memo[objective] = feasible
        self._memo.move_to_end(objective)
        while len(self._memo) > self._memo_size:
            self._memo.popitem(last=False)

    # -- LP machinery -------------------------------------------------------
    def _probe_lp(self, objective: float) -> bool:
        range_model = self._range_for(objective)
        bounds = range_model.form.bounds.copy()
        bounds[range_model.objective_column] = (range_model.low, objective)
        solution = self._solve_form(range_model.form.with_bounds(bounds), range_model)
        self.lp_solves += 1

        if solution.is_optimal:
            threshold = solution.values.get(range_model.objective_column, objective)
            self._feasible_min = min(self._feasible_min, threshold)
            if threshold > range_model.low + ABS_TOL:
                # The minimum lies strictly inside the range: by monotonicity
                # it is the global optimum F*, and everything below it is
                # infeasible.
                self._strict_below = max(self._strict_below, threshold)
                self._pinned = (range_model, solution, threshold)
            self._remember(objective, True)
            return True
        if solution.is_infeasible:
            # No feasible F at or below the probed value exists in this range;
            # by monotonicity none exists globally either.
            self._infeasible_max = max(self._infeasible_max, objective)
            self._remember(objective, False)
            return False
        raise SolverError(
            f"feasibility probe at F={objective!r} failed: "
            f"{solution.message or solution.status}"
        )

    def _range_for(self, objective: float) -> _RangeModel:
        k = bisect_left(self.milestones, objective)
        candidates = [k]
        if k < len(self.milestones) and objective == self.milestones[k]:
            # The probed value is the shared boundary of ranges k and k + 1;
            # either structure is valid there, so prefer one already built.
            candidates.append(k + 1)
        for index in candidates:
            if index in self._ranges:
                self._ranges.move_to_end(index)
                return self._ranges[index]
        return self._build_range(candidates[0])

    def _build_range(self, k: int) -> _RangeModel:
        low = self._boundaries[k]
        high = self._boundaries[k + 1] if k + 1 < len(self._boundaries) else None
        sample = _range_sample(low, high)
        deadlines = [deadline_function(job) for job in self.instance.jobs]
        epochal = deadlines + [Affine.const(job.release_date) for job in self.instance.jobs]
        intervals = build_affine_intervals(epochal, sample)
        alloc = build_allocation_model(
            self.instance,
            intervals,
            deadlines=deadlines,
            objective_bounds=(low, high),
            sample_objective=sample,
            preemptive=self.preemptive,
            name=f"probe-range{k}" + ("-preemptive" if self.preemptive else ""),
        )
        # Every backend except the frozen dense tableau consumes CSR blocks.
        form = to_matrix_form(alloc.model, sparse=self._backend_kind != "tableau")
        self.model_constructions += 1
        range_model = _RangeModel(
            index=k,
            low=low,
            high=high,
            alloc=alloc,
            form=form,
            objective_column=alloc.objective_variable.index,
        )
        self._ranges[k] = range_model
        while len(self._ranges) > self._max_cached_ranges:
            self._ranges.popitem(last=False)
        return range_model

    @property
    def cached_range_count(self) -> int:
        """Number of parametric range models currently held in the LRU cache."""
        return len(self._ranges)

    def _solve_form(
        self, form: MatrixForm, range_model: Optional[_RangeModel] = None
    ) -> LPSolution:
        if self._backend_kind == "scipy":
            return _scipy_solve_form(form)
        if self._backend_kind == "tableau":
            return _tableau_solve_form(form)
        if self._backend_kind == "highspy":  # pragma: no cover - needs highspy
            from ..lp.highs_backend import HighsWarmModel

            if range_model is None:
                from ..lp.highs_backend import solve_matrix_form as _highs_solve

                return _highs_solve(form)
            if range_model.highs_model is None:
                range_model.highs_model = HighsWarmModel(form)
            else:
                range_model.highs_model.update_bounds(form.bounds)
            return range_model.highs_model.solve()
        # In-house revised simplex: warm-start from (and refresh) the range's
        # persistent basis.  The re-solve sequence is deterministic per
        # probe, so the warm-started vertices are reproducible run to run.
        result = solve_matrix_form_revised(
            form, warm_basis=range_model.basis if range_model is not None else None
        )
        if range_model is not None and result.basis is not None:
            range_model.basis = result.basis
        return result.solution


def _check_probe_matches(
    probe: FeasibilityProbe, instance: Instance, preemptive: bool, backend: str
) -> None:
    """Reject a caller-supplied probe built for different search parameters.

    A mismatched probe would silently answer probes for the wrong model (or
    the wrong instance altogether), so the documented precondition is
    enforced with a clear error instead.
    """
    if probe.instance is not instance:
        raise ValueError("the supplied FeasibilityProbe was built for a different instance")
    if probe.preemptive != preemptive:
        raise ValueError(
            f"the supplied FeasibilityProbe uses preemptive={probe.preemptive}, "
            f"but the search requested preemptive={preemptive}"
        )
    if _normalise_backend(probe.backend) != _normalise_backend(backend):
        raise ValueError(
            f"the supplied FeasibilityProbe uses backend {probe.backend!r}, "
            f"but the search requested {backend!r}"
        )


_BACKEND_KINDS = {
    "scipy-highs": "scipy",
    "simplex-revised": "revised",
    "simplex": "tableau",
    "highspy": "highspy",
}


def _normalise_backend(backend: str) -> str:
    """Resolve any accepted backend alias to the probe's dispatch kind."""
    return _BACKEND_KINDS[canonical_backend(backend)]


def _range_sample(low: float, high: Optional[float]) -> float:
    """An objective value strictly inside the milestone range ``(low, high)``."""
    if high is not None:
        sample = 0.5 * (low + high)
        if sample <= 0.0:
            sample = high * 0.5 if high > 0 else 1.0
        return sample
    return low + max(1.0, abs(low))


# --------------------------------------------------------------------------- #
# Milestone-exact algorithm (Theorem 2)                                        #
# --------------------------------------------------------------------------- #
def minimize_max_weighted_flow(
    instance: Instance,
    *,
    preemptive: bool = False,
    backend: str = "scipy",
    probe: Optional[FeasibilityProbe] = None,
) -> MaxWeightedFlowResult:
    """Compute the optimal maximum weighted flow and an optimal schedule.

    Parameters
    ----------
    instance:
        The scheduling instance.
    preemptive:
        ``False`` (default): divisible-load model (Section 4.3).
        ``True``: preemption allowed but no simultaneous execution of a job
        on two machines (Section 4.4).
    backend:
        LP backend (``"scipy"`` or ``"simplex"``).
    probe:
        Optional pre-warmed :class:`FeasibilityProbe` for ``instance`` (must
        match ``preemptive`` and ``backend``); pass the same probe to
        :func:`minimize_max_weighted_flow_bisection` to share cached range
        structures and memoised probe answers between the two searches.
    """
    if instance.num_jobs == 0:
        raise InvalidInstanceError("cannot optimise an empty instance")

    if probe is None:
        probe = FeasibilityProbe(instance, preemptive=preemptive, backend=backend)
    else:
        _check_probe_matches(probe, instance, preemptive, backend)
    probes_before = probe.probes
    solves_before = probe.lp_solves
    constructions_before = probe.model_constructions
    milestones = probe.milestones

    # Binary search for the leftmost feasible milestone. ---------------------
    search_low = 0.0
    search_high: Optional[float] = None

    if milestones:
        # Check the last milestone first: if even it is infeasible the
        # optimum lies in the unbounded final range.
        if not probe.probe(milestones[-1]):
            search_low = milestones[-1]
            search_high = None
        else:
            lo, hi = 0, len(milestones) - 1  # invariant: milestones[hi] feasible
            while lo < hi:
                mid = (lo + hi) // 2
                if probe.probe(milestones[mid]):
                    hi = mid
                else:
                    lo = mid + 1
            search_high = milestones[lo]
            search_low = milestones[lo - 1] if lo > 0 else 0.0
    # With no milestones at all the order of epochal times never changes and
    # the single range [0, +inf) is searched directly.

    feasibility_checks = probe.probes - probes_before

    # Final solve on the located range. --------------------------------------
    # When a parametric probe already located the exact optimum (and an
    # optimal allocation) inside the search range, reuse it; otherwise solve
    # System (3)/(5) through the probe's range cache, which pins the optimum
    # for any later search sharing this probe.
    reused = _pinned_in_range(probe, search_low, search_high)
    if reused is None:
        reused = probe.solve_range(search_low, search_high)
    objective, alloc, solution = reused
    if preemptive:
        schedule = preemptive_schedule_from_solution(
            alloc, solution, objective_value=objective
        )
    else:
        schedule = divisible_schedule_from_solution(
            alloc, solution, objective_value=objective
        )

    return MaxWeightedFlowResult(
        objective=objective,
        schedule=schedule,
        milestones=milestones,
        search_range=(search_low, search_high),
        feasibility_checks=feasibility_checks,
        lp_variables=alloc.model.num_variables,
        lp_constraints=alloc.model.num_constraints,
        preemptive=preemptive,
        backend=solution.backend,
        model_constructions=probe.model_constructions - constructions_before,
        lp_solves=probe.lp_solves - solves_before,
    )


def _pinned_in_range(
    probe: FeasibilityProbe, low: float, high: Optional[float]
) -> Optional[Tuple[float, AllocationModel, LPSolution]]:
    """Return the probe's pinned optimum when it lies in ``(low, high]``."""
    pinned = probe.pinned_optimum()
    if pinned is None:
        return None
    threshold, _alloc, _solution = pinned
    if threshold < low - ABS_TOL:
        return None
    if high is not None and threshold > high + ABS_TOL:
        return None
    return pinned


# --------------------------------------------------------------------------- #
# Convenience wrappers                                                         #
# --------------------------------------------------------------------------- #
def minimize_max_stretch(
    instance: Instance,
    *,
    preemptive: bool = False,
    backend: str = "scipy",
) -> MaxWeightedFlowResult:
    """Minimise the maximum stretch (flow divided by processing demand).

    Max-stretch is the special case of max weighted flow with weights
    ``w_j = 1 / W_j`` (see :meth:`repro.core.job.Job.stretch_weight`).  Jobs
    without an explicit size use their fastest single-machine processing time
    as the normalisation, which matches the definition used by
    :meth:`repro.core.schedule.Schedule.stretch`.
    """
    new_jobs = []
    for j, job in enumerate(instance.jobs):
        if job.size is not None:
            weight = job.stretch_weight()
        else:
            weight = 1.0 / instance.min_cost(j)
        new_jobs.append(job.with_weight(weight))
    stretch_instance = Instance(
        jobs=tuple(new_jobs), machines=instance.machines, costs=instance.costs.copy()
    )
    return minimize_max_weighted_flow(
        stretch_instance, preemptive=preemptive, backend=backend
    )


def minimize_max_weighted_flow_bisection(
    instance: Instance,
    *,
    precision: float = 1e-4,
    preemptive: bool = False,
    backend: str = "scipy",
    max_iterations: int = 200,
    probe: Optional[FeasibilityProbe] = None,
) -> Tuple[float, int]:
    """Naive ε-precision bisection on the objective value (the rejected approach).

    The paper points out that a plain binary search on the objective value
    cannot reach the exact optimum in bounded time because the optimum is an
    arbitrary rational.  This routine implements that naive search anyway so
    the milestone algorithm can be compared against it (ablation bench E6):
    it returns an objective value within ``precision`` of the optimum and the
    number of feasibility probes it needed.  Probes are answered by a
    :class:`FeasibilityProbe`, so once the bisection bracket falls inside a
    single milestone range the remaining iterations are LP-free; pass the
    ``probe`` of a previous search over the same instance to share its caches.

    Returns
    -------
    (objective_upper_bound, feasibility_checks)
    """
    if probe is None:
        probe = FeasibilityProbe(instance, preemptive=preemptive, backend=backend)
    else:
        _check_probe_matches(probe, instance, preemptive, backend)
    probes_before = probe.probes

    low = 0.0
    high = max(instance.trivial_upper_bound_flow(), precision)
    # Make sure the upper bound really is feasible (it is by construction,
    # but the explicit check keeps the invariant obvious).
    while not probe.probe(high) and probe.probes - probes_before < max_iterations:
        high *= 2.0

    iterations = 0
    while high - low > precision and iterations < max_iterations:
        mid = 0.5 * (low + high)
        if probe.probe(mid):
            high = mid
        else:
            low = mid
        iterations += 1
    return high, probe.probes - probes_before
