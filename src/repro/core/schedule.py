"""Schedule representation, metrics and validation.

Every solver and every heuristic in this library returns a :class:`Schedule`:
a list of :class:`SchedulePiece` objects, each stating that a machine
processed a fraction of a job over a time span.  The class computes the
paper's metrics (makespan, flow, weighted flow, stretch) and — crucially for
the test-suite — re-validates every model constraint from scratch:

* no piece starts before its job's release date,
* a machine never runs two pieces at the same time,
* every job is processed to completion (fractions sum to one),
* processed fractions are consistent with the piece durations and ``c_{i,j}``,
* in *preemptive* (non-divisible) mode a job never runs on two machines at
  the same instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import InvalidScheduleError
from .instance import Instance
from .tolerances import FEASIBILITY_TOL

__all__ = ["SchedulePiece", "Schedule", "ScheduleMetrics"]


@dataclass(frozen=True)
class SchedulePiece:
    """One contiguous execution of (a fraction of) a job on a machine.

    Attributes
    ----------
    job_index, machine_index:
        Indices into the instance's job and machine lists.
    start, end:
        Execution window in seconds; ``end >= start``.
    fraction:
        Fraction of the job's total work performed during the window.  For a
        well-formed piece ``end - start == fraction * c[machine, job]``.
    """

    job_index: int
    machine_index: int
    start: float
    end: float
    fraction: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise InvalidScheduleError(
                f"piece for job #{self.job_index} on machine #{self.machine_index} "
                f"has end {self.end} before start {self.start}"
            )
        if self.fraction < 0:
            raise InvalidScheduleError(
                f"piece for job #{self.job_index} has negative fraction {self.fraction}"
            )

    @property
    def duration(self) -> float:
        """Length of the execution window."""
        return self.end - self.start


@dataclass(frozen=True)
class ScheduleMetrics:
    """Aggregate metrics of a schedule, as defined in Section 3 of the paper."""

    makespan: float
    max_flow: float
    total_flow: float
    mean_flow: float
    max_weighted_flow: float
    max_stretch: Optional[float]
    completion_times: Dict[int, float]

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        stretch = "n/a" if self.max_stretch is None else f"{self.max_stretch:.4g}"
        return (
            f"makespan={self.makespan:.4g}  max_flow={self.max_flow:.4g}  "
            f"mean_flow={self.mean_flow:.4g}  max_weighted_flow={self.max_weighted_flow:.4g}  "
            f"max_stretch={stretch}"
        )


@dataclass
class Schedule:
    """A complete schedule for an :class:`~repro.core.instance.Instance`.

    Attributes
    ----------
    instance:
        The instance this schedule refers to.
    pieces:
        The execution pieces; order is irrelevant.
    divisible:
        ``True`` when the schedule is allowed to run a job on several
        machines simultaneously (the divisible-load model of Section 4.3);
        ``False`` for the preemptive-only model of Section 4.4.
    """

    instance: Instance
    pieces: List[SchedulePiece] = field(default_factory=list)
    divisible: bool = True

    # ------------------------------------------------------------------ #
    # Construction helpers                                                #
    # ------------------------------------------------------------------ #
    def add_piece(
        self,
        job_index: int,
        machine_index: int,
        start: float,
        end: float,
        fraction: Optional[float] = None,
    ) -> SchedulePiece:
        """Append a piece; the fraction defaults to ``duration / c[i, j]``."""
        if fraction is None:
            cost = self.instance.cost(machine_index, job_index)
            if not math.isfinite(cost):
                raise InvalidScheduleError(
                    f"cannot infer the fraction of job #{job_index} on machine "
                    f"#{machine_index}: the processing time is infinite"
                )
            fraction = (end - start) / cost
        piece = SchedulePiece(job_index, machine_index, start, end, fraction)
        self.pieces.append(piece)
        return piece

    def merge(self, other: "Schedule") -> "Schedule":
        """Return a new schedule containing the pieces of both schedules."""
        if other.instance is not self.instance:
            raise InvalidScheduleError("cannot merge schedules of different instances")
        return Schedule(
            instance=self.instance,
            pieces=list(self.pieces) + list(other.pieces),
            divisible=self.divisible and other.divisible,
        )

    def compact(self, tol: float = 1e-12) -> "Schedule":
        """Return a copy without zero-duration, zero-fraction pieces."""
        kept = [
            piece
            for piece in self.pieces
            if piece.duration > tol or piece.fraction > tol
        ]
        return Schedule(instance=self.instance, pieces=kept, divisible=self.divisible)

    # ------------------------------------------------------------------ #
    # Metrics                                                             #
    # ------------------------------------------------------------------ #
    def completion_time(self, job_index: int) -> float:
        """Completion time ``C_j``: the end of the job's last piece."""
        ends = [piece.end for piece in self.pieces if piece.job_index == job_index]
        if not ends:
            raise InvalidScheduleError(f"job #{job_index} never appears in the schedule")
        return max(ends)

    def completion_times(self) -> Dict[int, float]:
        """Completion times of every job appearing in the schedule."""
        completions: Dict[int, float] = {}
        for piece in self.pieces:
            current = completions.get(piece.job_index, float("-inf"))
            if piece.end > current:
                completions[piece.job_index] = piece.end
        return completions

    def flow(self, job_index: int) -> float:
        """Flow ``F_j = C_j - r_j`` of job ``job_index``."""
        return self.completion_time(job_index) - self.instance.jobs[job_index].release_date

    def weighted_flow(self, job_index: int) -> float:
        """Weighted flow ``w_j (C_j - r_j)`` of job ``job_index``."""
        return self.instance.jobs[job_index].weight * self.flow(job_index)

    def stretch(self, job_index: int) -> float:
        """Stretch of job ``job_index``: flow divided by its fastest processing time.

        The normalisation uses the fastest single-machine time
        ``min_i c[i, j]``, i.e. the time the job would take with a dedicated
        fastest machine — the customary definition for unrelated machines.
        """
        return self.flow(job_index) / self.instance.min_cost(job_index)

    @property
    def makespan(self) -> float:
        """``max_j C_j`` (0.0 for an empty schedule)."""
        return max((piece.end for piece in self.pieces), default=0.0)

    @property
    def max_flow(self) -> float:
        """``max_j F_j``."""
        completions = self.completion_times()
        return max(
            (c - self.instance.jobs[j].release_date for j, c in completions.items()),
            default=0.0,
        )

    @property
    def max_weighted_flow(self) -> float:
        """``max_j w_j F_j`` — the paper's objective."""
        completions = self.completion_times()
        return max(
            (
                self.instance.jobs[j].weight * (c - self.instance.jobs[j].release_date)
                for j, c in completions.items()
            ),
            default=0.0,
        )

    @property
    def total_flow(self) -> float:
        """``sum_j F_j``."""
        completions = self.completion_times()
        return sum(c - self.instance.jobs[j].release_date for j, c in completions.items())

    @property
    def max_stretch(self) -> float:
        """``max_j F_j / min_i c[i, j]``."""
        completions = self.completion_times()
        return max(
            (
                (c - self.instance.jobs[j].release_date) / self.instance.min_cost(j)
                for j, c in completions.items()
            ),
            default=0.0,
        )

    def metrics(self) -> ScheduleMetrics:
        """Return all aggregate metrics in one object."""
        completions = self.completion_times()
        n = max(len(completions), 1)
        return ScheduleMetrics(
            makespan=self.makespan,
            max_flow=self.max_flow,
            total_flow=self.total_flow,
            mean_flow=self.total_flow / n,
            max_weighted_flow=self.max_weighted_flow,
            max_stretch=self.max_stretch if completions else None,
            completion_times=completions,
        )

    def machine_busy_time(self, machine_index: int) -> float:
        """Total busy time of machine ``machine_index``."""
        return sum(piece.duration for piece in self.pieces if piece.machine_index == machine_index)

    def pieces_of_job(self, job_index: int) -> List[SchedulePiece]:
        """Return the pieces of job ``job_index`` sorted by start time."""
        return sorted(
            (piece for piece in self.pieces if piece.job_index == job_index),
            key=lambda piece: (piece.start, piece.end),
        )

    def pieces_on_machine(self, machine_index: int) -> List[SchedulePiece]:
        """Return the pieces on machine ``machine_index`` sorted by start time."""
        return sorted(
            (piece for piece in self.pieces if piece.machine_index == machine_index),
            key=lambda piece: (piece.start, piece.end),
        )

    # ------------------------------------------------------------------ #
    # Validation                                                          #
    # ------------------------------------------------------------------ #
    def validate(self, tol: float = FEASIBILITY_TOL, require_completion: bool = True) -> None:
        """Check every model constraint; raise :class:`InvalidScheduleError` on failure.

        Parameters
        ----------
        tol:
            Numerical tolerance for all comparisons.
        require_completion:
            When ``True`` (the default) every job of the instance must be
            fully processed.  Heuristic snapshots of partially executed
            workloads may pass ``False``.
        """
        errors = self.validation_errors(tol=tol, require_completion=require_completion)
        if errors:
            raise InvalidScheduleError("; ".join(errors))

    def validation_errors(
        self, tol: float = FEASIBILITY_TOL, require_completion: bool = True
    ) -> List[str]:
        """Return the list of violated constraints (empty when the schedule is valid)."""
        errors: List[str] = []
        instance = self.instance

        fractions: Dict[int, float] = {j: 0.0 for j in range(instance.num_jobs)}

        for piece in self.pieces:
            if not (0 <= piece.job_index < instance.num_jobs):
                errors.append(f"piece references unknown job #{piece.job_index}")
                continue
            if not (0 <= piece.machine_index < instance.num_machines):
                errors.append(f"piece references unknown machine #{piece.machine_index}")
                continue
            job = instance.jobs[piece.job_index]
            cost = instance.cost(piece.machine_index, piece.job_index)

            if piece.start < job.release_date - tol:
                errors.append(
                    f"job {job.name} starts at {piece.start:.6g} before its release date "
                    f"{job.release_date:.6g}"
                )
            if not math.isfinite(cost):
                if piece.fraction > tol or piece.duration > tol:
                    errors.append(
                        f"job {job.name} runs on machine "
                        f"{instance.machines[piece.machine_index].name} which cannot process it"
                    )
            else:
                expected = piece.fraction * cost
                if abs(expected - piece.duration) > tol * max(1.0, cost):
                    errors.append(
                        f"job {job.name} piece on machine "
                        f"{instance.machines[piece.machine_index].name}: duration "
                        f"{piece.duration:.6g} does not match fraction*cost {expected:.6g}"
                    )
            fractions[piece.job_index] = fractions.get(piece.job_index, 0.0) + piece.fraction

        # Completion.
        if require_completion:
            for j, total in fractions.items():
                if abs(total - 1.0) > max(tol, 1e-5):
                    errors.append(
                        f"job {instance.jobs[j].name} is processed to fraction {total:.6g} "
                        "instead of 1"
                    )

        # Machine capacity: no two pieces overlap on the same machine.
        for i in range(instance.num_machines):
            timeline = self.pieces_on_machine(i)
            for before, after in zip(timeline, timeline[1:]):
                if after.start < before.end - tol:
                    errors.append(
                        f"machine {instance.machines[i].name} runs two pieces simultaneously "
                        f"([{before.start:.6g}, {before.end:.6g}) and "
                        f"[{after.start:.6g}, {after.end:.6g}))"
                    )

        # Preemptive (non-divisible) mode: a job never runs on two machines at once.
        if not self.divisible:
            for j in range(instance.num_jobs):
                timeline = self.pieces_of_job(j)
                for before, after in zip(timeline, timeline[1:]):
                    if after.start < before.end - tol:
                        errors.append(
                            f"job {instance.jobs[j].name} runs on two machines simultaneously "
                            f"([{before.start:.6g}, {before.end:.6g}) and "
                            f"[{after.start:.6g}, {after.end:.6g}))"
                        )

        return errors

    # ------------------------------------------------------------------ #
    # Presentation                                                        #
    # ------------------------------------------------------------------ #
    def as_table(self, max_rows: int = 50) -> str:
        """Return an ASCII table of the pieces (for examples and debugging)."""
        header = f"{'job':<12}{'machine':<12}{'start':>12}{'end':>12}{'fraction':>12}"
        lines = [header, "-" * len(header)]
        ordered = sorted(self.pieces, key=lambda piece: (piece.start, piece.machine_index))
        for piece in ordered[:max_rows]:
            job = self.instance.jobs[piece.job_index]
            machine = self.instance.machines[piece.machine_index]
            lines.append(
                f"{job.name:<12}{machine.name:<12}{piece.start:>12.4f}{piece.end:>12.4f}"
                f"{piece.fraction:>12.4f}"
            )
        if len(ordered) > max_rows:
            lines.append(f"... ({len(ordered) - max_rows} more pieces)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.pieces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule({len(self.pieces)} pieces, divisible={self.divisible}, "
            f"makespan={self.makespan:.4g})"
        )
