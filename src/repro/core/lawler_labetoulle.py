"""Lawler–Labetoulle preemptive-schedule reconstruction (Section 4.4).

Given a non-negative matrix ``T`` where ``T[i, j]`` is the time machine ``i``
must spend on job ``j`` within a window of length ``C``, with

* every row sum at most ``C`` (no machine is overloaded), and
* every column sum at most ``C`` (no job needs more than the window),

Lawler & Labetoulle (1978), following Gonzalez & Sahni (1976), show that a
preemptive schedule of length ``C`` always exists in which no machine runs two
jobs simultaneously and no job runs on two machines simultaneously, and that
it can be built in polynomial time.

The construction implemented here is the classical padding + Birkhoff
decomposition:

1. The ``m x n`` matrix is embedded in an ``(m + n) x (m + n)`` matrix whose
   row and column sums are all exactly ``C``; the padding entries represent
   idle time (machine *i* idling is encoded as "machine *i* processes dummy
   job *m + i*", and symmetrically for jobs).
2. While the padded matrix is non-zero, a perfect matching on its support is
   extracted (it exists by Hall's theorem because all row/column sums are
   equal), the minimum matched entry ``delta`` is subtracted from every
   matched entry, and the real (non-dummy) matched pairs are scheduled for
   the next ``delta`` seconds.

The sum of the extracted ``delta`` values is exactly ``C``, every real entry
is fully consumed, and by construction each step assigns at most one job per
machine and one machine per job — exactly the preemptive feasibility
requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import InvalidScheduleError
from .matching import hopcroft_karp, is_perfect_matching

__all__ = ["DecompositionStep", "decompose_matrix", "build_preemptive_pieces"]

#: Entries smaller than this fraction of the window length are treated as zero.
_RELATIVE_DUST = 1e-12


@dataclass(frozen=True)
class DecompositionStep:
    """One slice of the Birkhoff-style decomposition.

    Attributes
    ----------
    duration:
        Length of the slice in seconds.
    assignment:
        Mapping ``machine index -> job index`` describing which (real) job
        each machine processes during the slice.  Machines that are idle in
        the slice are absent.
    """

    duration: float
    assignment: Dict[int, int]


def _pad_matrix(times: np.ndarray, capacity: float) -> np.ndarray:
    """Embed ``times`` into a square matrix with all row/column sums equal to ``capacity``.

    Layout of the ``(m + n) x (m + n)`` padded matrix::

        [  T        D_machine ]
        [  D_job    B         ]

    where ``D_machine`` is diagonal with the machines' idle time,
    ``D_job`` is diagonal with the jobs' slack, and ``B`` is a transportation
    matrix balancing the bottom-right block (built with the north-west corner
    rule).
    """
    m, n = times.shape
    row_sums = times.sum(axis=1)
    col_sums = times.sum(axis=0)

    tol = max(1.0, capacity) * 1e-9
    if np.any(row_sums > capacity + tol):
        raise InvalidScheduleError(
            "Lawler-Labetoulle: a machine is loaded beyond the window length "
            f"({row_sums.max():.6g} > {capacity:.6g})"
        )
    if np.any(col_sums > capacity + tol):
        raise InvalidScheduleError(
            "Lawler-Labetoulle: a job needs more than the window length "
            f"({col_sums.max():.6g} > {capacity:.6g})"
        )

    size = m + n
    padded = np.zeros((size, size))
    padded[:m, :n] = times
    machine_idle = np.clip(capacity - row_sums, 0.0, None)
    job_slack = np.clip(capacity - col_sums, 0.0, None)
    padded[:m, n:] = np.diag(machine_idle)
    padded[m:, :n] = np.diag(job_slack)

    # Bottom-right block: row j (job j's dummy row) must sum to col_sums[j],
    # column i (machine i's dummy column) must sum to row_sums[i].  Their
    # totals agree (both equal the total amount of real work), so a
    # transportation matrix exists; the north-west corner rule builds one.
    remaining_rows = col_sums.copy()
    remaining_cols = row_sums.copy()
    block = np.zeros((n, m))
    r, c = 0, 0
    while r < n and c < m:
        amount = min(remaining_rows[r], remaining_cols[c])
        block[r, c] = amount
        remaining_rows[r] -= amount
        remaining_cols[c] -= amount
        if remaining_rows[r] <= tol:
            remaining_rows[r] = 0.0
            r += 1
        if c < m and remaining_cols[c] <= tol:
            remaining_cols[c] = 0.0
            c += 1
    padded[m:, n:] = block
    return padded


def decompose_matrix(
    times: np.ndarray, capacity: float, max_steps: int | None = None
) -> List[DecompositionStep]:
    """Decompose a feasible time matrix into sequential one-to-one assignments.

    Parameters
    ----------
    times:
        ``(m, n)`` non-negative matrix of processing times within the window.
    capacity:
        Window length ``C``; every row and column sum must be at most ``C``.
    max_steps:
        Safety cap on the number of decomposition steps; defaults to
        ``(m + n)**2 + m + n``, which the theory guarantees is enough.

    Returns
    -------
    list of DecompositionStep
        Steps whose durations sum to at most ``capacity`` (up to rounding)
        and that jointly consume every entry of ``times``.
    """
    times = np.asarray(times, dtype=float)
    if times.ndim != 2:
        raise InvalidScheduleError("Lawler-Labetoulle expects a two-dimensional matrix")
    if (times < 0).any():
        raise InvalidScheduleError("Lawler-Labetoulle: negative processing times")
    m, n = times.shape
    if capacity <= 0:
        if times.sum() > 0:
            raise InvalidScheduleError("Lawler-Labetoulle: positive work in a zero-length window")
        return []

    dust = capacity * _RELATIVE_DUST
    work = times.copy()
    work[work < dust] = 0.0
    if work.sum() == 0.0:
        return []

    padded = _pad_matrix(work, capacity)
    padded[padded < dust] = 0.0
    size = m + n

    if max_steps is None:
        max_steps = size * size + size

    steps: List[DecompositionStep] = []
    for _ in range(max_steps):
        support = padded > dust
        if not support.any():
            break

        adjacency = {
            row: list(np.flatnonzero(support[row]))
            for row in range(size)
            if support[row].any()
        }
        matching = hopcroft_karp(adjacency)

        if not is_perfect_matching(adjacency, matching):
            # Numerical drift can (rarely) starve a row whose remaining sum is
            # essentially zero.  Clean the matrix and retry once; if the
            # matching is still not perfect, fall back to the partial matching
            # (rows with vanishing remaining work lose only dust).
            padded[padded < 10 * dust] = 0.0
            support = padded > dust
            adjacency = {
                row: list(np.flatnonzero(support[row]))
                for row in range(size)
                if support[row].any()
            }
            if not adjacency:
                break
            matching = hopcroft_karp(adjacency)

        if not matching:
            break

        delta = min(padded[row, col] for row, col in matching.items())
        assignment = {
            row: int(col)
            for row, col in matching.items()
            if row < m and col < n and padded[row, col] > dust
        }
        for row, col in matching.items():
            padded[row, col] = max(0.0, padded[row, col] - delta)
        if delta > dust:
            steps.append(DecompositionStep(duration=float(delta), assignment=assignment))
    else:
        raise InvalidScheduleError(
            "Lawler-Labetoulle decomposition did not converge within the step budget"
        )

    total = sum(step.duration for step in steps)
    if total > capacity * (1.0 + 1e-6) + 1e-9:
        raise InvalidScheduleError(
            f"Lawler-Labetoulle decomposition exceeds the window: {total:.9g} > {capacity:.9g}"
        )
    return steps


def build_preemptive_pieces(
    times: np.ndarray,
    capacity: float,
    window_start: float,
) -> List[Tuple[int, int, float, float]]:
    """Turn a feasible time matrix into concrete execution pieces.

    Parameters
    ----------
    times:
        ``(m, n)`` matrix of processing times within the window.
    capacity:
        Window length.
    window_start:
        Absolute start time of the window; pieces are offset by this value.

    Returns
    -------
    list of (machine_index, job_index, start, end)
        Pieces such that no machine and no job is used twice at the same
        instant and machine ``i`` spends exactly ``times[i, j]`` seconds on
        job ``j`` (up to numerical dust).
    """
    steps = decompose_matrix(times, capacity)
    pieces: List[Tuple[int, int, float, float]] = []
    cursor = window_start
    for step in steps:
        for machine_index, job_index in step.assignment.items():
            pieces.append((machine_index, job_index, cursor, cursor + step.duration))
        cursor += step.duration
    return pieces
