"""Job model: divisible requests with release dates, weights and data dependences.

A *job* in the paper is one user request: compare a set of motifs against one
(or more) protein databanks.  The scheduling theory only needs three numbers
per job — the release date ``r_j``, the priority weight ``w_j`` and the
processing time ``c_{i,j}`` on every machine — plus, for the
uniform-machines-with-restricted-availabilities special case, the job size
``W_j`` (in Mflop) and the set of databanks it depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..exceptions import InvalidInstanceError

__all__ = ["Job", "sort_by_release_date", "validate_jobs"]


@dataclass(frozen=True)
class Job:
    """A divisible request.

    Attributes
    ----------
    name:
        Unique identifier of the job (e.g. ``"J3"`` or a request UUID).
    release_date:
        Arrival time ``r_j`` in seconds; the job cannot be processed earlier.
    weight:
        Priority ``w_j`` used by the maximum *weighted* flow objective.  Use
        ``1.0`` for plain max-flow; use ``1 / size`` for max-stretch (see
        :meth:`stretch_weight`).
    size:
        Amount of work ``W_j`` in Mflop.  Only needed by the
        uniform-machines model and the stretch objective; purely unrelated
        instances may leave it ``None``.
    databanks:
        Names of the databanks the job needs.  A machine can process the job
        only if it hosts *all* of them.  Empty means "no data dependence".
    """

    name: str
    release_date: float
    weight: float = 1.0
    size: Optional[float] = None
    databanks: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidInstanceError("job name must be a non-empty string")
        if not math.isfinite(self.release_date) or self.release_date < 0:
            raise InvalidInstanceError(
                f"job {self.name!r}: release date must be finite and >= 0, got {self.release_date!r}"
            )
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise InvalidInstanceError(
                f"job {self.name!r}: weight must be finite and > 0, got {self.weight!r}"
            )
        if self.size is not None and (not math.isfinite(self.size) or self.size <= 0):
            raise InvalidInstanceError(
                f"job {self.name!r}: size must be finite and > 0 when given, got {self.size!r}"
            )
        if not isinstance(self.databanks, frozenset):
            # Accept any iterable of strings at construction time for convenience.
            object.__setattr__(self, "databanks", frozenset(self.databanks))

    # ------------------------------------------------------------------ #
    def deadline_for_flow(self, flow_objective: float) -> float:
        """Return the deadline ``d_j(F) = r_j + F / w_j`` induced by objective ``F``.

        This is the key transformation of Section 4.3.1: a schedule has
        maximum weighted flow at most ``F`` iff every job meets this deadline.
        """
        if flow_objective < 0:
            raise ValueError(f"flow objective must be >= 0, got {flow_objective!r}")
        return self.release_date + flow_objective / self.weight

    def weighted_flow(self, completion_time: float) -> float:
        """Return ``w_j (C_j - r_j)`` for a given completion time."""
        return self.weight * (completion_time - self.release_date)

    def stretch_weight(self) -> float:
        """Return the weight that turns max weighted flow into max stretch.

        The stretch of a job is its flow divided by its processing demand, so
        the corresponding weight is ``1 / W_j``.  (The paper's prose says
        "weight equal to its size"; with the ``w_j (C_j - r_j)`` definition of
        weighted flow used throughout the paper the stretch objective is
        obtained with ``w_j = 1 / W_j``, which is what we implement.)
        """
        if self.size is None:
            raise InvalidInstanceError(
                f"job {self.name!r} has no size; cannot derive a stretch weight"
            )
        return 1.0 / self.size

    def with_release_date(self, release_date: float) -> "Job":
        """Return a copy of the job with a different release date."""
        return Job(
            name=self.name,
            release_date=release_date,
            weight=self.weight,
            size=self.size,
            databanks=self.databanks,
        )

    def with_weight(self, weight: float) -> "Job":
        """Return a copy of the job with a different weight."""
        return Job(
            name=self.name,
            release_date=self.release_date,
            weight=weight,
            size=self.size,
            databanks=self.databanks,
        )

    def with_size(self, size: float) -> "Job":
        """Return a copy of the job with a different size."""
        return Job(
            name=self.name,
            release_date=self.release_date,
            weight=self.weight,
            size=size,
            databanks=self.databanks,
        )


def sort_by_release_date(jobs: Iterable[Job]) -> List[Job]:
    """Return the jobs sorted by increasing release date (stable on ties).

    The paper assumes jobs are numbered by increasing release dates; the
    solvers call this helper so that callers do not have to pre-sort.
    """
    return sorted(jobs, key=lambda job: job.release_date)


def validate_jobs(jobs: Sequence[Job]) -> None:
    """Validate a job collection: non-empty, unique names.

    Raises
    ------
    InvalidInstanceError
        If the collection is empty or two jobs share a name.
    """
    if len(jobs) == 0:
        raise InvalidInstanceError("an instance needs at least one job")
    seen = set()
    for job in jobs:
        if job.name in seen:
            raise InvalidInstanceError(f"duplicate job name {job.name!r}")
        seen.add(job.name)
