"""Centralised numerical tolerances and float comparison helpers.

The algorithms of the paper are exact over the rationals, but our LP backends
work in floating point.  Every feasibility decision in the library goes
through the helpers of this module so that the tolerance policy is defined in
exactly one place.  The default tolerances are deliberately loose compared to
machine epsilon: LP solvers typically return solutions whose constraint
violations are of the order of ``1e-9`` on well-scaled problems, and the
milestone search of Section 4.3 only needs to distinguish objective values
that differ by a milestone gap, which is never that small for sensible
instances.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Tolerances",
    "DEFAULT_TOLERANCES",
    "ABS_TOL",
    "REL_TOL",
    "FEASIBILITY_TOL",
    "is_close",
    "is_zero",
    "leq",
    "geq",
    "lt",
    "gt",
    "clamp",
    "snap_nonnegative",
]

#: Default absolute tolerance used by the comparison helpers.
ABS_TOL: float = 1e-8

#: Default relative tolerance used by the comparison helpers.
REL_TOL: float = 1e-9

#: Tolerance used when checking LP constraint satisfaction and schedule
#: validity.  Slightly looser than :data:`ABS_TOL` because constraint residuals
#: accumulate rounding error from several floating-point operations.
FEASIBILITY_TOL: float = 1e-6


@dataclass(frozen=True)
class Tolerances:
    """A bundle of tolerances that can be threaded through the solvers.

    Attributes
    ----------
    abs_tol:
        Absolute tolerance for scalar comparisons.
    rel_tol:
        Relative tolerance for scalar comparisons.
    feasibility:
        Tolerance for constraint-violation checks (LP residuals, schedule
        validation).
    """

    abs_tol: float = ABS_TOL
    rel_tol: float = REL_TOL
    feasibility: float = FEASIBILITY_TOL

    def scaled(self, factor: float) -> "Tolerances":
        """Return a copy of the tolerances scaled by ``factor``.

        Useful when a caller knows its data spans several orders of magnitude
        (e.g. processing times in seconds mixed with release dates in hours).
        """
        if factor <= 0:
            raise ValueError(f"tolerance scaling factor must be positive, got {factor!r}")
        return Tolerances(
            abs_tol=self.abs_tol * factor,
            rel_tol=self.rel_tol,
            feasibility=self.feasibility * factor,
        )


#: Shared default instance used when callers do not supply their own.
DEFAULT_TOLERANCES = Tolerances()


def is_close(a: float, b: float, *, abs_tol: float = ABS_TOL, rel_tol: float = REL_TOL) -> bool:
    """Return ``True`` when ``a`` and ``b`` are equal up to tolerance.

    Combines an absolute and a relative criterion, mirroring
    :func:`math.isclose` but with library-wide defaults.
    """
    diff = abs(a - b)
    if diff <= abs_tol:
        return True
    return diff <= rel_tol * max(abs(a), abs(b))


def is_zero(x: float, *, abs_tol: float = ABS_TOL) -> bool:
    """Return ``True`` when ``x`` is zero up to the absolute tolerance."""
    return abs(x) <= abs_tol


def leq(a: float, b: float, *, tol: float = ABS_TOL) -> bool:
    """Tolerant ``a <= b``: true when ``a`` exceeds ``b`` by at most ``tol``."""
    return a <= b + tol


def geq(a: float, b: float, *, tol: float = ABS_TOL) -> bool:
    """Tolerant ``a >= b``: true when ``a`` is below ``b`` by at most ``tol``."""
    return a >= b - tol


def lt(a: float, b: float, *, tol: float = ABS_TOL) -> bool:
    """Strict tolerant ``a < b``: true when ``a`` is below ``b`` by more than ``tol``."""
    return a < b - tol


def gt(a: float, b: float, *, tol: float = ABS_TOL) -> bool:
    """Strict tolerant ``a > b``: true when ``a`` exceeds ``b`` by more than ``tol``."""
    return a > b + tol


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into the closed interval ``[lo, hi]``.

    Raises
    ------
    ValueError
        If ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"empty clamp interval [{lo}, {hi}]")
    return lo if x < lo else hi if x > hi else x


def snap_nonnegative(x: float, *, tol: float = ABS_TOL) -> float:
    """Snap a slightly-negative float (an LP rounding artefact) to zero.

    Values below ``-tol`` are returned unchanged — it is the caller's job to
    decide whether a genuinely negative value is an error.
    """
    if -tol <= x < 0.0:
        return 0.0
    return x
