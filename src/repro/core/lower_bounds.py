"""Analytical lower bounds for the paper's objectives.

The LP solvers return exact optima, but cheap closed-form lower bounds are
still valuable: they certify solver outputs in tests, provide starting points
for objective-value searches, and give the on-line policies a yardstick that
does not require solving any LP.

All bounds are valid for the *divisible* model (and therefore also for the
preemptive and non-divisible models, which are more constrained):

* **fluid job bound** — even with the whole platform to itself, job ``j``
  cannot finish before ``r_j + 1 / (sum_i 1/c_{i,j})``;
* **aggregate load bound** — the total work released by time ``t`` that must
  be finished by time ``d`` cannot exceed the platform capacity available in
  ``[t, d]``; specialised here to the single-interval form used for makespan
  and common-deadline checks;
* **weighted-flow bound** — combining the fluid bound with the weights gives
  a lower bound on the optimal maximum weighted flow.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .instance import Instance

__all__ = [
    "deadline_capacity_violated",
    "fluid_completion_bound",
    "machine_load_lower_bound",
    "makespan_lower_bound",
    "max_weighted_flow_lower_bound",
]


def fluid_completion_bound(instance: Instance, job_index: int) -> float:
    """Earliest conceivable completion time of one job (divisible model).

    The job starts at its release date and is processed simultaneously by
    every eligible machine at full speed.
    """
    job = instance.jobs[job_index]
    return job.release_date + instance.lower_bound_flow(job_index)


def machine_load_lower_bound(instance: Instance) -> float:
    """A makespan lower bound from aggregate platform capacity.

    All the work must be processed somewhere; assigning every job entirely to
    the machine that processes it fastest and spreading that perfectly over
    the whole platform cannot finish before
    ``min_release + (sum_j min_i c_{i,j}) / m``... which is *not* valid on
    unrelated machines (a slow machine cannot absorb arbitrary work at the
    fast machine's rate).  The valid aggregate argument uses processing
    *rates*: the total "fraction-work" is ``n`` jobs, and during one second
    the platform completes at most ``sum_i max_j (1/c_{i,j})`` fractions.
    This is a weak but always-valid bound; the per-job fluid bound usually
    dominates it and :func:`makespan_lower_bound` takes the maximum of both.
    """
    rates = []
    for i in range(instance.num_machines):
        row = instance.costs[i, :]
        finite = np.isfinite(row)
        rates.append(float(np.max(1.0 / row[finite])) if finite.any() else 0.0)
    total_rate = sum(rates)
    if total_rate <= 0:
        return float("inf")
    first_release = min(instance.release_dates)
    return first_release + instance.num_jobs / total_rate


def makespan_lower_bound(instance: Instance) -> float:
    """Best available closed-form lower bound on the optimal makespan."""
    per_job = max(fluid_completion_bound(instance, j) for j in range(instance.num_jobs))
    return max(per_job, min(instance.release_dates))


def max_weighted_flow_lower_bound(instance: Instance) -> float:
    """Closed-form lower bound on the optimal maximum weighted flow.

    Uses the per-job fluid bound: ``w_j * (fluid completion - r_j)``.
    """
    bounds: List[float] = []
    for j, job in enumerate(instance.jobs):
        bounds.append(job.weight * instance.lower_bound_flow(j))
    return max(bounds)


def deadline_capacity_violated(
    instance: Instance, deadlines: Sequence[float]
) -> bool:
    """Quick necessary-condition check for deadline feasibility.

    Returns ``True`` when the instance is *certainly infeasible* because some
    job's fluid completion bound already exceeds its deadline.  A ``False``
    answer does not imply feasibility (the full LP of Lemma 1 decides that);
    the check is used as a cheap early exit by callers that probe many
    objective values.
    """
    for j, deadline in enumerate(deadlines):
        if fluid_completion_bound(instance, j) > deadline + 1e-12:
            return True
    return False
