"""Deadline scheduling (Section 4.2, Lemma 1).

Given a release date ``r_j`` and a deadline ``d_j`` per job, System (2) of the
paper has a solution if and only if there exists a (divisible) schedule
executing every job within its window ``[r_j, d_j]``.  The same system
augmented with the per-job interval constraints (5b) characterises
*preemptive* feasibility (Section 4.4).

This module exposes both the feasibility test and, when the system is
feasible, an explicit witness schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..exceptions import InvalidInstanceError
from ..lp.backends import BACKEND_LABELS
from .affine import Affine
from .formulations import (
    build_allocation_model,
    divisible_schedule_from_solution,
    preemptive_schedule_from_solution,
)
from .instance import Instance
from .intervals import build_constant_intervals
from .schedule import Schedule
from .tolerances import ABS_TOL, lt

__all__ = ["DeadlineFeasibility", "check_deadline_feasibility"]

#: Canonical solution-backend labels per requested backend name, so records
#: produced without reaching a solver match the label a solve would report.
#: Sourced from the LP backend registry (ISSUE 9 added revised/tableau/
#: highspy); kept under its historical name for the probe modules.
_BACKEND_LABELS = BACKEND_LABELS


@dataclass(frozen=True)
class DeadlineFeasibility:
    """Outcome of a deadline-feasibility test.

    Attributes
    ----------
    feasible:
        ``True`` when a schedule meeting every deadline exists.
    schedule:
        A witness schedule (``None`` when infeasible or when the caller asked
        not to build one).
    num_intervals, lp_variables, lp_constraints:
        Size of the linear system, recorded for the scaling benches.
    backend:
        LP backend label, using the same canonical names whether or not a
        solver was actually reached (so bench records stay well-formed even
        for trivially-rejected systems).
    """

    feasible: bool
    schedule: Optional[Schedule]
    num_intervals: int
    lp_variables: int
    lp_constraints: int
    backend: str


def check_deadline_feasibility(
    instance: Instance,
    deadlines: Sequence[float],
    *,
    preemptive: bool = False,
    build_schedule: bool = True,
    backend: str = "scipy",
) -> DeadlineFeasibility:
    """Decide whether every job can be completed within ``[r_j, d_j]``.

    Parameters
    ----------
    instance:
        The scheduling instance.
    deadlines:
        One deadline per job, in the instance's job order.
    preemptive:
        ``False`` (default): divisible-load model, System (2).
        ``True``: preemptive model, System (2) + the per-job interval
        constraints, with the witness rebuilt via Lawler–Labetoulle.
    build_schedule:
        When ``False`` no witness schedule is materialised even if the system
        is feasible (cheaper; used by the milestone binary search).
    backend:
        LP backend (any alias accepted by
        :func:`repro.lp.backends.canonical_backend`).

    Returns
    -------
    DeadlineFeasibility
    """
    if len(deadlines) != instance.num_jobs:
        raise InvalidInstanceError(
            f"expected {instance.num_jobs} deadlines, got {len(deadlines)}"
        )
    for job, deadline in zip(instance.jobs, deadlines):
        if lt(deadline, job.release_date, tol=ABS_TOL):
            # A deadline strictly before the release date (beyond the shared
            # numerical tolerance) makes the instance trivially infeasible;
            # report it without bothering the LP solver.  Deadlines within
            # tolerance of the release date go through the LP like any other
            # borderline system.
            return DeadlineFeasibility(
                feasible=False,
                schedule=None,
                num_intervals=0,
                lp_variables=0,
                lp_constraints=0,
                backend=_BACKEND_LABELS.get(backend, backend),
            )

    epochal_times = list(instance.release_dates) + [float(d) for d in deadlines]
    intervals = build_constant_intervals(epochal_times)
    deadline_functions = [Affine.const(float(d)) for d in deadlines]

    alloc = build_allocation_model(
        instance,
        intervals,
        deadlines=deadline_functions,
        objective_bounds=None,
        sample_objective=0.0,
        preemptive=preemptive,
        name="deadline-system2" + ("-preemptive" if preemptive else ""),
    )
    solution = alloc.model.solve(backend=backend)

    if not solution.is_optimal:
        return DeadlineFeasibility(
            feasible=False,
            schedule=None,
            num_intervals=len(intervals),
            lp_variables=alloc.model.num_variables,
            lp_constraints=alloc.model.num_constraints,
            backend=solution.backend,
        )

    schedule: Optional[Schedule] = None
    if build_schedule:
        if preemptive:
            schedule = preemptive_schedule_from_solution(alloc, solution)
        else:
            schedule = divisible_schedule_from_solution(alloc, solution)

    return DeadlineFeasibility(
        feasible=True,
        schedule=schedule,
        num_intervals=len(intervals),
        lp_variables=alloc.model.num_variables,
        lp_constraints=alloc.model.num_constraints,
        backend=solution.backend,
    )
