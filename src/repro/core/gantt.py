"""ASCII Gantt-chart rendering of schedules.

Schedules produced by the LP solvers and the simulator are piecewise and
preemptive; a textual Gantt chart is the quickest way to eyeball them in a
terminal (examples) or in captured bench output.  One row per machine, time
flowing left to right, one character column per time quantum, job identity
encoded by a letter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .schedule import Schedule

__all__ = ["render_gantt"]

#: Characters used to identify jobs on the chart, in job-index order.
_JOB_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

#: Character used for idle time.
_IDLE = "."

#: Character used when two pieces of *different* jobs fall in the same cell —
#: either because the pieces genuinely overlap (an invalid schedule) or simply
#: because the character resolution is coarser than a piece boundary.
_CLASH = "#"


def _glyph(job_index: int) -> str:
    return _JOB_GLYPHS[job_index % len(_JOB_GLYPHS)]


def render_gantt(
    schedule: Schedule,
    *,
    width: int = 80,
    start: Optional[float] = None,
    end: Optional[float] = None,
    show_legend: bool = True,
) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The schedule to draw.
    width:
        Number of character columns used for the time axis.
    start, end:
        Time window to draw; defaults to ``[min start, makespan]``.
    show_legend:
        Append a job-glyph legend below the chart.

    Returns
    -------
    str
        The chart, one line per machine plus an axis line (and a legend).
    """
    instance = schedule.instance
    if not schedule.pieces:
        return "(empty schedule)"
    if width < 10:
        raise ValueError("gantt width must be at least 10 columns")

    chart_start = min(piece.start for piece in schedule.pieces) if start is None else start
    chart_end = schedule.makespan if end is None else end
    if chart_end <= chart_start:
        chart_end = chart_start + 1.0
    span = chart_end - chart_start
    quantum = span / width

    label_width = max(len(machine.name) for machine in instance.machines) + 1

    rows: List[str] = []
    for machine_index, machine in enumerate(instance.machines):
        cells = [_IDLE] * width
        for piece in schedule.pieces_on_machine(machine_index):
            if piece.end <= chart_start or piece.start >= chart_end:
                continue
            first = int((max(piece.start, chart_start) - chart_start) / quantum)
            last = int((min(piece.end, chart_end) - chart_start) / quantum - 1e-12)
            first = max(0, min(first, width - 1))
            last = max(first, min(last, width - 1))
            glyph = _glyph(piece.job_index)
            for column in range(first, last + 1):
                if cells[column] == _IDLE or cells[column] == glyph:
                    cells[column] = glyph
                else:
                    cells[column] = _CLASH
        rows.append(f"{machine.name:<{label_width}}|{''.join(cells)}|")

    axis = (
        " " * label_width
        + f"+{'-' * width}+\n"
        + " " * label_width
        + f" {chart_start:<10.3g}"
        + f"{chart_end:>{width - 10}.4g}"
    )
    lines = rows + [axis]

    if show_legend:
        seen: Dict[int, str] = {}
        for piece in schedule.pieces:
            seen.setdefault(piece.job_index, _glyph(piece.job_index))
        legend = "  ".join(
            f"{glyph}={instance.jobs[job_index].name}"
            for job_index, glyph in sorted(seen.items())
        )
        lines.append("legend: " + legend)
    return "\n".join(lines)
