"""Machine and platform model.

A *machine* is a sequence-comparison server co-located with one or more
protein databanks.  In the general unrelated-machines model only the cost
matrix matters; machines then merely carry a name.  In the
uniform-machines-with-restricted-availabilities model (the one that matches
the GriPPS deployment) each machine additionally has a computational
capacity ``c_i`` expressed in seconds per Mflop and the set of databanks it
hosts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set

from ..exceptions import InvalidInstanceError
from .job import Job

__all__ = ["Machine", "Platform"]


@dataclass(frozen=True)
class Machine:
    """A sequence-comparison server.

    Attributes
    ----------
    name:
        Unique machine identifier (e.g. ``"M2"`` or a hostname).
    cycle_time:
        Computational capacity ``c_i`` in seconds per Mflop: processing a job
        of size ``W_j`` takes ``W_j * cycle_time`` seconds.  Ignored when the
        instance is built from an explicit unrelated cost matrix.
    databanks:
        Names of the databanks hosted on this machine.
    """

    name: str
    cycle_time: float = 1.0
    databanks: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidInstanceError("machine name must be a non-empty string")
        if not math.isfinite(self.cycle_time) or self.cycle_time <= 0:
            raise InvalidInstanceError(
                f"machine {self.name!r}: cycle_time must be finite and > 0, got {self.cycle_time!r}"
            )
        if not isinstance(self.databanks, frozenset):
            object.__setattr__(self, "databanks", frozenset(self.databanks))

    # ------------------------------------------------------------------ #
    def can_run(self, job: Job) -> bool:
        """Return ``True`` when every databank required by ``job`` is hosted here."""
        return job.databanks <= self.databanks

    def processing_time(self, job: Job) -> float:
        """Return ``c_{i,j}`` under the uniform-with-restrictions model.

        ``W_j * c_i`` when the data dependences are satisfied, ``+inf``
        otherwise.  Requires the job to carry a size.
        """
        if not self.can_run(job):
            return float("inf")
        if job.size is None:
            raise InvalidInstanceError(
                f"job {job.name!r} has no size; cannot compute a uniform processing time"
            )
        return job.size * self.cycle_time

    def speed(self) -> float:
        """Return the machine speed in Mflop per second (``1 / cycle_time``)."""
        return 1.0 / self.cycle_time


@dataclass(frozen=True)
class Platform:
    """A heterogeneous collection of machines / databank replicas.

    The platform is immutable; helper constructors live in
    :mod:`repro.gripps.platform_gen` and :mod:`repro.workload.generators`.
    """

    machines: tuple

    def __init__(self, machines: Iterable[Machine]) -> None:
        machines = tuple(machines)
        if len(machines) == 0:
            raise InvalidInstanceError("a platform needs at least one machine")
        names: Set[str] = set()
        for machine in machines:
            if not isinstance(machine, Machine):
                raise InvalidInstanceError(
                    f"platform expects Machine objects, got {type(machine).__name__}"
                )
            if machine.name in names:
                raise InvalidInstanceError(f"duplicate machine name {machine.name!r}")
            names.add(machine.name)
        object.__setattr__(self, "machines", machines)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    def __getitem__(self, index: int) -> Machine:
        return self.machines[index]

    @property
    def names(self) -> List[str]:
        """Machine names in platform order."""
        return [machine.name for machine in self.machines]

    @property
    def databanks(self) -> FrozenSet[str]:
        """The union of all databanks hosted anywhere on the platform."""
        banks: Set[str] = set()
        for machine in self.machines:
            banks |= machine.databanks
        return frozenset(banks)

    def machines_hosting(self, databank: str) -> List[Machine]:
        """Return the machines that host ``databank`` (possibly empty)."""
        return [machine for machine in self.machines if databank in machine.databanks]

    def eligible_machines(self, job: Job) -> List[Machine]:
        """Return the machines on which ``job`` can run."""
        return [machine for machine in self.machines if machine.can_run(job)]

    def replication_degree(self) -> Dict[str, int]:
        """Return, for each databank, the number of machines hosting it."""
        degrees: Dict[str, int] = {}
        for bank in self.databanks:
            degrees[bank] = len(self.machines_hosting(bank))
        return degrees

    def total_speed(self) -> float:
        """Aggregate platform speed in Mflop per second."""
        return sum(machine.speed() for machine in self.machines)

    def index_of(self, name: str) -> int:
        """Return the index of the machine called ``name``.

        Raises
        ------
        KeyError
            If no machine has that name.
        """
        for index, machine in enumerate(self.machines):
            if machine.name == name:
                return index
        raise KeyError(f"no machine named {name!r} in platform")
