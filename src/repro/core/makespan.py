"""Makespan minimisation in the divisible-load model (Section 4.1, Theorem 1).

The release dates cut the time axis into intervals; Linear Program (1) of the
paper decides how much of each job every machine processes in every interval.
The final interval is unbounded, so its usable length ``Delta_n`` is itself a
decision variable and the makespan equals ``r_n + Delta_n`` (no processing of
the last-released job can start before ``r_n``).

Any feasible optimal solution converts into an explicit schedule by laying
out, inside every interval, each machine's fractions one after the other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidInstanceError
from .affine import Affine
from .formulations import (
    build_allocation_model,
    divisible_schedule_from_solution,
    preemptive_schedule_from_solution,
)
from .instance import Instance
from .intervals import TimeInterval, distinct_sorted
from .schedule import Schedule

__all__ = ["MakespanResult", "minimize_makespan"]


@dataclass(frozen=True)
class MakespanResult:
    """Result of a makespan optimisation.

    Attributes
    ----------
    makespan:
        Optimal makespan ``C_max``.
    schedule:
        A schedule achieving it.
    delta:
        Optimal length ``Delta_n`` of the final (open-ended) interval.
    num_intervals:
        Number of time intervals used by the LP.
    lp_variables, lp_constraints:
        Size of the linear program, recorded for the scaling benches.
    backend:
        LP backend that produced the optimum.
    """

    makespan: float
    schedule: Schedule
    delta: float
    num_intervals: int
    lp_variables: int
    lp_constraints: int
    backend: str


def minimize_makespan(
    instance: Instance,
    *,
    preemptive: bool = False,
    backend: str = "scipy",
) -> MakespanResult:
    """Compute an optimal-makespan schedule for a divisible-load instance.

    Parameters
    ----------
    instance:
        The scheduling instance.
    preemptive:
        When ``False`` (default) the divisible-load model of the paper is
        used: a job may run on several machines simultaneously.  When
        ``True`` the per-job interval constraints of Section 4.4 are added
        and the schedule is rebuilt with the Lawler–Labetoulle construction,
        yielding an optimal *preemptive* makespan (an extension of the paper,
        in the spirit of Lawler & Labetoulle's original result).
    backend:
        LP backend (``"scipy"`` or ``"simplex"``).

    Returns
    -------
    MakespanResult
        The optimal makespan and a schedule achieving it.

    Raises
    ------
    InfeasibleProblemError
        Never for a valid instance — every instance admits a finite-makespan
        schedule; an infeasible LP therefore signals an internal error.
    """
    if instance.num_jobs == 0:
        raise InvalidInstanceError("cannot minimise the makespan of an empty instance")

    release_dates = distinct_sorted(instance.release_dates)
    last_release = release_dates[-1]

    # Bounded intervals between consecutive distinct release dates, plus the
    # final interval [r_n, r_n + Delta) whose length Delta is the LP objective.
    intervals = []
    for index in range(len(release_dates) - 1):
        intervals.append(
            TimeInterval(
                index=index,
                lower=Affine.const(release_dates[index]),
                upper=Affine.const(release_dates[index + 1]),
            )
        )
    intervals.append(
        TimeInterval(
            index=len(release_dates) - 1,
            lower=Affine.const(last_release),
            upper=Affine(last_release, 1.0),  # upper bound depends on Delta
        )
    )

    alloc = build_allocation_model(
        instance,
        intervals,
        deadlines=None,
        objective_bounds=(0.0, None),  # the "objective variable" plays the role of Delta_n
        sample_objective=1.0,
        preemptive=preemptive,
        name="makespan-LP1",
    )
    solution = alloc.model.solve_or_raise(backend=backend)
    delta = float(solution.value(alloc.objective_variable))

    if preemptive:
        schedule = preemptive_schedule_from_solution(alloc, solution, objective_value=delta)
    else:
        schedule = divisible_schedule_from_solution(alloc, solution, objective_value=delta)

    return MakespanResult(
        makespan=last_release + delta,
        schedule=schedule,
        delta=delta,
        num_intervals=len(intervals),
        lp_variables=alloc.model.num_variables,
        lp_constraints=alloc.model.num_constraints,
        backend=solution.backend,
    )
