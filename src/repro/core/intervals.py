"""Epochal times and time intervals.

All the linear programs of Section 4 are indexed by *time intervals* obtained
by cutting the time axis at *epochal times*:

* Linear Program (1) (makespan) cuts at the distinct release dates;
* System (2) (deadline feasibility) cuts at release dates and deadlines;
* Systems (3) and (5) (max weighted flow) cut at release dates and the
  *affine* deadlines ``d_j(F) = r_j + F / w_j``; the interval bounds are then
  affine functions of the objective ``F`` that keep a fixed order between two
  consecutive milestones.

This module builds those interval sets.  All three cases share the same
:class:`TimeInterval` type, whose bounds are :class:`~repro.core.affine.Affine`
functions (constants are just affine functions with slope zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..exceptions import InvalidInstanceError
from .affine import Affine
from .tolerances import ABS_TOL

__all__ = [
    "TimeInterval",
    "build_constant_intervals",
    "build_affine_intervals",
    "distinct_sorted",
]


@dataclass(frozen=True)
class TimeInterval:
    """A half-open time interval ``[lower, upper)`` with (possibly affine) bounds.

    Attributes
    ----------
    index:
        Position of the interval in its interval set (0-based).
    lower, upper:
        Bounds as affine functions of the objective ``F``.  For the makespan
        and deadline problems both slopes are zero.
    """

    index: int
    lower: Affine
    upper: Affine

    # ------------------------------------------------------------------ #
    def length(self) -> Affine:
        """Return the interval duration ``upper - lower`` as an affine function."""
        return self.upper - self.lower

    def lower_at(self, objective: float = 0.0) -> float:
        """Evaluate the lower bound at objective value ``objective``."""
        return self.lower(objective)

    def upper_at(self, objective: float = 0.0) -> float:
        """Evaluate the upper bound at objective value ``objective``."""
        return self.upper(objective)

    def length_at(self, objective: float = 0.0) -> float:
        """Evaluate the duration at objective value ``objective``."""
        return self.upper(objective) - self.lower(objective)

    def contains_time(self, time: float, objective: float = 0.0, tol: float = ABS_TOL) -> bool:
        """Return ``True`` when ``time`` lies in ``[lower, upper)`` at ``objective``."""
        return self.lower(objective) - tol <= time < self.upper(objective) - tol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeInterval(#{self.index}, [{self.lower!r}, {self.upper!r}))"


def distinct_sorted(values: Iterable[float], tol: float = ABS_TOL) -> List[float]:
    """Return the sorted distinct values of ``values`` (merging near-duplicates).

    Two values closer than ``tol`` are considered the same epochal time; the
    smaller representative is kept.
    """
    ordered = sorted(values)
    result: List[float] = []
    for value in ordered:
        if not result or value - result[-1] > tol:
            result.append(value)
    return result


def build_constant_intervals(times: Sequence[float], tol: float = ABS_TOL) -> List[TimeInterval]:
    """Build the intervals delimited by a set of (constant) epochal times.

    Parameters
    ----------
    times:
        Epochal times (release dates, deadlines); duplicates are merged.

    Returns
    -------
    list of TimeInterval
        ``k - 1`` intervals when there are ``k`` distinct epochal times.  An
        empty list when fewer than two distinct times are supplied (a single
        epochal time delimits no interval).
    """
    if len(times) == 0:
        raise InvalidInstanceError("cannot build intervals from an empty set of epochal times")
    cuts = distinct_sorted(times, tol=tol)
    intervals: List[TimeInterval] = []
    for index in range(len(cuts) - 1):
        intervals.append(
            TimeInterval(
                index=index,
                lower=Affine.const(cuts[index]),
                upper=Affine.const(cuts[index + 1]),
            )
        )
    return intervals


def build_affine_intervals(
    epochal_times: Sequence[Affine],
    sample_objective: float,
    tol: float = ABS_TOL,
) -> List[TimeInterval]:
    """Build intervals from affine epochal times, ordered at ``sample_objective``.

    Between two consecutive milestones the relative order of the epochal
    times does not depend on ``F``; evaluating at any interior sample point
    therefore yields the order valid over the whole milestone range.

    Parameters
    ----------
    epochal_times:
        The affine functions ``r_j`` (slope 0) and ``d_j(F)`` (slope
        ``1/w_j``).  Functionally identical entries are merged.
    sample_objective:
        An objective value strictly inside the milestone range of interest.

    Returns
    -------
    list of TimeInterval
        Consecutive intervals covering the span of the epochal times at the
        sample objective.
    """
    if len(epochal_times) == 0:
        raise InvalidInstanceError("cannot build intervals from an empty set of epochal times")

    # Merge functionally identical epochal times.
    unique: List[Affine] = []
    for candidate in epochal_times:
        if not any(candidate.functionally_equal(existing, tol=tol) for existing in unique):
            unique.append(candidate)

    # Merge epochal times that coincide *at the sample objective*: inside a
    # milestone range two distinct affine functions never cross, so values
    # that coincide at the sample coincide over the whole range boundary-wise
    # only at the range endpoints; treating them as a single cut keeps the
    # interval set well formed in the degenerate case where the range has
    # zero width.
    unique.sort(key=lambda fn: fn(sample_objective))
    cuts: List[Affine] = []
    for candidate in unique:
        if cuts and abs(candidate(sample_objective) - cuts[-1](sample_objective)) <= tol:
            continue
        cuts.append(candidate)

    intervals: List[TimeInterval] = []
    for index in range(len(cuts) - 1):
        intervals.append(TimeInterval(index=index, lower=cuts[index], upper=cuts[index + 1]))
    return intervals
