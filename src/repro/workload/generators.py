"""Random scheduling-instance generators.

The theoretical results of the paper hold for arbitrary unrelated machines;
the benches and property tests therefore exercise the solvers on several
families of random instances:

* **fully unrelated** — every ``c_{i,j}`` drawn independently;
* **uniform with restricted availabilities** — machine speeds times job sizes,
  with a random databank-style restriction mask (the GriPPS situation);
* **correlated** — machine speeds and job sizes with mild noise, the common
  "almost uniform" case.

All generators take a seed and produce deterministic output for a given seed,
which the reproducibility of the benches relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..core.machine import Machine
from ..exceptions import WorkloadError

__all__ = [
    "ArrivalProcess",
    "poisson_arrivals",
    "uniform_arrivals",
    "random_unrelated_instance",
    "random_restricted_instance",
    "random_correlated_instance",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """Description of a release-date process.

    Attributes
    ----------
    kind:
        ``"poisson"`` (exponential inter-arrivals), ``"uniform"`` (uniform over
        a horizon) or ``"batch"`` (all jobs released at time zero).
    rate:
        Mean arrival rate (jobs per second) for the Poisson process.
    horizon:
        Time horizon for the uniform process.
    """

    kind: str = "poisson"
    rate: float = 1.0
    horizon: float = 10.0

    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        """Draw ``count`` release dates (sorted, starting at or after zero)."""
        if count <= 0:
            raise WorkloadError("count must be positive")
        if self.kind == "poisson":
            if self.rate <= 0:
                raise WorkloadError("poisson arrival rate must be positive")
            gaps = rng.exponential(1.0 / self.rate, size=count)
            return list(np.cumsum(gaps))
        if self.kind == "uniform":
            if self.horizon < 0:
                raise WorkloadError("uniform arrival horizon must be non-negative")
            return sorted(float(v) for v in rng.uniform(0.0, self.horizon, size=count))
        if self.kind == "batch":
            return [0.0] * count
        raise WorkloadError(f"unknown arrival process kind {self.kind!r}")


def poisson_arrivals(count: int, rate: float, seed: Optional[int] = None) -> List[float]:
    """Convenience wrapper: Poisson release dates."""
    rng = np.random.default_rng(seed)
    return ArrivalProcess(kind="poisson", rate=rate).sample(count, rng)


def uniform_arrivals(count: int, horizon: float, seed: Optional[int] = None) -> List[float]:
    """Convenience wrapper: uniformly spread release dates."""
    rng = np.random.default_rng(seed)
    return ArrivalProcess(kind="uniform", horizon=horizon).sample(count, rng)


def _make_jobs(
    release_dates: Sequence[float],
    sizes: Sequence[float],
    weights: Sequence[float],
) -> List[Job]:
    return [
        Job(
            name=f"J{index}",
            release_date=float(release),
            weight=float(weight),
            size=float(size),
        )
        for index, (release, size, weight) in enumerate(zip(release_dates, sizes, weights))
    ]


def random_unrelated_instance(
    num_jobs: int,
    num_machines: int,
    *,
    seed: Optional[int] = None,
    arrivals: Optional[ArrivalProcess] = None,
    cost_range: tuple = (1.0, 20.0),
    forbidden_probability: float = 0.0,
    weight_range: tuple = (0.5, 2.0),
) -> Instance:
    """Generate a fully unrelated instance with independent random costs.

    Parameters
    ----------
    num_jobs, num_machines:
        Instance dimensions.
    seed:
        RNG seed.
    arrivals:
        Release-date process (Poisson with rate 1 by default).
    cost_range:
        Uniform range for the finite ``c_{i,j}``.
    forbidden_probability:
        Probability that a ``c_{i,j}`` is infinite; every job is guaranteed at
        least one finite entry.
    weight_range:
        Uniform range for the job weights.
    """
    if num_jobs <= 0 or num_machines <= 0:
        raise WorkloadError("instance dimensions must be positive")
    if not 0.0 <= forbidden_probability < 1.0:
        raise WorkloadError("forbidden_probability must be in [0, 1)")
    rng = np.random.default_rng(seed)
    arrivals = arrivals or ArrivalProcess(kind="poisson", rate=1.0)

    release_dates = arrivals.sample(num_jobs, rng)
    weights = rng.uniform(weight_range[0], weight_range[1], size=num_jobs)
    sizes = rng.uniform(cost_range[0], cost_range[1], size=num_jobs)
    jobs = _make_jobs(release_dates, sizes, weights)

    costs = rng.uniform(cost_range[0], cost_range[1], size=(num_machines, num_jobs))
    if forbidden_probability > 0:
        mask = rng.random(size=costs.shape) < forbidden_probability
        costs = np.where(mask, np.inf, costs)
        # Guarantee at least one eligible machine per job.
        for j in range(num_jobs):
            if not np.isfinite(costs[:, j]).any():
                machine = int(rng.integers(0, num_machines))
                costs[machine, j] = float(rng.uniform(cost_range[0], cost_range[1]))
    return Instance.from_costs(jobs, costs)


def random_restricted_instance(
    num_jobs: int,
    num_machines: int,
    *,
    seed: Optional[int] = None,
    arrivals: Optional[ArrivalProcess] = None,
    num_databanks: int = 4,
    replication: float = 0.5,
    size_range: tuple = (5.0, 50.0),
    cycle_time_range: tuple = (0.5, 2.0),
    stretch_weights: bool = False,
) -> Instance:
    """Generate a uniform-machines-with-restricted-availabilities instance.

    This is the GriPPS-shaped family: machine ``i`` has a cycle time ``c_i``,
    job ``j`` has a size ``W_j`` and requires one databank; ``c_{i,j}`` equals
    ``W_j c_i`` where the databank is hosted and ``+inf`` elsewhere.
    """
    if num_databanks <= 0:
        raise WorkloadError("num_databanks must be positive")
    if not 0.0 < replication <= 1.0:
        raise WorkloadError("replication must be in (0, 1]")
    rng = np.random.default_rng(seed)
    arrivals = arrivals or ArrivalProcess(kind="poisson", rate=1.0)

    banks = [f"bank{k}" for k in range(num_databanks)]
    hosted: List[set] = [set() for _ in range(num_machines)]
    for bank in banks:
        hosts = [i for i in range(num_machines) if rng.random() < replication]
        if not hosts:
            hosts = [int(rng.integers(0, num_machines))]
        for i in hosts:
            hosted[i].add(bank)

    machines = [
        Machine(
            name=f"M{i}",
            cycle_time=float(rng.uniform(cycle_time_range[0], cycle_time_range[1])),
            databanks=frozenset(hosted[i]),
        )
        for i in range(num_machines)
    ]

    release_dates = arrivals.sample(num_jobs, rng)
    jobs = []
    for index, release in enumerate(release_dates):
        size = float(rng.uniform(size_range[0], size_range[1]))
        weight = 1.0 / size if stretch_weights else float(rng.uniform(0.5, 2.0))
        bank = banks[int(rng.integers(0, num_databanks))]
        jobs.append(
            Job(
                name=f"J{index}",
                release_date=float(release),
                weight=weight,
                size=size,
                databanks=frozenset({bank}),
            )
        )

    from ..core.machine import Platform

    return Instance.from_platform(jobs, Platform(machines))


def random_correlated_instance(
    num_jobs: int,
    num_machines: int,
    *,
    seed: Optional[int] = None,
    arrivals: Optional[ArrivalProcess] = None,
    size_range: tuple = (5.0, 50.0),
    speed_range: tuple = (0.5, 2.0),
    noise: float = 0.1,
) -> Instance:
    """Generate an "almost uniform" instance: ``c_{i,j} = W_j c_i (1 + noise)``."""
    if noise < 0:
        raise WorkloadError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    arrivals = arrivals or ArrivalProcess(kind="poisson", rate=1.0)

    release_dates = arrivals.sample(num_jobs, rng)
    sizes = rng.uniform(size_range[0], size_range[1], size=num_jobs)
    weights = rng.uniform(0.5, 2.0, size=num_jobs)
    jobs = _make_jobs(release_dates, sizes, weights)

    cycle_times = rng.uniform(speed_range[0], speed_range[1], size=num_machines)
    jitter = 1.0 + noise * rng.standard_normal(size=(num_machines, num_jobs))
    jitter = np.clip(jitter, 0.2, None)
    costs = np.outer(cycle_times, sizes) * jitter
    return Instance.from_costs(jobs, costs)
