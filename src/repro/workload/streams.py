"""Open-ended workload streams: lazy arrival processes over a fixed platform.

Every layer below this module consumes a finite, fully-materialised
:class:`~repro.core.instance.Instance` — the *off-line* view.  The paper's
premise, however, is an **on-line portal**: GriPPS requests arrive
continuously and the scheduler never sees the full workload.  This module
supplies that missing half: a :class:`WorkloadStream` produces jobs *lazily*
from an arrival process, so a 100k-arrival experiment never materialises
100k jobs at once — the rolling-horizon
:class:`~repro.simulation.stream.StreamingSimulator` pulls them one by one
and keeps only the active window in memory.

Streams are described by a :class:`StreamSpec`: a cheap, picklable,
content-digestable descriptor (the streaming analogue of
:class:`~repro.workload.scenarios.ScenarioSpec`).  The platform — machines,
cycle times, databank replication — is borrowed from a named scenario, so
every existing scenario doubles as a streaming platform; the job stream on
top of it is driven by one of three arrival processes:

* ``"poisson"`` — memoryless arrivals at ``rate`` jobs per second;
* ``"mmpp"`` — a two-state Markov-modulated Poisson process (bursty portal
  traffic): a quiet state and a burst state whose rate is ``burst_factor``
  times higher, switched so that the *mean* rate stays ``rate``;
* ``"trace"`` — replay of the scenario's own finite instance as a stream
  (the bridge used to validate the streaming simulator against the batch
  kernel, and to re-run archived workloads).

Job sizes come from a ``"uniform"`` or heavy-tailed bounded-``"pareto"``
distribution; weights follow the scenario convention (``1/W_j`` stretch
weights by default, so max weighted flow *is* max stretch).

Determinism
-----------
All randomness derives from ``numpy.random.SeedSequence`` child streams
spawned from ``(spec.seed, scenario name)`` — the same scheme as
:func:`~repro.workload.scenarios.spawn_scenario_seeds` — so a stream is
byte-identical no matter how it is consumed (chunked, resumed, or pulled in
one go), and two streams opened from equal specs produce identical jobs.

Load calibration
----------------
The paper's portal-load experiments sweep the arrival rate against the
platform's capacity.  :meth:`StreamSpec.offered_load` computes the
utilisation ``rho = rate * E[W] / sum_i(1 / c_i)`` — offered work over the
platform's aggregate divisible-model capacity (the off-line fluid bound) —
and :meth:`StreamSpec.with_utilisation` inverts it, so load sweeps are
expressed directly in ``rho``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..core.machine import Machine
from ..exceptions import WorkloadError
from .scenarios import make_scenario

__all__ = [
    "ArrivalEvent",
    "StreamSpec",
    "WorkloadStream",
    "open_stream",
    "replay_stream",
    "spawn_stream_seeds",
]

#: Arrival process kinds understood by :class:`StreamSpec`.
_ARRIVAL_KINDS = ("poisson", "mmpp", "trace")
#: Size distribution kinds understood by :class:`StreamSpec`.
_SIZE_KINDS = ("uniform", "pareto")


class ArrivalEvent(NamedTuple):
    """One streamed job: the job itself plus its per-machine cost column.

    Attributes
    ----------
    index:
        Global arrival index (0-based, arrival order).
    job:
        The job, with its release date set to the arrival time.
    costs:
        Per-machine processing times (``numpy`` column, ``inf`` where the
        job's databank is not hosted).
    """

    index: int
    job: Job
    costs: np.ndarray
    fastest: Optional[float] = None

    @property
    def min_cost(self) -> float:
        """Fastest single-machine processing time (the stretch denominator).

        Generators that know the platform structure precompute it
        (``fastest``) so the streaming window admits in O(1); the fallback
        scan yields the same float64 value bit for bit.
        """
        if self.fastest is not None:
            return self.fastest
        return float(np.min(self.costs))


def spawn_stream_seeds(base_seed: int, name: str, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent ``SeedSequence`` children for one stream.

    The children depend only on ``(base_seed, name, position)`` — never on
    how many other streams share the base seed or how the stream is consumed
    — mirroring :func:`~repro.workload.scenarios.spawn_scenario_seeds` (which
    returns plain integers; stream components keep the full sequences so
    each component owns an independent generator).
    """
    if count < 1:
        raise WorkloadError("spawn_stream_seeds needs count >= 1")
    digest = int.from_bytes(
        hashlib.sha256(("stream:" + name).encode("utf-8")).digest()[:8], "big"
    )
    root = np.random.SeedSequence(entropy=(int(base_seed), digest))
    return root.spawn(count)


@dataclass(frozen=True)
class StreamSpec:
    """A cheap, picklable, content-digestable description of a workload stream.

    Attributes
    ----------
    label:
        Display label of the stream (reports, store records).
    scenario:
        Named scenario supplying the *platform* (machines, cycle times,
        databank replication); see
        :func:`~repro.workload.scenarios.available_scenarios`.
    seed:
        Base seed of the ``SeedSequence`` streams driving the platform draw
        and every job attribute.
    arrivals:
        Arrival process: ``"poisson"``, ``"mmpp"`` or ``"trace"``.
    rate:
        Mean arrival rate in jobs per second (ignored by ``"trace"``).
    sizes:
        Job-size distribution: ``"uniform"`` over ``size_range`` or a
        heavy-tailed bounded ``"pareto"`` on the same range.
    size_range:
        ``(minimum, maximum)`` job size.
    pareto_shape:
        Tail index of the bounded Pareto sizes (smaller = heavier tail).
    burst_factor:
        MMPP burst-state rate multiplier over the quiet state.
    burst_fraction:
        Stationary fraction of *time* spent in the burst state.
    mean_cycle_time:
        Mean duration of one quiet+burst regime cycle, in units of the mean
        inter-arrival time (sets the burstiness timescale).
    stretch_weights:
        ``True`` (default) gives every job weight ``1/W_j``, making the max
        weighted flow of the stream its max stretch.
    """

    label: str
    scenario: str = "small-cluster"
    seed: int = 0
    arrivals: str = "poisson"
    rate: float = 1.0
    sizes: str = "uniform"
    size_range: Tuple[float, float] = (5.0, 50.0)
    pareto_shape: float = 1.6
    burst_factor: float = 8.0
    burst_fraction: float = 0.15
    mean_cycle_time: float = 40.0
    stretch_weights: bool = True

    def __post_init__(self) -> None:
        if self.arrivals not in _ARRIVAL_KINDS:
            raise WorkloadError(
                f"unknown arrival process {self.arrivals!r}; "
                f"available: {', '.join(_ARRIVAL_KINDS)}"
            )
        if self.sizes not in _SIZE_KINDS:
            raise WorkloadError(
                f"unknown size distribution {self.sizes!r}; "
                f"available: {', '.join(_SIZE_KINDS)}"
            )
        if self.arrivals != "trace" and self.rate <= 0:
            raise WorkloadError("stream arrival rate must be positive")
        low, high = self.size_range
        if not (0 < low <= high):
            raise WorkloadError(f"size_range must satisfy 0 < low <= high, got {self.size_range}")
        if self.pareto_shape <= 0:
            raise WorkloadError("pareto_shape must be positive")
        if self.burst_factor < 1.0:
            raise WorkloadError("burst_factor must be at least 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise WorkloadError("burst_fraction must be in (0, 1)")
        if self.mean_cycle_time <= 0:
            raise WorkloadError("mean_cycle_time must be positive")

    # ------------------------------------------------------------------ #
    # Content identity                                                    #
    # ------------------------------------------------------------------ #
    def payload(self) -> Dict:
        """JSON-canonical view of everything that determines the stream."""
        return {
            "scenario": self.scenario,
            "seed": int(self.seed),
            "arrivals": self.arrivals,
            "rate": repr(float(self.rate)),
            "sizes": self.sizes,
            "size_range": [repr(float(self.size_range[0])), repr(float(self.size_range[1]))],
            "pareto_shape": repr(float(self.pareto_shape)),
            "burst_factor": repr(float(self.burst_factor)),
            "burst_fraction": repr(float(self.burst_fraction)),
            "mean_cycle_time": repr(float(self.mean_cycle_time)),
            "stretch_weights": bool(self.stretch_weights),
        }

    def content_key(self) -> str:
        """Stable identity of the stream for content-addressed storage.

        Same role as :meth:`ScenarioSpec.content_key`: the experiment store
        keys stream cells by this string (plus policy and protocol), so
        equal specs — whatever their label — share cells and sweeps resume.
        """
        from ..store.digest import canonical_digest  # deferred: avoids module cycle

        return f"stream-sha256={canonical_digest(self.payload())}"

    def digest(self) -> str:
        """Hex SHA-256 of :meth:`content_key` (file names, log keys)."""
        return hashlib.sha256(self.content_key().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Platform and load calibration                                       #
    # ------------------------------------------------------------------ #
    def _platform_seed(self) -> int:
        children = spawn_stream_seeds(self.seed, self.scenario, 1)
        return int(children[0].generate_state(1)[0])

    def platform_instance(self) -> Instance:
        """The scenario instance whose machines define the stream's platform."""
        return make_scenario(self.scenario, seed=self._platform_seed())

    def mean_size(self) -> float:
        """Analytic mean job size of the configured distribution."""
        low, high = (float(v) for v in self.size_range)
        if self.sizes == "uniform" or low == high:
            return 0.5 * (low + high)
        # Bounded Pareto on [low, high] with tail index alpha.
        alpha = float(self.pareto_shape)
        ratio = low / high
        if alpha == 1.0:
            return low * math.log(high / low) / (1.0 - ratio)
        return (
            low ** alpha
            / (1.0 - ratio ** alpha)
            * alpha
            / (alpha - 1.0)
            * (low ** (1.0 - alpha) - high ** (1.0 - alpha))
        )

    def offered_load(self, machines: Optional[Sequence[Machine]] = None) -> float:
        """Utilisation ``rho``: offered work over the platform's fluid capacity.

        The capacity is the divisible-model aggregate rate
        ``sum_i 1 / cycle_time_i`` — the off-line bound an omniscient
        scheduler could saturate; ``rho >= 1`` streams are super-critical
        and will saturate every policy.
        """
        if self.arrivals == "trace":
            raise WorkloadError("trace streams replay fixed release dates; no offered load")
        if machines is None:
            machines = self.platform_instance().machines
        capacity = sum(1.0 / machine.cycle_time for machine in machines)
        return self.rate * self.mean_size() / capacity

    def with_rate(self, rate: float) -> "StreamSpec":
        """Copy of the spec with a different mean arrival rate."""
        return replace(self, rate=float(rate))

    def with_utilisation(
        self, rho: float, machines: Optional[Sequence[Machine]] = None
    ) -> "StreamSpec":
        """Copy of the spec whose rate offers utilisation ``rho`` (see
        :meth:`offered_load`)."""
        if rho <= 0:
            raise WorkloadError("utilisation must be positive")
        if self.arrivals == "trace":
            raise WorkloadError("trace streams replay fixed release dates; no offered load")
        if machines is None:
            machines = self.platform_instance().machines
        capacity = sum(1.0 / machine.cycle_time for machine in machines)
        return self.with_rate(rho * capacity / self.mean_size())


class WorkloadStream:
    """A lazily generated, restartable stream of jobs over a fixed platform.

    Instances are produced by :func:`open_stream` (from a :class:`StreamSpec`)
    or :func:`replay_stream` (from a concrete instance).  :meth:`jobs`
    returns a *fresh*, deterministic iterator each time it is called, so the
    same stream object can drive several simulations (one per policy) and
    every replay sees identical arrivals.

    Attributes
    ----------
    machines:
        The platform, in cost-row order.
    spec:
        The originating :class:`StreamSpec` (``None`` for trace replays of
        concrete instances).
    length:
        Number of arrivals when the stream is finite (``None`` for the
        open-ended generated streams).
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        generator,
        *,
        spec: Optional[StreamSpec] = None,
        length: Optional[int] = None,
    ) -> None:
        if not machines:
            raise WorkloadError("a workload stream needs at least one machine")
        self.machines: Tuple[Machine, ...] = tuple(machines)
        self._generator = generator
        self.spec = spec
        self.length = length

    @property
    def num_machines(self) -> int:
        """Number of machines on the platform."""
        return len(self.machines)

    def capacity(self) -> float:
        """Aggregate fluid-model processing capacity ``sum_i 1/c_i``."""
        return sum(1.0 / machine.cycle_time for machine in self.machines)

    def jobs(self) -> Iterator[ArrivalEvent]:
        """A fresh deterministic iterator over the stream's arrivals."""
        return self._generator(self.machines)


# --------------------------------------------------------------------------- #
# Stream constructors                                                          #
# --------------------------------------------------------------------------- #
def _job_costs(machines: Sequence[Machine], job: Job) -> np.ndarray:
    """Per-machine cost column of one streamed job (``inf`` where forbidden)."""
    return np.array([machine.processing_time(job) for machine in machines], dtype=float)


def _bank_cost_columns(
    machines: Sequence[Machine], banks: Sequence[str]
) -> Dict[Optional[str], np.ndarray]:
    """Per-databank unit-size cost columns: ``cycle_time`` or ``inf``.

    A generated job needs exactly one databank (or none), so its cost column
    is ``size * column[bank]`` — the same correctly-rounded float64 products
    as calling :meth:`Machine.processing_time` per machine (``W_j * c_i``
    where the bank is hosted, ``inf`` elsewhere), computed without the
    per-arrival Python loop.
    """
    columns: Dict[Optional[str], np.ndarray] = {
        None: np.array([machine.cycle_time for machine in machines], dtype=float)
    }
    for bank in banks:
        columns[bank] = np.array(
            [
                machine.cycle_time if bank in machine.databanks else math.inf
                for machine in machines
            ],
            dtype=float,
        )
    return columns


def _generated_jobs(spec: StreamSpec, machines: Sequence[Machine]) -> Iterator[ArrivalEvent]:
    """Generator behind Poisson/MMPP streams (deterministic per spec)."""
    _, arrival_seed, size_seed, bank_seed = spawn_stream_seeds(spec.seed, spec.scenario, 4)
    arrival_rng = np.random.default_rng(arrival_seed)
    size_rng = np.random.default_rng(size_seed)
    bank_rng = np.random.default_rng(bank_seed)

    banks = sorted(set().union(*(machine.databanks for machine in machines)))
    bank_columns = _bank_cost_columns(machines, banks)
    # size * min(column) == min(size * column) bit for bit (size > 0 and
    # IEEE-754 multiplication is monotone), so the per-arrival fastest cost
    # is one float product instead of an O(m) numpy reduction.
    bank_fastest = {bank: float(np.min(column)) for bank, column in bank_columns.items()}
    low, high = (float(v) for v in spec.size_range)
    alpha = float(spec.pareto_shape)
    pareto_sizes = spec.sizes == "pareto" and low < high
    uniform_sizes = not pareto_sizes and low != high
    pareto_tail = (low / high) ** alpha if pareto_sizes else 0.0
    inverse_alpha = 1.0 / alpha if pareto_sizes else 0.0

    # MMPP regime bookkeeping: a quiet state and a burst state whose rate is
    # ``burst_factor`` times higher; dwell times are exponential with means
    # chosen so the stationary time fraction in burst is ``burst_fraction``
    # and one full cycle lasts ``mean_cycle_time`` mean inter-arrival times.
    bursty = spec.arrivals == "mmpp"
    quiet_rate = spec.rate / (1.0 - spec.burst_fraction + spec.burst_fraction * spec.burst_factor)
    burst_rate = quiet_rate * spec.burst_factor
    cycle = spec.mean_cycle_time / spec.rate
    dwell_means = {
        False: cycle * (1.0 - spec.burst_fraction),  # quiet
        True: cycle * spec.burst_fraction,  # burst
    }

    clock = 0.0
    in_burst = False
    regime_ends = clock + (arrival_rng.exponential(dwell_means[in_burst]) if bursty else math.inf)
    index = 0
    # Chunked draws: each generator owns an independent SeedSequence child,
    # and numpy's vectorised sampling consumes a generator's bit stream
    # value for value like repeated scalar draws, so refilling per-stream
    # buffers every ``chunk`` arrivals yields the same jobs bit for bit
    # while amortising the per-draw dispatch overhead.  ``tolist`` hands
    # the simulator plain Python floats (same bits as the float64 values).
    chunk = 512
    position = chunk
    gap_buffer: List[float] = []
    uniform_buffer: List[float] = []
    size_buffer: List[float] = []
    bank_buffer: List[int] = []
    num_banks = len(banks)
    while True:
        if position == chunk:
            if not bursty:
                gap_buffer = arrival_rng.exponential(1.0 / spec.rate, size=chunk).tolist()
            if pareto_sizes:
                uniform_buffer = size_rng.random(chunk).tolist()
            elif uniform_sizes:
                size_buffer = size_rng.uniform(low, high, size=chunk).tolist()
            if banks:
                bank_buffer = bank_rng.integers(0, num_banks, size=chunk).tolist()
            position = 0
        if bursty:
            # Regime switches interleave dwell draws with gap draws on the
            # arrival stream, so the bursty path keeps scalar draws.
            while True:
                current_rate = burst_rate if in_burst else quiet_rate
                gap = arrival_rng.exponential(1.0 / current_rate)
                if clock + gap <= regime_ends:
                    clock += gap
                    break
                # Memoryless: move to the switch point, flip regime, redraw.
                clock = regime_ends
                in_burst = not in_burst
                regime_ends = clock + arrival_rng.exponential(dwell_means[in_burst])
        else:
            clock += gap_buffer[position]

        if pareto_sizes:
            # Bounded Pareto on [low, high] via inverse CDF.
            u = uniform_buffer[position]
            size = low / (1.0 - u * (1.0 - pareto_tail)) ** inverse_alpha
        elif uniform_sizes:
            size = size_buffer[position]
        else:
            size = low
        weight = 1.0 / size if spec.stretch_weights else 1.0
        bank = banks[bank_buffer[position]] if banks else None
        position += 1
        job = Job(
            name=f"s{index:07d}",
            release_date=clock,
            weight=weight,
            size=size,
            databanks=frozenset({bank}) if bank is not None else frozenset(),
        )
        # size * (cycle | inf) — byte-identical to _job_costs(machines, job).
        yield ArrivalEvent(
            index=index,
            job=job,
            costs=size * bank_columns[bank],
            fastest=size * bank_fastest[bank],
        )
        index += 1


def open_stream(spec: StreamSpec) -> WorkloadStream:
    """Open the workload stream described by ``spec``.

    Poisson/MMPP specs yield an open-ended stream (cap it with the
    simulator's ``max_arrivals``); ``"trace"`` specs replay the scenario's
    finite instance in release order.
    """
    platform = spec.platform_instance()
    if spec.arrivals == "trace":
        stream = replay_stream(platform, spec=spec)
        return stream

    def generator(machines: Sequence[Machine]) -> Iterator[ArrivalEvent]:
        return _generated_jobs(spec, machines)

    return WorkloadStream(platform.machines, generator, spec=spec, length=None)


def replay_stream(instance: Instance, *, spec: Optional[StreamSpec] = None) -> WorkloadStream:
    """Replay a concrete instance as a stream (arrival = release order).

    The bridge between the batch and streaming worlds: the streamed arrivals
    are exactly the instance's jobs with their exact cost columns, so a
    policy driven through the rolling-horizon simulator can be validated
    against the batch kernel on the same workload.
    """

    def generator(machines: Sequence[Machine]) -> Iterator[ArrivalEvent]:
        for index in range(instance.num_jobs):
            yield ArrivalEvent(
                index=index,
                job=instance.jobs[index],
                costs=np.asarray(instance.costs[:, index], dtype=float).copy(),
            )

    return WorkloadStream(
        instance.machines, generator, spec=spec, length=instance.num_jobs
    )
