"""Instance perturbation utilities for sensitivity / robustness studies.

The off-line model assumes exact knowledge of processing times and release
dates; in the deployment the paper targets, both are estimates.  These helpers
produce controlled perturbations of an instance so that users (and the
robustness tests) can measure how much the optimal objective and the policies'
behaviour move when the inputs are wrong by a known amount.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..exceptions import WorkloadError

__all__ = ["perturb_costs", "perturb_release_dates", "scale_load"]


def perturb_costs(
    instance: Instance,
    relative_error: float,
    seed: Optional[int] = None,
) -> Instance:
    """Multiply every finite ``c_{i,j}`` by an independent ``1 + U(-e, +e)`` factor.

    Parameters
    ----------
    instance:
        The instance to perturb (not modified).
    relative_error:
        Maximum relative error ``e``; must lie in ``[0, 1)`` so that perturbed
        times stay positive.
    seed:
        RNG seed.
    """
    if not 0.0 <= relative_error < 1.0:
        raise WorkloadError("relative_error must be in [0, 1)")
    rng = np.random.default_rng(seed)
    factors = 1.0 + rng.uniform(-relative_error, relative_error, size=instance.costs.shape)
    costs = np.where(np.isfinite(instance.costs), instance.costs * factors, np.inf)
    return Instance(jobs=instance.jobs, machines=instance.machines, costs=costs)


def perturb_release_dates(
    instance: Instance,
    max_shift: float,
    seed: Optional[int] = None,
) -> Instance:
    """Shift every release date by an independent ``U(-max_shift, +max_shift)``.

    Shifts are clipped at zero (release dates stay non-negative) and the jobs
    are re-sorted, so the result is a valid instance.
    """
    if max_shift < 0:
        raise WorkloadError("max_shift must be non-negative")
    rng = np.random.default_rng(seed)
    new_jobs = []
    for job in instance.jobs:
        shift = float(rng.uniform(-max_shift, max_shift))
        new_jobs.append(job.with_release_date(max(0.0, job.release_date + shift)))
    # Re-sorting is required because shifts may reorder the jobs; the cost
    # columns must be permuted accordingly.
    order = sorted(range(len(new_jobs)), key=lambda k: new_jobs[k].release_date)
    jobs = tuple(new_jobs[k] for k in order)
    costs = instance.costs[:, order].copy()
    return Instance(jobs=jobs, machines=instance.machines, costs=costs)


def scale_load(instance: Instance, factor: float) -> Instance:
    """Scale every processing time by ``factor`` (> 0) — a uniform load change.

    Useful for crossover studies: the optimal max weighted flow scales
    sub-linearly at light load (idle capacity absorbs the increase) and
    linearly once the platform saturates.
    """
    if factor <= 0:
        raise WorkloadError("factor must be positive")
    costs = np.where(np.isfinite(instance.costs), instance.costs * factor, np.inf)
    jobs = tuple(
        Job(
            name=job.name,
            release_date=job.release_date,
            weight=job.weight,
            size=(job.size * factor) if job.size is not None else None,
            databanks=job.databanks,
        )
        for job in instance.jobs
    )
    return Instance(jobs=jobs, machines=instance.machines, costs=costs)
