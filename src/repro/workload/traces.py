"""JSON trace I/O for instances, schedules and simulation summaries.

A downstream user needs to persist generated workloads and computed schedules
(to rerun experiments, to feed a visualiser, to archive bench inputs).  The
format is deliberately plain JSON so that it stays readable and
toolchain-independent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..core.instance import Instance
from ..core.schedule import Schedule, SchedulePiece
from ..exceptions import WorkloadError

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]

PathLike = Union[str, Path]

#: Format version written into every trace file.
TRACE_FORMAT_VERSION = 1


def instance_to_dict(instance: Instance) -> Dict:
    """Serialise an instance to JSON-compatible types."""
    payload = instance.to_dict()
    payload["format"] = "repro-instance"
    payload["version"] = TRACE_FORMAT_VERSION
    return payload


def instance_from_dict(data: Dict) -> Instance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    if data.get("format") not in (None, "repro-instance"):
        raise WorkloadError(f"not an instance trace: format={data.get('format')!r}")
    return Instance.from_dict(data)


def save_instance(instance: Instance, path: PathLike) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: PathLike) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def schedule_to_dict(schedule: Schedule) -> Dict:
    """Serialise a schedule (pieces plus the instance it refers to)."""
    return {
        "format": "repro-schedule",
        "version": TRACE_FORMAT_VERSION,
        "divisible": schedule.divisible,
        "instance": instance_to_dict(schedule.instance),
        "pieces": [
            {
                "job": piece.job_index,
                "machine": piece.machine_index,
                "start": piece.start,
                "end": piece.end,
                "fraction": piece.fraction,
            }
            for piece in schedule.pieces
        ],
    }


def schedule_from_dict(data: Dict) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    if data.get("format") != "repro-schedule":
        raise WorkloadError(f"not a schedule trace: format={data.get('format')!r}")
    instance = instance_from_dict(data["instance"])
    schedule = Schedule(instance=instance, divisible=bool(data.get("divisible", True)))
    for item in data["pieces"]:
        schedule.pieces.append(
            SchedulePiece(
                job_index=int(item["job"]),
                machine_index=int(item["machine"]),
                start=float(item["start"]),
                end=float(item["end"]),
                fraction=float(item["fraction"]),
            )
        )
    return schedule


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    """Write a schedule (and its instance) to a JSON file."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: PathLike) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
