"""Named workload scenarios used by the examples and the benches.

Each scenario captures one of the situations the paper's introduction
motivates: a small community cluster with partially replicated databanks, a
heavily loaded portal with bursty arrivals, a platform with one fast central
server and several slow satellites, etc.  Scenarios are deterministic for a
given seed, so bench numbers are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..exceptions import WorkloadError
from ..gripps.platform_gen import DatabankSpec, make_gripps_instance
from .generators import ArrivalProcess, random_restricted_instance, random_unrelated_instance

__all__ = ["Scenario", "available_scenarios", "make_scenario", "scenario_sweep"]


@dataclass(frozen=True)
class Scenario:
    """A named, parameterised workload scenario."""

    name: str
    description: str
    builder: Callable[[Optional[int]], Instance]

    def build(self, seed: Optional[int] = None) -> Instance:
        """Materialise the scenario into an :class:`Instance`."""
        return self.builder(seed)


def _small_cluster(seed: Optional[int]) -> Instance:
    """Six servers, four databanks, moderate load — the canonical GriPPS setup."""
    return make_gripps_instance(
        num_requests=15,
        num_machines=6,
        replication=0.5,
        arrival_rate=1.0 / 40.0,
        motif_range=(5, 60),
        seed=seed if seed is not None else 1,
    )


def _replicated_portal(seed: Optional[int]) -> Instance:
    """A large portal where every databank is replicated everywhere (no restrictions)."""
    return make_gripps_instance(
        num_requests=20,
        num_machines=8,
        replication=1.0,
        arrival_rate=1.0 / 20.0,
        motif_range=(10, 120),
        seed=seed if seed is not None else 2,
    )


def _hotspot(seed: Optional[int]) -> Instance:
    """One popular databank hosted on a single slow machine — the worst case for affinity."""
    banks = (
        DatabankSpec("hot-bank", 60_000, popularity=8.0),
        DatabankSpec("cold-bank-a", 20_000, popularity=1.0),
        DatabankSpec("cold-bank-b", 15_000, popularity=1.0),
    )
    return make_gripps_instance(
        num_requests=12,
        num_machines=5,
        databanks=banks,
        replication=0.35,
        arrival_rate=1.0 / 60.0,
        motif_range=(10, 80),
        seed=seed if seed is not None else 3,
    )


def _bursty_batch(seed: Optional[int]) -> Instance:
    """Many small requests released almost simultaneously (a batch submission)."""
    return random_restricted_instance(
        num_jobs=18,
        num_machines=5,
        arrivals=ArrivalProcess(kind="uniform", horizon=2.0),
        num_databanks=3,
        replication=0.6,
        size_range=(2.0, 15.0),
        stretch_weights=True,
        seed=seed if seed is not None else 4,
    )


def _unrelated_stress(seed: Optional[int]) -> Instance:
    """A fully unrelated instance exercising the general model of Section 3."""
    return random_unrelated_instance(
        num_jobs=14,
        num_machines=4,
        cost_range=(1.0, 25.0),
        forbidden_probability=0.25,
        seed=seed if seed is not None else 5,
    )


_SCENARIOS: Dict[str, Scenario] = {
    "small-cluster": Scenario(
        "small-cluster",
        "six comparison servers, four partially replicated databanks, moderate load",
        _small_cluster,
    ),
    "replicated-portal": Scenario(
        "replicated-portal",
        "eight servers with full databank replication (no placement restrictions)",
        _replicated_portal,
    ),
    "hotspot": Scenario(
        "hotspot",
        "one very popular databank with low replication — strong task affinity",
        _hotspot,
    ),
    "bursty-batch": Scenario(
        "bursty-batch",
        "a burst of small stretch-weighted requests released within two seconds",
        _bursty_batch,
    ),
    "unrelated-stress": Scenario(
        "unrelated-stress",
        "fully unrelated machines with 25% forbidden pairs",
        _unrelated_stress,
    ),
}


def available_scenarios() -> List[str]:
    """Return the names of all registered scenarios."""
    return sorted(_SCENARIOS)


def make_scenario(name: str, seed: Optional[int] = None) -> Instance:
    """Build the named scenario (see :func:`available_scenarios`)."""
    try:
        scenario = _SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None
    return scenario.build(seed)


def scenario_sweep(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[Optional[int]] = (None,),
) -> Tuple[List[str], List[Instance]]:
    """Materialise a ``(labels, instances)`` sweep over scenarios and seeds.

    The list format feeds straight into
    :func:`repro.analysis.campaign.run_policy_campaign` (whose
    ``max_workers`` option then fans the sweep out across processes).

    Parameters
    ----------
    names:
        Scenario names to include (default: every registered scenario).
    seeds:
        Seeds to build each scenario with; labels are ``"<name>#<seed>"``
        (just ``"<name>"`` when a single seed is swept).
    """
    if names is None:
        names = available_scenarios()
    if not names:
        raise WorkloadError("a scenario sweep needs at least one scenario name")
    if not seeds:
        raise WorkloadError("a scenario sweep needs at least one seed")
    labels: List[str] = []
    instances: List[Instance] = []
    for name in names:
        for seed in seeds:
            labels.append(name if len(seeds) == 1 else f"{name}#{seed}")
            instances.append(make_scenario(name, seed))
    return labels, instances
