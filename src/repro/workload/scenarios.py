"""Named workload scenarios used by the examples, benches and campaigns.

Each scenario captures one of the situations the paper's introduction
motivates: a small community cluster with partially replicated databanks, a
heavily loaded portal with bursty arrivals, a platform with one fast central
server and several slow satellites, etc.  Scenarios are deterministic for a
given seed, so bench numbers are reproducible.

Sweeps and seeding
------------------
:func:`scenario_grid` enumerates a sweep *lazily* as cheap
:class:`ScenarioSpec` descriptors (label, scenario name, seed) that the
campaign dispatcher materialises inside its workers, so a 10k-scenario sweep
never holds 10k instances in the parent process.  Per-scenario seeds can be
spawned from a single ``base_seed`` via :func:`spawn_scenario_seeds`, which
derives a ``numpy.random.SeedSequence`` child stream from
``(base_seed, scenario name)``: the resulting instances are identical no
matter how the sweep is chunked, how many workers run it, or which other
scenarios share the grid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Instance
from ..exceptions import WorkloadError
from ..gripps.platform_gen import DatabankSpec, make_gripps_instance
from .generators import ArrivalProcess, random_restricted_instance, random_unrelated_instance

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "available_scenarios",
    "make_scenario",
    "scenario_grid",
    "scenario_sweep",
    "spawn_scenario_seeds",
]


@dataclass(frozen=True)
class Scenario:
    """A named, parameterised workload scenario."""

    name: str
    description: str
    builder: Callable[[Optional[int]], Instance]

    def build(self, seed: Optional[int] = None) -> Instance:
        """Materialise the scenario into an :class:`Instance`."""
        return self.builder(seed)


def _small_cluster(seed: Optional[int]) -> Instance:
    """Six servers, four databanks, moderate load — the canonical GriPPS setup."""
    return make_gripps_instance(
        num_requests=15,
        num_machines=6,
        replication=0.5,
        arrival_rate=1.0 / 40.0,
        motif_range=(5, 60),
        seed=seed if seed is not None else 1,
    )


def _replicated_portal(seed: Optional[int]) -> Instance:
    """A large portal where every databank is replicated everywhere (no restrictions)."""
    return make_gripps_instance(
        num_requests=20,
        num_machines=8,
        replication=1.0,
        arrival_rate=1.0 / 20.0,
        motif_range=(10, 120),
        seed=seed if seed is not None else 2,
    )


def _hotspot(seed: Optional[int]) -> Instance:
    """One popular databank hosted on a single slow machine — the worst case for affinity."""
    banks = (
        DatabankSpec("hot-bank", 60_000, popularity=8.0),
        DatabankSpec("cold-bank-a", 20_000, popularity=1.0),
        DatabankSpec("cold-bank-b", 15_000, popularity=1.0),
    )
    return make_gripps_instance(
        num_requests=12,
        num_machines=5,
        databanks=banks,
        replication=0.35,
        arrival_rate=1.0 / 60.0,
        motif_range=(10, 80),
        seed=seed if seed is not None else 3,
    )


def _bursty_batch(seed: Optional[int]) -> Instance:
    """Many small requests released almost simultaneously (a batch submission)."""
    return random_restricted_instance(
        num_jobs=18,
        num_machines=5,
        arrivals=ArrivalProcess(kind="uniform", horizon=2.0),
        num_databanks=3,
        replication=0.6,
        size_range=(2.0, 15.0),
        stretch_weights=True,
        seed=seed if seed is not None else 4,
    )


def _unrelated_stress(seed: Optional[int]) -> Instance:
    """A fully unrelated instance exercising the general model of Section 3."""
    return random_unrelated_instance(
        num_jobs=14,
        num_machines=4,
        cost_range=(1.0, 25.0),
        forbidden_probability=0.25,
        seed=seed if seed is not None else 5,
    )


_SCENARIOS: Dict[str, Scenario] = {
    "small-cluster": Scenario(
        "small-cluster",
        "six comparison servers, four partially replicated databanks, moderate load",
        _small_cluster,
    ),
    "replicated-portal": Scenario(
        "replicated-portal",
        "eight servers with full databank replication (no placement restrictions)",
        _replicated_portal,
    ),
    "hotspot": Scenario(
        "hotspot",
        "one very popular databank with low replication — strong task affinity",
        _hotspot,
    ),
    "bursty-batch": Scenario(
        "bursty-batch",
        "a burst of small stretch-weighted requests released within two seconds",
        _bursty_batch,
    ),
    "unrelated-stress": Scenario(
        "unrelated-stress",
        "fully unrelated machines with 25% forbidden pairs",
        _unrelated_stress,
    ),
}


def available_scenarios() -> List[str]:
    """Return the names of all registered scenarios."""
    return sorted(_SCENARIOS)


def make_scenario(name: str, seed: Optional[int] = None) -> Instance:
    """Build the named scenario (see :func:`available_scenarios`)."""
    try:
        scenario = _SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None
    return scenario.build(seed)


@dataclass(frozen=True)
class ScenarioSpec:
    """A lazy, picklable pointer into a scenario sweep.

    Carrying only ``(label, scenario name, seed)``, specs are cheap enough to
    enumerate by the thousand in the parent process and materialise on demand
    inside campaign workers.
    """

    label: str
    scenario: str
    seed: Optional[int] = None

    def build(self) -> Instance:
        """Materialise the spec into an :class:`Instance`."""
        return make_scenario(self.scenario, self.seed)

    def content_key(self) -> str:
        """Stable identity of the workload this spec points at.

        Depends only on (scenario name, seed) — the pair that fully
        determines the generated instance — so the experiment store can
        content-address results of lazy sweeps without materialising them.
        """
        return f"scenario={self.scenario};seed={self.seed}"

    def digest(self) -> str:
        """Hex SHA-256 of :meth:`content_key` — a compact stable workload id
        (file names, log keys).

        Note this is *not* the cell digest of the experiment store:
        :func:`repro.store.record_digest` embeds the raw :meth:`content_key`
        string (plus policy, params, code epoch) in a canonical-JSON payload
        and hashes that.
        """
        return hashlib.sha256(self.content_key().encode("utf-8")).hexdigest()


def spawn_scenario_seeds(base_seed: int, scenario: str, count: int) -> List[int]:
    """Derive ``count`` per-scenario seeds from one base seed.

    The seeds come from the child streams of a
    ``numpy.random.SeedSequence`` whose entropy mixes ``base_seed`` with a
    stable digest of the scenario name.  They therefore depend only on
    ``(base_seed, scenario, position)`` — never on how a sweep is chunked,
    how many workers build it, or which other scenarios share the grid.
    """
    if count < 1:
        raise WorkloadError("spawn_scenario_seeds needs count >= 1")
    digest = int.from_bytes(hashlib.sha256(scenario.encode("utf-8")).digest()[:8], "big")
    root = np.random.SeedSequence(entropy=(int(base_seed), digest))
    return [int(child.generate_state(1)[0]) for child in root.spawn(count)]


def scenario_grid(
    names: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[Optional[int]]] = None,
    *,
    base_seed: Optional[int] = None,
    seeds_per_scenario: int = 1,
) -> List[ScenarioSpec]:
    """Enumerate a scenario × seed sweep as lazy :class:`ScenarioSpec` items.

    Parameters
    ----------
    names:
        Scenario names to include (default: every registered scenario).
    seeds:
        Explicit seeds to build each scenario with; labels are
        ``"<name>#<seed>"`` (just ``"<name>"`` when a single seed is swept).
        Mutually exclusive with ``base_seed``.
    base_seed:
        Spawn ``seeds_per_scenario`` seeds per scenario from this base via
        :func:`spawn_scenario_seeds`; labels are ``"<name>#<position>"``
        (just ``"<name>"`` for a single seed per scenario).
    seeds_per_scenario:
        Number of spawned seeds per scenario when ``base_seed`` is given.
    """
    if names is None:
        names = available_scenarios()
    if not names:
        raise WorkloadError("a scenario sweep needs at least one scenario name")
    unknown = [name for name in names if name not in _SCENARIOS]
    if unknown:
        raise WorkloadError(
            f"unknown scenario(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(available_scenarios())}"
        )
    if seeds is not None and base_seed is not None:
        raise WorkloadError("pass either explicit seeds or a base_seed, not both")

    specs: List[ScenarioSpec] = []
    if base_seed is not None:
        if seeds_per_scenario < 1:
            raise WorkloadError("a scenario sweep needs at least one seed")
        for name in names:
            for position, seed in enumerate(
                spawn_scenario_seeds(base_seed, name, seeds_per_scenario)
            ):
                label = name if seeds_per_scenario == 1 else f"{name}#{position}"
                specs.append(ScenarioSpec(label=label, scenario=name, seed=seed))
        return specs

    if seeds is None:
        seeds = (None,)
    if not seeds:
        raise WorkloadError("a scenario sweep needs at least one seed")
    for name in names:
        for seed in seeds:
            label = name if len(seeds) == 1 else f"{name}#{seed}"
            specs.append(ScenarioSpec(label=label, scenario=name, seed=seed))
    return specs


def scenario_sweep(
    names: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[Optional[int]]] = None,
    *,
    base_seed: Optional[int] = None,
    seeds_per_scenario: int = 1,
) -> Tuple[List[str], List[Instance]]:
    """Materialise a ``(labels, instances)`` sweep over scenarios and seeds.

    The list format feeds straight into
    :func:`repro.analysis.campaign.run_policy_campaign`.  For sweeps too
    large to materialise up front, pass the lazy :func:`scenario_grid` specs
    to :func:`repro.analysis.campaign.run_scenario_campaign` instead, which
    builds each instance inside a worker.  Seeding is reproducible
    independent of worker count and chunking: either list explicit ``seeds``
    or let ``base_seed`` spawn per-scenario seeds
    (see :func:`spawn_scenario_seeds`).
    """
    specs = scenario_grid(
        names, seeds, base_seed=base_seed, seeds_per_scenario=seeds_per_scenario
    )
    return [spec.label for spec in specs], [spec.build() for spec in specs]
