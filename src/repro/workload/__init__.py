"""Workload generation, named scenarios and trace I/O (substrate S12)."""

from .generators import (
    ArrivalProcess,
    poisson_arrivals,
    random_correlated_instance,
    random_restricted_instance,
    random_unrelated_instance,
    uniform_arrivals,
)
from .perturbation import perturb_costs, perturb_release_dates, scale_load
from .scenarios import (
    Scenario,
    ScenarioSpec,
    available_scenarios,
    make_scenario,
    scenario_grid,
    scenario_sweep,
    spawn_scenario_seeds,
)
from .streams import (
    ArrivalEvent,
    StreamSpec,
    WorkloadStream,
    open_stream,
    replay_stream,
    spawn_stream_seeds,
)
from .traces import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "ArrivalEvent",
    "ArrivalProcess",
    "Scenario",
    "ScenarioSpec",
    "StreamSpec",
    "WorkloadStream",
    "open_stream",
    "replay_stream",
    "spawn_stream_seeds",
    "available_scenarios",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "load_schedule",
    "make_scenario",
    "scenario_grid",
    "scenario_sweep",
    "spawn_scenario_seeds",
    "perturb_costs",
    "perturb_release_dates",
    "poisson_arrivals",
    "random_correlated_instance",
    "random_restricted_instance",
    "random_unrelated_instance",
    "save_instance",
    "scale_load",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "uniform_arrivals",
]
