"""Scheduling policies (substrate S11) and the unified policy registry.

The on-line policies are the baselines and the paper's own on-line adaptation
used in experiment E4 (Section 5 simulation claim); the off-line LP optimum is
registered alongside them, so every consumer (CLI, campaigns, benches)
resolves policies by name through one path — see
:mod:`repro.heuristics.registry`.

========================  ==============================================  ==========
Name                      Class                                            Model
========================  ==============================================  ==========
``fifo``                  :class:`FIFOScheduler`                           non-preemptive
``spt``                   :class:`SPTScheduler`                            non-preemptive
``mct``                   :class:`MCTScheduler`                            non-preemptive
``srpt``                  :class:`SRPTScheduler`                           preemptive
``greedy-weighted-flow``  :class:`GreedyWeightedFlowScheduler`             preemptive
``round-robin``           :class:`RoundRobinScheduler`                     divisible
``deadline-driven``       :class:`DeadlineDrivenScheduler`                 preemptive
``online-offline``        :class:`OnlineOfflineAdaptationScheduler`        divisible (LP based)
``offline-optimal``       :class:`~repro.heuristics.registry.OfflineOptimalPolicy`  off-line LP
========================  ==============================================  ==========

Custom policies plug in through :func:`register_online_scheduler` (an
``OnlineScheduler`` subclass) or :func:`register_policy` (anything
implementing :class:`SchedulingPolicy`).

Parameterised variants
----------------------
Policies with a typed parameter schema (``PolicySpec.params``) resolve
variant tokens everywhere a name is accepted — ``make_policy``,
``make_scheduler``, campaigns, the CLI::

    make_policy("online-offline:period=2,relative_precision=1e-2")
    repro-sched campaign --policies online-offline:period=2,deadline-driven

Values equal to the registered default are dropped, so equivalent specs
share one canonical label and one store cell digest (the policy ``params``
slot of :func:`repro.store.record_digest`).
"""

from typing import List

from .base import OnlineScheduler, cheapest_eligible_machine, exclusive_allocation
from .deadline_driven import DeadlineDrivenScheduler
from .list_scheduling import FIFOScheduler, SPTScheduler
from .mct import MCTScheduler
from .online_offline import OnlineOfflineAdaptationScheduler
from .preemptive_policies import GreedyWeightedFlowScheduler, SRPTScheduler
from .registry import (
    OFFLINE_OPTIMAL,
    OfflineOptimalPolicy,
    OnlinePolicy,
    PolicyOutcome,
    PolicyParam,
    PolicySpec,
    PolicyVariant,
    SchedulingPolicy,
    available_policies,
    make_policy,
    make_scheduler,
    policy_spec,
    register_online_scheduler,
    register_policy,
    resolve_policy_variant,
    unregister_policy,
)
from .round_robin import RoundRobinScheduler

__all__ = [
    "DeadlineDrivenScheduler",
    "FIFOScheduler",
    "GreedyWeightedFlowScheduler",
    "MCTScheduler",
    "OFFLINE_OPTIMAL",
    "OfflineOptimalPolicy",
    "OnlineOfflineAdaptationScheduler",
    "OnlinePolicy",
    "OnlineScheduler",
    "PolicyOutcome",
    "PolicyParam",
    "PolicySpec",
    "PolicyVariant",
    "RoundRobinScheduler",
    "SPTScheduler",
    "SRPTScheduler",
    "SchedulingPolicy",
    "available_policies",
    "available_schedulers",
    "cheapest_eligible_machine",
    "exclusive_allocation",
    "make_policy",
    "make_scheduler",
    "policy_spec",
    "register_online_scheduler",
    "register_policy",
    "resolve_policy_variant",
    "unregister_policy",
]

#: Sweepable-parameter schemas of the parameterised built-ins.  The defaults
#: MUST mirror the constructor defaults: resolve_policy_variant drops
#: explicit defaults so equivalent variant specs share one cell digest.
_ONLINE_OFFLINE_PARAMS = (
    PolicyParam("relative_precision", float, 1e-3, "bisection/probe tolerance on F"),
    PolicyParam("max_bisection_steps", int, 40, "bisection-step cap per replanning"),
    PolicyParam("period", float, None, "forced replanning period (None: event-driven)"),
    PolicyParam("preemptive", bool, False, "plan in the preemptive model"),
    PolicyParam("backend", str, "scipy", "LP backend for the feasibility probes"),
    PolicyParam("parametric", bool, True, "share one ReplanProbe across events"),
)
_DEADLINE_DRIVEN_PARAMS = (
    PolicyParam("initial_target", float, None, "starting max-weighted-flow target"),
    PolicyParam("growth_factor", float, 1.5, "multiplicative target growth"),
    PolicyParam("lp_targets", bool, False, "relocate violated targets with LP probes"),
    PolicyParam("backend", str, "scipy", "LP backend for lp_targets probes"),
)
_OFFLINE_OPTIMAL_PARAMS = (
    PolicyParam("preemptive", bool, False, "optimise the preemptive model"),
    PolicyParam("backend", str, "scipy", "LP backend for the milestone search"),
)

#: Built-in on-line schedulers, registered below.
_BUILTIN_SCHEDULERS = (
    ("fifo", FIFOScheduler, "first-in first-out list scheduling", ()),
    ("spt", SPTScheduler, "shortest processing time first", ()),
    ("mct", MCTScheduler, "minimum completion time (the paper's baseline)", ()),
    ("srpt", SRPTScheduler, "shortest remaining processing time (preemptive)", ()),
    (
        "greedy-weighted-flow",
        GreedyWeightedFlowScheduler,
        "largest weighted flow first (preemptive)",
        (),
    ),
    ("round-robin", RoundRobinScheduler, "equal processor sharing (divisible)", ()),
    (
        "deadline-driven",
        DeadlineDrivenScheduler,
        "earliest-deadline-driven (preemptive)",
        _DEADLINE_DRIVEN_PARAMS,
    ),
    (
        "online-offline",
        OnlineOfflineAdaptationScheduler,
        "on-line adaptation of the off-line LP algorithm (Section 5)",
        _ONLINE_OFFLINE_PARAMS,
    ),
)

for _name, _factory, _description, _params in _BUILTIN_SCHEDULERS:
    if _name not in available_policies():
        register_online_scheduler(
            _name, _factory, description=_description, params=_params
        )

if OFFLINE_OPTIMAL not in available_policies():
    register_policy(
        PolicySpec(
            name=OFFLINE_OPTIMAL,
            kind="offline",
            factory=OfflineOptimalPolicy,
            description="off-line LP optimum (Theorem 2 milestone search)",
            params=_OFFLINE_OPTIMAL_PARAMS,
        )
    )


def available_schedulers() -> List[str]:
    """Return the names of all registered on-line policies."""
    return available_policies(kind="online")
