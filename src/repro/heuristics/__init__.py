"""On-line scheduling policies (substrate S11).

The policies are the baselines and the paper's own on-line adaptation used in
experiment E4 (Section 5 simulation claim):

========================  ==============================================  ==========
Name                      Class                                            Model
========================  ==============================================  ==========
``fifo``                  :class:`FIFOScheduler`                           non-preemptive
``spt``                   :class:`SPTScheduler`                            non-preemptive
``mct``                   :class:`MCTScheduler`                            non-preemptive
``srpt``                  :class:`SRPTScheduler`                           preemptive
``greedy-weighted-flow``  :class:`GreedyWeightedFlowScheduler`             preemptive
``round-robin``           :class:`RoundRobinScheduler`                     divisible
``deadline-driven``       :class:`DeadlineDrivenScheduler`                 preemptive
``online-offline``        :class:`OnlineOfflineAdaptationScheduler`        divisible (LP based)
========================  ==============================================  ==========
"""

from typing import Callable, Dict, List

from .base import OnlineScheduler, cheapest_eligible_machine, exclusive_allocation
from .deadline_driven import DeadlineDrivenScheduler
from .list_scheduling import FIFOScheduler, SPTScheduler
from .mct import MCTScheduler
from .online_offline import OnlineOfflineAdaptationScheduler
from .preemptive_policies import GreedyWeightedFlowScheduler, SRPTScheduler
from .round_robin import RoundRobinScheduler

__all__ = [
    "DeadlineDrivenScheduler",
    "FIFOScheduler",
    "GreedyWeightedFlowScheduler",
    "MCTScheduler",
    "OnlineOfflineAdaptationScheduler",
    "OnlineScheduler",
    "RoundRobinScheduler",
    "SPTScheduler",
    "SRPTScheduler",
    "available_schedulers",
    "cheapest_eligible_machine",
    "exclusive_allocation",
    "make_scheduler",
]

#: Factory registry used by the benches and examples.
_REGISTRY: Dict[str, Callable[[], OnlineScheduler]] = {
    "fifo": FIFOScheduler,
    "spt": SPTScheduler,
    "mct": MCTScheduler,
    "srpt": SRPTScheduler,
    "greedy-weighted-flow": GreedyWeightedFlowScheduler,
    "round-robin": RoundRobinScheduler,
    "deadline-driven": DeadlineDrivenScheduler,
    "online-offline": OnlineOfflineAdaptationScheduler,
}


def available_schedulers() -> List[str]:
    """Return the names of all registered on-line policies."""
    return sorted(_REGISTRY)


def make_scheduler(name: str, **kwargs) -> OnlineScheduler:
    """Instantiate a policy by name (see :func:`available_schedulers`)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    return factory(**kwargs)
