"""Scheduling policies (substrate S11) and the unified policy registry.

The on-line policies are the baselines and the paper's own on-line adaptation
used in experiment E4 (Section 5 simulation claim); the off-line LP optimum is
registered alongside them, so every consumer (CLI, campaigns, benches)
resolves policies by name through one path — see
:mod:`repro.heuristics.registry`.

========================  ==============================================  ==========
Name                      Class                                            Model
========================  ==============================================  ==========
``fifo``                  :class:`FIFOScheduler`                           non-preemptive
``spt``                   :class:`SPTScheduler`                            non-preemptive
``mct``                   :class:`MCTScheduler`                            non-preemptive
``srpt``                  :class:`SRPTScheduler`                           preemptive
``greedy-weighted-flow``  :class:`GreedyWeightedFlowScheduler`             preemptive
``round-robin``           :class:`RoundRobinScheduler`                     divisible
``deadline-driven``       :class:`DeadlineDrivenScheduler`                 preemptive
``online-offline``        :class:`OnlineOfflineAdaptationScheduler`        divisible (LP based)
``offline-optimal``       :class:`~repro.heuristics.registry.OfflineOptimalPolicy`  off-line LP
========================  ==============================================  ==========

Custom policies plug in through :func:`register_online_scheduler` (an
``OnlineScheduler`` subclass) or :func:`register_policy` (anything
implementing :class:`SchedulingPolicy`).
"""

from typing import List

from .base import OnlineScheduler, cheapest_eligible_machine, exclusive_allocation
from .deadline_driven import DeadlineDrivenScheduler
from .list_scheduling import FIFOScheduler, SPTScheduler
from .mct import MCTScheduler
from .online_offline import OnlineOfflineAdaptationScheduler
from .preemptive_policies import GreedyWeightedFlowScheduler, SRPTScheduler
from .registry import (
    OFFLINE_OPTIMAL,
    OfflineOptimalPolicy,
    OnlinePolicy,
    PolicyOutcome,
    PolicySpec,
    SchedulingPolicy,
    available_policies,
    make_policy,
    make_scheduler,
    policy_spec,
    register_online_scheduler,
    register_policy,
    unregister_policy,
)
from .round_robin import RoundRobinScheduler

__all__ = [
    "DeadlineDrivenScheduler",
    "FIFOScheduler",
    "GreedyWeightedFlowScheduler",
    "MCTScheduler",
    "OFFLINE_OPTIMAL",
    "OfflineOptimalPolicy",
    "OnlineOfflineAdaptationScheduler",
    "OnlinePolicy",
    "OnlineScheduler",
    "PolicyOutcome",
    "PolicySpec",
    "RoundRobinScheduler",
    "SPTScheduler",
    "SRPTScheduler",
    "SchedulingPolicy",
    "available_policies",
    "available_schedulers",
    "cheapest_eligible_machine",
    "exclusive_allocation",
    "make_policy",
    "make_scheduler",
    "policy_spec",
    "register_online_scheduler",
    "register_policy",
    "unregister_policy",
]

#: Built-in on-line schedulers, registered below.
_BUILTIN_SCHEDULERS = (
    ("fifo", FIFOScheduler, "first-in first-out list scheduling"),
    ("spt", SPTScheduler, "shortest processing time first"),
    ("mct", MCTScheduler, "minimum completion time (the paper's baseline)"),
    ("srpt", SRPTScheduler, "shortest remaining processing time (preemptive)"),
    (
        "greedy-weighted-flow",
        GreedyWeightedFlowScheduler,
        "largest weighted flow first (preemptive)",
    ),
    ("round-robin", RoundRobinScheduler, "equal processor sharing (divisible)"),
    ("deadline-driven", DeadlineDrivenScheduler, "earliest-deadline-driven (preemptive)"),
    (
        "online-offline",
        OnlineOfflineAdaptationScheduler,
        "on-line adaptation of the off-line LP algorithm (Section 5)",
    ),
)

for _name, _factory, _description in _BUILTIN_SCHEDULERS:
    if _name not in available_policies():
        register_online_scheduler(_name, _factory, description=_description)

if OFFLINE_OPTIMAL not in available_policies():
    register_policy(
        PolicySpec(
            name=OFFLINE_OPTIMAL,
            kind="offline",
            factory=OfflineOptimalPolicy,
            description="off-line LP optimum (Theorem 2 milestone search)",
        )
    )


def available_schedulers() -> List[str]:
    """Return the names of all registered on-line policies."""
    return available_policies(kind="online")
