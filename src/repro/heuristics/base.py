"""Base class and helpers for on-line scheduling policies.

A policy implements :meth:`OnlineScheduler.decide`: given the current
:class:`~repro.simulation.state.SimulationState`, it returns an
:class:`~repro.simulation.state.AllocationDecision` describing how each
machine splits its time among the active jobs until the next event.

Policies fall into three families:

* **non-preemptive list schedulers** (FIFO, SPT, MCT): a job, once started on
  a machine, runs there to completion;
* **preemptive single-machine policies** (SRPT, greedy weighted flow): jobs
  may migrate between machines at events but never use two machines at once;
* **divisible policies** (round-robin processor sharing, the on-line
  adaptation of the off-line algorithm): machine time may be split
  arbitrarily, as the divisible-load model allows.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Iterable, List, Optional

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState

__all__ = ["OnlineScheduler", "exclusive_allocation", "cheapest_eligible_machine"]


class OnlineScheduler(abc.ABC):
    """Protocol every on-line policy implements.

    Attributes
    ----------
    name:
        Human-readable policy name (appears in simulation results and bench
        tables).
    divisible:
        Whether the policy may split a job across machines simultaneously.
        Stored on the resulting :class:`~repro.core.schedule.Schedule` so that
        validation applies the right rules.
    array_aware:
        Opt-in capability flag of the parametric replanning runtime.  A
        policy that sets it ``True`` promises to read per-job dynamic state
        only through the pooled numpy vectors
        (:attr:`~repro.simulation.state.SimulationState.remaining_vector` /
        ``rate_vector``, directly or via the state's scalar accessors, which
        prefer the vectors).  The array-backed kernel then dispatches to
        :meth:`decide_arrays` and skips the per-event ``JobProgress`` mirror
        updates entirely; legacy policies (the default) are untouched and the
        executed output is byte-for-byte identical either way.
    """

    name: str = "scheduler"
    divisible: bool = False
    array_aware: bool = False

    def reset(self, instance: Instance) -> None:
        """Called once before a simulation starts; clear any internal state."""

    def rebind(self, instance: Instance) -> None:
        """Called by the streaming simulator when the window instance grows.

        Under the rolling-horizon :class:`~repro.simulation.stream.StreamingSimulator`
        the instance handed to :meth:`decide` is the *active window*: arrivals
        append new jobs (existing indices are stable).  Policies that
        precompute per-instance arrays at :meth:`reset` refresh them here;
        the default is a no-op, which is correct for policies that read the
        instance afresh at every decision.
        """

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        """Called by the streaming simulator after completed jobs are compacted out.

        ``mapping`` maps every *surviving* old window index to its new index
        (completed jobs are absent).  Policies holding index-keyed state
        remap it and keep going; the safe default resets the policy, which
        forgets cross-event state (plans, commitments) but never misbehaves.
        Overriding with an exact remap makes the policy's streamed behaviour
        independent of *when* compaction happens — the property the
        streaming tests assert.
        """
        self.reset(instance)

    @abc.abstractmethod
    def decide(self, state: SimulationState) -> AllocationDecision:
        """Return the allocation to apply from ``state.time`` until the next event."""

    def decide_arrays(self, state: SimulationState) -> AllocationDecision:
        """Array-aware variant of :meth:`decide`.

        Invoked by the kernel instead of :meth:`decide` when ``array_aware``
        is set.  ``state.remaining_vector`` is guaranteed to be bound.  The
        default delegates to :meth:`decide`, which suffices for policies
        whose scalar reads already go through the (vector-preferring) state
        accessors; policies wanting vectorised ranking override this.
        """
        return self.decide(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


def exclusive_allocation(assignments: Dict[int, int]) -> AllocationDecision:
    """Build a decision giving each machine exclusively to one job.

    Parameters
    ----------
    assignments:
        Mapping ``machine_index -> job_index``.
    """
    return AllocationDecision(
        shares={machine: [(job, 1.0)] for machine, job in assignments.items()},
        all_exclusive=True,
    )


def cheapest_eligible_machine(
    instance: Instance, job_index: int, machines: Optional[Iterable[int]] = None
) -> Optional[int]:
    """Return the machine with the smallest ``c[i, j]`` among ``machines``.

    ``None`` when no machine in the pool can process the job.
    """
    pool: List[int] = list(machines) if machines is not None else list(range(instance.num_machines))
    best: Optional[int] = None
    best_cost = math.inf
    for machine_index in pool:
        cost = instance.cost(machine_index, job_index)
        if cost < best_cost:
            best_cost = cost
            best = machine_index
    if best is not None and math.isinf(best_cost):
        return None
    return best
