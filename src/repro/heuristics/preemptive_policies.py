"""Preemptive single-machine-at-a-time policies: SRPT and greedy weighted flow.

Both policies re-evaluate their priorities at every event and may migrate a
job to another machine, but never run a job on two machines at the same time
(so their schedules are valid in the preemptive, non-divisible model of
Section 4.4).

* **SRPT** (shortest remaining processing time first) is the classical
  flow-time heuristic: the jobs closest to completion get the machines.
* **Greedy weighted flow** targets the paper's objective directly: the job
  whose weighted flow would degrade the fastest gets the best machine.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler, exclusive_allocation

__all__ = ["SRPTScheduler", "GreedyWeightedFlowScheduler"]


class _PriorityPreemptiveScheduler(OnlineScheduler):
    """Shared machinery: rank active jobs, give each its fastest free machine."""

    divisible = False

    def reset(self, instance: Instance) -> None:  # nothing to keep between runs
        return None

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        raise NotImplementedError

    def decide(self, state: SimulationState) -> AllocationDecision:
        instance = state.instance
        free_machines = set(range(instance.num_machines))
        assignments: Dict[int, int] = {}
        for job_index in self._ranked_jobs(state):
            if not free_machines:
                break
            best_machine = None
            best_cost = math.inf
            for machine_index in free_machines:
                cost = instance.cost(machine_index, job_index)
                if cost < best_cost:
                    best_cost = cost
                    best_machine = machine_index
            if best_machine is None or math.isinf(best_cost):
                continue
            assignments[best_machine] = job_index
            free_machines.discard(best_machine)
        return exclusive_allocation(assignments)


class SRPTScheduler(_PriorityPreemptiveScheduler):
    """Shortest remaining processing time first (preemptive)."""

    name = "srpt"

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        return sorted(state.active_jobs(), key=state.fastest_remaining_work)


class GreedyWeightedFlowScheduler(_PriorityPreemptiveScheduler):
    """Largest-weighted-flow-first (preemptive).

    The priority of a job is the weighted flow it would reach if it completed
    after running alone on its fastest machine from now on:
    ``w_j (now - r_j + remaining_j)``.  Jobs that threaten the objective the
    most are served first — a natural greedy proxy for minimising the maximum
    weighted flow without solving any LP.
    """

    name = "greedy-weighted-flow"

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        def priority(job_index: int) -> float:
            job = state.instance.jobs[job_index]
            projected_flow = (
                state.time - job.release_date + state.fastest_remaining_work(job_index)
            )
            return -job.weight * projected_flow

        return sorted(state.active_jobs(), key=priority)
