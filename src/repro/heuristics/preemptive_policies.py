"""Preemptive single-machine-at-a-time policies: SRPT and greedy weighted flow.

Both policies re-evaluate their priorities at every event and may migrate a
job to another machine, but never run a job on two machines at the same time
(so their schedules are valid in the preemptive, non-divisible model of
Section 4.4).

* **SRPT** (shortest remaining processing time first) is the classical
  flow-time heuristic: the jobs closest to completion get the machines.
* **Greedy weighted flow** targets the paper's objective directly: the job
  whose weighted flow would degrade the fastest gets the best machine.

Both are *array-aware*: inside the array-backed kernel their rankings are
computed on the pooled remaining-fraction vector with vectorised numpy
expressions (same IEEE-754 operations in the same order as the scalar path,
followed by a stable argsort — the ordering, and hence the executed
schedule, is byte-for-byte identical to the scalar path the seed engine
drives).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler

__all__ = ["SRPTScheduler", "GreedyWeightedFlowScheduler"]


class _PriorityPreemptiveScheduler(OnlineScheduler):
    """Shared machinery: rank active jobs, give each its fastest free machine."""

    divisible = False
    array_aware = True

    def __init__(self) -> None:
        self._min_costs: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._releases: Optional[np.ndarray] = None
        self._cost_rows: Optional[List[List[float]]] = None
        self._job_lists: Optional[tuple] = None

    def reset(self, instance: Instance) -> None:
        self.rebind(instance)

    def rebind(self, instance: Instance) -> None:
        # Static per-instance vectors consumed by the array ranking path;
        # refreshed whenever the streaming window grows or compacts.  The
        # accessor is O(1) on the streaming InstanceView (zero-copy slices
        # of the window metadata) and cached on frozen Instances, so this
        # hook is constant-time in both runtimes.  The cost rows alias the
        # window's Python-float rows (mutated in place, so the cached
        # reference stays current); ``None`` on plain instances.
        self._min_costs, self._weights, self._releases = instance.job_vectors()
        self._cost_rows = getattr(instance, "costs_rows", None)
        self._job_lists = getattr(instance, "job_lists", None)

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # No index-keyed state beyond the per-instance vectors: re-derive them.
        self.rebind(instance)

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        raise NotImplementedError

    def _ranking_keys(self, state: SimulationState, active: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _rank_scalar(self, state: SimulationState, active: List[int]) -> List[int]:
        """Scalar twin of :meth:`_ranking_keys` + stable argsort.

        Runs over the streaming window's Python-float metadata lists with
        ``sorted`` — the keys are the same IEEE-754 doubles the vector path
        computes and both sorts are stable over ascending active indices,
        so the ranking (and the schedule) is identical.
        """
        raise NotImplementedError

    def _assign(self, state: SimulationState, ranked) -> AllocationDecision:
        # Ascending machine scan with a strict "<": each job takes the
        # lowest-index free machine achieving its minimum cost.  The costs
        # are read per machine row — Python floats on the streaming view
        # (``costs_rows``), row views of the ndarray elsewhere — skipping
        # both the scalar ``instance.cost`` accessor and per-element
        # float64 boxing.
        instance = state.instance
        rows = self._cost_rows
        if rows is None:
            rows = getattr(instance, "costs_rows", None)
            if rows is None:
                rows = list(instance.costs)
        free_machines = list(range(instance.num_machines))
        # Built in assignment order — the same dict exclusive_allocation
        # would produce, without the intermediate assignments mapping.
        shares: Dict[int, List] = {}
        for job_index in ranked:
            if not free_machines:
                break
            best_machine = -1
            best_cost = math.inf
            for machine_index in free_machines:
                cost = rows[machine_index][job_index]
                if cost < best_cost:
                    best_cost = cost
                    best_machine = machine_index
            if best_machine < 0 or math.isinf(best_cost):
                continue
            shares[best_machine] = [(job_index, 1.0)]
            free_machines.remove(best_machine)
        return AllocationDecision(shares=shares, all_exclusive=True)

    def decide(self, state: SimulationState) -> AllocationDecision:
        return self._assign(state, self._ranked_jobs(state))

    def decide_arrays(self, state: SimulationState) -> AllocationDecision:
        """Vectorised ranking over the kernel's pooled remaining vector.

        ``np.argsort(kind="stable")`` on identical keys reproduces the scalar
        path's stable ``sorted`` ordering exactly (active indices ascend), so
        the decisions — and the executed schedule — are byte-identical.
        """
        if self._min_costs is None or state.remaining_vector is None:
            return self.decide(state)
        active_list = state.active if state.active is not None else state.active_jobs()
        if not active_list:
            return AllocationDecision()
        if self._job_lists is not None:
            return self._assign(state, self._rank_scalar(state, active_list))
        active = np.asarray(active_list, dtype=np.intp)
        keys = self._ranking_keys(state, active)
        ranked = active[keys.argsort(kind="stable")]
        return self._assign(state, ranked.tolist())


class SRPTScheduler(_PriorityPreemptiveScheduler):
    """Shortest remaining processing time first (preemptive)."""

    name = "srpt"

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        return sorted(state.active_jobs(), key=state.fastest_remaining_work)

    def _ranking_keys(self, state: SimulationState, active: np.ndarray) -> np.ndarray:
        return state.remaining_vector[active] * self._min_costs[active]

    def _rank_scalar(self, state: SimulationState, active: List[int]) -> List[int]:
        mins = self._job_lists[0]
        rem = state.remaining_list
        if rem is None:
            remaining = state.remaining_vector.item
            return sorted(active, key=lambda j: remaining(j) * mins[j])
        return sorted(active, key=lambda j: rem[j] * mins[j])


class GreedyWeightedFlowScheduler(_PriorityPreemptiveScheduler):
    """Largest-weighted-flow-first (preemptive).

    The priority of a job is the weighted flow it would reach if it completed
    after running alone on its fastest machine from now on:
    ``w_j (now - r_j + remaining_j)``.  Jobs that threaten the objective the
    most are served first — a natural greedy proxy for minimising the maximum
    weighted flow without solving any LP.
    """

    name = "greedy-weighted-flow"

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        def priority(job_index: int) -> float:
            job = state.instance.jobs[job_index]
            projected_flow = (
                state.time - job.release_date + state.fastest_remaining_work(job_index)
            )
            return -job.weight * projected_flow

        return sorted(state.active_jobs(), key=priority)

    def _ranking_keys(self, state: SimulationState, active: np.ndarray) -> np.ndarray:
        projected = (state.time - self._releases[active]) + (
            state.remaining_vector[active] * self._min_costs[active]
        )
        return (-self._weights[active]) * projected

    def _rank_scalar(self, state: SimulationState, active: List[int]) -> List[int]:
        mins, weights, releases = self._job_lists
        time = state.time
        rem = state.remaining_list
        if rem is None:
            remaining = state.remaining_vector.item
            return sorted(
                active,
                key=lambda j: (-weights[j])
                * ((time - releases[j]) + remaining(j) * mins[j]),
            )
        return sorted(
            active,
            key=lambda j: (-weights[j]) * ((time - releases[j]) + rem[j] * mins[j]),
        )
