"""Preemptive single-machine-at-a-time policies: SRPT and greedy weighted flow.

Both policies re-evaluate their priorities at every event and may migrate a
job to another machine, but never run a job on two machines at the same time
(so their schedules are valid in the preemptive, non-divisible model of
Section 4.4).

* **SRPT** (shortest remaining processing time first) is the classical
  flow-time heuristic: the jobs closest to completion get the machines.
* **Greedy weighted flow** targets the paper's objective directly: the job
  whose weighted flow would degrade the fastest gets the best machine.

Both are *array-aware*: inside the array-backed kernel their rankings are
computed on the pooled remaining-fraction vector with vectorised numpy
expressions (same IEEE-754 operations in the same order as the scalar path,
followed by a stable argsort — the ordering, and hence the executed
schedule, is byte-for-byte identical to the scalar path the seed engine
drives).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler, exclusive_allocation

__all__ = ["SRPTScheduler", "GreedyWeightedFlowScheduler"]


class _PriorityPreemptiveScheduler(OnlineScheduler):
    """Shared machinery: rank active jobs, give each its fastest free machine."""

    divisible = False
    array_aware = True

    def __init__(self) -> None:
        self._min_costs: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._releases: Optional[np.ndarray] = None

    def reset(self, instance: Instance) -> None:
        self.rebind(instance)

    def rebind(self, instance: Instance) -> None:
        # Static per-instance vectors consumed by the array ranking path;
        # refreshed whenever the streaming window grows or compacts.
        n = instance.num_jobs
        self._min_costs = np.fromiter(
            (instance.min_cost(j) for j in range(n)), dtype=float, count=n
        )
        self._weights = np.fromiter(
            (job.weight for job in instance.jobs), dtype=float, count=n
        )
        self._releases = np.fromiter(
            (job.release_date for job in instance.jobs), dtype=float, count=n
        )

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # No index-keyed state beyond the per-instance vectors: re-derive them.
        self.rebind(instance)

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        raise NotImplementedError

    def _ranking_keys(self, state: SimulationState, active: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _assign(self, state: SimulationState, ranked) -> AllocationDecision:
        instance = state.instance
        free_machines = set(range(instance.num_machines))
        assignments: Dict[int, int] = {}
        for job_index in ranked:
            if not free_machines:
                break
            best_machine = None
            best_cost = math.inf
            for machine_index in free_machines:
                cost = instance.cost(machine_index, job_index)
                if cost < best_cost:
                    best_cost = cost
                    best_machine = machine_index
            if best_machine is None or math.isinf(best_cost):
                continue
            assignments[best_machine] = job_index
            free_machines.discard(best_machine)
        return exclusive_allocation(assignments)

    def decide(self, state: SimulationState) -> AllocationDecision:
        return self._assign(state, self._ranked_jobs(state))

    def decide_arrays(self, state: SimulationState) -> AllocationDecision:
        """Vectorised ranking over the kernel's pooled remaining vector.

        ``np.argsort(kind="stable")`` on identical keys reproduces the scalar
        path's stable ``sorted`` ordering exactly (active indices ascend), so
        the decisions — and the executed schedule — are byte-identical.
        """
        if self._min_costs is None or state.remaining_vector is None:
            return self.decide(state)
        active = np.asarray(state.active_jobs(), dtype=np.intp)
        if active.size == 0:
            return AllocationDecision()
        keys = self._ranking_keys(state, active)
        ranked = active[np.argsort(keys, kind="stable")]
        return self._assign(state, (int(j) for j in ranked))


class SRPTScheduler(_PriorityPreemptiveScheduler):
    """Shortest remaining processing time first (preemptive)."""

    name = "srpt"

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        return sorted(state.active_jobs(), key=state.fastest_remaining_work)

    def _ranking_keys(self, state: SimulationState, active: np.ndarray) -> np.ndarray:
        return state.remaining_vector[active] * self._min_costs[active]


class GreedyWeightedFlowScheduler(_PriorityPreemptiveScheduler):
    """Largest-weighted-flow-first (preemptive).

    The priority of a job is the weighted flow it would reach if it completed
    after running alone on its fastest machine from now on:
    ``w_j (now - r_j + remaining_j)``.  Jobs that threaten the objective the
    most are served first — a natural greedy proxy for minimising the maximum
    weighted flow without solving any LP.
    """

    name = "greedy-weighted-flow"

    def _ranked_jobs(self, state: SimulationState) -> List[int]:
        def priority(job_index: int) -> float:
            job = state.instance.jobs[job_index]
            projected_flow = (
                state.time - job.release_date + state.fastest_remaining_work(job_index)
            )
            return -job.weight * projected_flow

        return sorted(state.active_jobs(), key=priority)

    def _ranking_keys(self, state: SimulationState, active: np.ndarray) -> np.ndarray:
        projected = (state.time - self._releases[active]) + (
            state.remaining_vector[active] * self._min_costs[active]
        )
        return (-self._weights[active]) * projected
