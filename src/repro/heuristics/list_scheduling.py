"""Non-preemptive list-scheduling policies: FIFO and SPT.

Both policies keep a single global queue of jobs waiting to start.  Whenever
a machine is idle it takes the highest-priority queued job it is able to run
(databank present), and then runs it to completion without interruption.

* **FIFO** orders the queue by release date (then name) — the most common
  baseline in production bioinformatics portals.
* **SPT** (shortest processing time) orders the queue by the job's processing
  time on the machine under consideration, a classical flow-time heuristic.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler, exclusive_allocation

__all__ = ["FIFOScheduler", "SPTScheduler"]


class _ListScheduler(OnlineScheduler):
    """Shared machinery: sticky job→machine commitments plus a ranked queue."""

    divisible = False

    def __init__(self) -> None:
        self._commitment: Dict[int, int] = {}  # job_index -> machine_index

    def reset(self, instance: Instance) -> None:
        self._commitment = {}

    def rebind(self, instance: Instance) -> None:
        # Commitments are keyed by job index and window growth keeps existing
        # indices stable, so there is nothing to refresh.
        return None

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # Sticky commitments survive window compaction under the new indices.
        self._commitment = {
            mapping[job]: machine
            for job, machine in self._commitment.items()
            if job in mapping
        }

    # -- to be provided by subclasses -------------------------------------
    def _priority(self, state: SimulationState, job_index: int, machine_index: int) -> float:
        raise NotImplementedError

    # ----------------------------------------------------------------------
    def decide(self, state: SimulationState) -> AllocationDecision:
        instance = state.instance
        active = set(state.active_jobs())

        # Drop commitments of finished jobs.
        self._commitment = {
            job: machine for job, machine in self._commitment.items() if job in active
        }

        busy_machines = set(self._commitment.values())
        committed_jobs = set(self._commitment)

        # Give idle machines to the best uncommitted job they can run.
        for machine_index in range(instance.num_machines):
            if machine_index in busy_machines:
                continue
            best_job: Optional[int] = None
            best_priority = math.inf
            for job_index in active:
                if job_index in committed_jobs:
                    continue
                if math.isinf(instance.cost(machine_index, job_index)):
                    continue
                priority = self._priority(state, job_index, machine_index)
                if priority < best_priority:
                    best_priority = priority
                    best_job = job_index
            if best_job is not None:
                self._commitment[best_job] = machine_index
                busy_machines.add(machine_index)
                committed_jobs.add(best_job)

        assignments = {machine: job for job, machine in self._commitment.items()}
        return exclusive_allocation(assignments)


class FIFOScheduler(_ListScheduler):
    """First-in first-out list scheduling (non-preemptive)."""

    name = "fifo"

    def _priority(self, state: SimulationState, job_index: int, machine_index: int) -> float:
        job = state.instance.jobs[job_index]
        return job.release_date

    def __init__(self) -> None:
        super().__init__()


class SPTScheduler(_ListScheduler):
    """Shortest-processing-time-first list scheduling (non-preemptive)."""

    name = "spt"

    def _priority(self, state: SimulationState, job_index: int, machine_index: int) -> float:
        return state.instance.cost(machine_index, job_index)

    def __init__(self) -> None:
        super().__init__()
