"""Round-robin processor sharing — a simple divisible baseline.

Every machine divides its time equally among all the active jobs it is able
to process.  This is the "fair share" policy many clusters implement by
default; it exploits divisibility but ignores priorities and heterogeneity,
which is exactly why the LP-based policies beat it.
"""

from __future__ import annotations

import math
from typing import Dict

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(OnlineScheduler):
    """Equal processor sharing among the eligible active jobs (divisible)."""

    name = "round-robin"
    divisible = True

    def reset(self, instance: Instance) -> None:
        return None

    def rebind(self, instance: Instance) -> None:
        # Stateless: every decide() reads the instance afresh, so window
        # growth needs no refresh.
        return None

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # Stateless: no index-keyed state to remap, so compaction timing
        # cannot change the streamed behaviour.
        return None

    def decide(self, state: SimulationState) -> AllocationDecision:
        instance = state.instance
        active = state.active_jobs()
        shares = {}
        for machine_index in range(instance.num_machines):
            eligible = [
                job_index
                for job_index in active
                if not math.isinf(instance.cost(machine_index, job_index))
            ]
            if not eligible:
                continue
            share = 1.0 / len(eligible)
            shares[machine_index] = [(job_index, share) for job_index in eligible]
        return AllocationDecision(shares=shares)
