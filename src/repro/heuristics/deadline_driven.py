"""Deadline-driven on-line policy (EDF on the weighted-flow deadlines).

The transformation of Section 4.3.1 — a max-weighted-flow target ``F`` turns
into per-job deadlines ``d_j(F) = r_j + F / w_j`` — also suggests a very cheap
on-line heuristic that needs no LP at all:

1. maintain a current target ``F`` (starting from an optimistic fluid bound);
2. order active jobs by their induced deadline (earliest deadline first) and
   give each its fastest free machine;
3. whenever a job misses its induced deadline, raise the target (the classic
   doubling scheme used by on-line max-stretch algorithms) so that deadlines
   stay achievable.

The policy is preemptive but never divides a job across machines, so it is a
fair middle ground between the classical heuristics (MCT, SRPT) and the
LP-based adaptation: it uses the paper's *structure* (deadlines induced by
the objective) without its *machinery* (linear programming).

The ``lp_targets`` variant reintroduces exactly one piece of that machinery:
instead of multiplicative doubling, a stale target is re-located by a short
bisection backed by the shared :class:`~repro.core.replanning.ReplanProbe`
(feasibility of the remaining work against the induced deadlines), so the
deadlines the EDF ranking uses are the tightest achievable ones.  The default
(``lp_targets=False``) keeps the policy LP-free and byte-identical to its
pre-refactor behaviour.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.instance import Instance
from ..core.replanning import ReplanProbe, remaining_subinstance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler, exclusive_allocation

__all__ = ["DeadlineDrivenScheduler"]

#: Bisection steps for the LP-backed target search (the target is advisory —
#: EDF only needs the deadline *order* — so a coarse location suffices).
_LP_TARGET_STEPS = 12


class DeadlineDrivenScheduler(OnlineScheduler):
    """Earliest-deadline-first on the deadlines induced by a weighted-flow target.

    Parameters
    ----------
    initial_target:
        Initial max-weighted-flow target ``F``.  When ``None`` the policy
        starts from the fluid lower bound of the first jobs it sees.
    growth_factor:
        Multiplicative increase applied to the target whenever some active
        job can no longer meet its induced deadline.
    lp_targets:
        When ``True``, a violated target is re-located with feasibility
        probes through a shared :class:`~repro.core.replanning.ReplanProbe`
        instead of multiplicative doubling (see the module docstring).
    backend:
        LP backend for the ``lp_targets`` probes (unused otherwise).
    """

    name = "deadline-driven"
    divisible = False
    array_aware = True

    def __init__(
        self,
        initial_target: float | None = None,
        growth_factor: float = 1.5,
        lp_targets: bool = False,
        backend: str = "scipy",
        rank_keyed_probe: bool = True,
    ) -> None:
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be greater than 1")
        self.initial_target = initial_target
        self.growth_factor = growth_factor
        self.lp_targets = lp_targets
        self.backend = backend
        self._target = initial_target or 0.0
        # The target search only asks yes/no questions (build_schedule=False),
        # so the probe may canonicalise each sub-instance by deadline rank:
        # probes from different events share one LP skeleton per rank
        # pattern, which is what lifts the cache hit rate to the
        # ``online-offline`` level (bench_replanning.py asserts it).
        # ``rank_keyed_probe=False`` keeps the raw-structure reference path.
        self._probe: Optional[ReplanProbe] = (
            ReplanProbe(backend=backend, rank_keyed=rank_keyed_probe)
            if lp_targets
            else None
        )

    def reset(self, instance: Instance) -> None:
        self._target = self.initial_target or 0.0

    def rebind(self, instance: Instance) -> None:
        # The running target is index-free and deliberately survives window
        # growth (resetting it on every arrival would forget the adaptation);
        # deadlines are recomputed from the instance at each decide().
        return None

    def decide_arrays(self, state: SimulationState) -> AllocationDecision:
        # The scalar path already reads per-job dynamic state only through
        # the state's vector-preferring accessors (fastest_remaining_work),
        # so the array contract is the scalar decision, verbatim.
        return self.decide(state)

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # The running target is index-free and the probe is keyed purely by
        # LP structure: both survive window compaction untouched.
        return None

    @property
    def replan_probe(self) -> Optional[ReplanProbe]:
        """The shared parametric probe (``None`` unless ``lp_targets``)."""
        return self._probe

    # ------------------------------------------------------------------ #
    def _fluid_flow_bound(self, state: SimulationState, job_index: int) -> float:
        """Fluid-time weighted flow the job would reach finishing as fast as possible."""
        job = state.instance.jobs[job_index]
        best_finish = state.time + state.fastest_remaining_work(job_index)
        return job.weight * (best_finish - job.release_date)

    def _raise_target_if_needed(self, state: SimulationState, active: List[int]) -> None:
        """Ensure every active job can still (optimistically) meet its deadline."""
        needed = max((self._fluid_flow_bound(state, j) for j in active), default=0.0)
        if self._target <= 0.0:
            self._target = max(needed, 1e-9)
            if self.lp_targets and active:
                self._target = self._probed_target(state, active, self._target)
            return
        if self._target < needed:
            if self.lp_targets:
                self._target = self._probed_target(state, active, max(needed, 1e-9))
            else:
                while self._target < needed:
                    self._target *= self.growth_factor

    def _probed_target(
        self, state: SimulationState, active: List[int], lower: float
    ) -> float:
        """Smallest (coarsely located) feasible target at or above ``lower``.

        Feasibility of a candidate ``F`` means the remaining work fits within
        the induced deadlines ``d_j(F) = r_j + F / w_j``; the probe shares one
        cached LP skeleton per active-set structure across events.
        """
        instance = state.instance
        remaining = [state.remaining_fraction(j) for j in active]
        sub_instance, ordered = remaining_subinstance(
            instance, state.time, active, remaining
        )

        def feasible(objective: float) -> bool:
            deadlines = [
                instance.jobs[j].release_date + objective / instance.jobs[j].weight
                for j in ordered
            ]
            if any(deadline < state.time for deadline in deadlines):
                return False
            return self._probe.check(
                sub_instance, deadlines, build_schedule=False
            ).feasible

        # Grow an upper bracket from the fluid bound, then bisect coarsely.
        upper = max(lower, 1e-9)
        growth = 0
        while not feasible(upper) and growth < 40:
            upper *= 2.0
            growth += 1
        low, high = lower, upper
        for _ in range(_LP_TARGET_STEPS):
            if high - low <= 1e-3 * max(1.0, high):
                break
            mid = 0.5 * (low + high)
            if feasible(mid):
                high = mid
            else:
                low = mid
        return high

    def _deadline(self, state: SimulationState, job_index: int) -> float:
        job = state.instance.jobs[job_index]
        return job.release_date + self._target / job.weight

    # ------------------------------------------------------------------ #
    def decide(self, state: SimulationState) -> AllocationDecision:
        instance = state.instance
        active = state.active_jobs()
        self._raise_target_if_needed(state, active)

        ranked = sorted(active, key=lambda j: self._deadline(state, j))
        free_machines = set(range(instance.num_machines))
        assignments: Dict[int, int] = {}
        for job_index in ranked:
            best_machine = None
            best_cost = math.inf
            for machine_index in free_machines:
                cost = instance.cost(machine_index, job_index)
                if cost < best_cost:
                    best_cost = cost
                    best_machine = machine_index
            if best_machine is None or math.isinf(best_cost):
                continue
            assignments[best_machine] = job_index
            free_machines.discard(best_machine)
            if not free_machines:
                break
        return exclusive_allocation(assignments)

    @property
    def current_target(self) -> float:
        """The policy's current max-weighted-flow target (useful for inspection)."""
        return self._target
