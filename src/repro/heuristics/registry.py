"""Unified policy runtime: one registry and one protocol for every policy.

Before PR 2 the off-line LP optimum and the on-line schedulers were different
species: the campaign layer, the CLI and the benches each had their own
special case for ``"offline-optimal"``.  This module unifies them:

* :class:`SchedulingPolicy` is the protocol **every** policy implements —
  ``run(instance)`` produces a :class:`PolicyOutcome` (an executed, validated
  schedule plus its headline metrics), whether the policy simulates an
  on-line scheduler through the event engine or solves the off-line LP.
* :class:`PolicySpec` describes one registered policy (name, kind, factory);
  the module-level registry maps names to specs, and
  :func:`register_policy` / :func:`register_online_scheduler` let downstream
  code plug in custom policies that the CLI, campaigns and benches then
  resolve exactly like the built-ins.
* :func:`make_policy` resolves any registered name to a ready-to-run
  :class:`SchedulingPolicy`; :func:`make_scheduler` keeps the historical
  behaviour of returning the raw on-line scheduler object (and now simply
  reads through the same registry).

The built-in policies are registered by :mod:`repro.heuristics` at import
time, so ``available_policies()`` always includes them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.instance import Instance
from ..core.maxflow import FeasibilityProbe, minimize_max_weighted_flow
from ..core.schedule import Schedule
from ..simulation import SimulationKernel, SimulationResult, simulate
from .base import OnlineScheduler

__all__ = [
    "OFFLINE_OPTIMAL",
    "OfflineOptimalPolicy",
    "OnlinePolicy",
    "PolicyOutcome",
    "PolicySpec",
    "SchedulingPolicy",
    "available_policies",
    "make_policy",
    "make_scheduler",
    "policy_spec",
    "register_online_scheduler",
    "register_policy",
    "unregister_policy",
]

#: Canonical name of the off-line LP optimum in the registry (and in campaign
#: records, where every normalisation is relative to it).
OFFLINE_OPTIMAL = "offline-optimal"


@dataclass(frozen=True)
class PolicyOutcome:
    """What running any policy on an instance produces.

    Attributes
    ----------
    policy:
        Name of the policy that produced the schedule.
    kind:
        ``"online"`` (simulated) or ``"offline"`` (optimised).
    schedule:
        The executed (or optimal) schedule; validates like any schedule.
    max_weighted_flow, max_stretch, makespan:
        Headline metrics of the schedule.
    preemptions:
        Preemption count (0 for off-line schedules).
    objective:
        Exact optimisation objective for off-line policies (``None`` for
        simulated ones, whose ``max_weighted_flow`` is the measurement).
    simulation:
        The full :class:`~repro.simulation.SimulationResult` for on-line
        policies (``None`` for off-line ones).
    """

    policy: str
    kind: str
    schedule: Schedule
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    preemptions: int = 0
    objective: Optional[float] = None
    simulation: Optional[SimulationResult] = None


class SchedulingPolicy(abc.ABC):
    """Protocol every policy — on-line or off-line — implements.

    Attributes
    ----------
    name:
        Registry name of the policy.
    kind:
        ``"online"`` or ``"offline"``.
    """

    name: str = "policy"
    kind: str = "online"

    @abc.abstractmethod
    def run(
        self,
        instance: Instance,
        *,
        probe: Optional[FeasibilityProbe] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> PolicyOutcome:
        """Produce a schedule for ``instance`` and measure it.

        Parameters
        ----------
        instance:
            The workload to schedule.
        probe:
            Optional pre-warmed :class:`~repro.core.maxflow.FeasibilityProbe`
            for ``instance``; off-line policies reuse its cached range models
            and memoised probe answers (on-line policies ignore it).
        kernel:
            Optional :class:`~repro.simulation.SimulationKernel` whose
            buffers simulation-based policies reuse (off-line policies
            ignore it).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r}, kind={self.kind!r})"


class OnlinePolicy(SchedulingPolicy):
    """Adapter running an :class:`~repro.heuristics.base.OnlineScheduler`
    through the discrete-event engine."""

    kind = "online"

    def __init__(self, scheduler: OnlineScheduler) -> None:
        self.scheduler = scheduler
        self.name = getattr(scheduler, "name", scheduler.__class__.__name__)

    def run(
        self,
        instance: Instance,
        *,
        probe: Optional[FeasibilityProbe] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> PolicyOutcome:
        if kernel is not None:
            result = kernel.run(instance, self.scheduler)
        else:
            result = simulate(instance, self.scheduler)
        metrics = result.metrics()
        return PolicyOutcome(
            policy=self.name,
            kind=self.kind,
            schedule=result.schedule,
            max_weighted_flow=metrics.max_weighted_flow,
            max_stretch=metrics.max_stretch or 0.0,
            makespan=metrics.makespan,
            preemptions=result.num_preemptions,
            simulation=result,
        )


class OfflineOptimalPolicy(SchedulingPolicy):
    """The paper's off-line LP optimum, as a registry policy.

    Accepts (and profits from) a shared :class:`FeasibilityProbe`: when a
    campaign runs several searches over the same workload, passing the same
    probe re-uses its parametric range models and pinned optimum.
    """

    kind = "offline"
    name = OFFLINE_OPTIMAL

    def __init__(self, preemptive: bool = False, backend: str = "scipy") -> None:
        self.preemptive = preemptive
        self.backend = backend

    def run(
        self,
        instance: Instance,
        *,
        probe: Optional[FeasibilityProbe] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> PolicyOutcome:
        result = minimize_max_weighted_flow(
            instance, preemptive=self.preemptive, backend=self.backend, probe=probe
        )
        metrics = result.schedule.metrics()
        return PolicyOutcome(
            policy=self.name,
            kind=self.kind,
            schedule=result.schedule,
            max_weighted_flow=metrics.max_weighted_flow,
            max_stretch=metrics.max_stretch or 0.0,
            makespan=metrics.makespan,
            objective=result.objective,
        )


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicySpec:
    """One registered policy.

    Attributes
    ----------
    name:
        Registry key; what campaigns, the CLI and benches resolve.
    kind:
        ``"online"`` or ``"offline"``.
    factory:
        Callable returning a ready-to-run :class:`SchedulingPolicy`
        (keyword arguments are forwarded from :func:`make_policy`).
    description:
        One line for ``repro-sched info`` and the docs.
    scheduler_factory:
        For on-line policies, the factory of the raw
        :class:`~repro.heuristics.base.OnlineScheduler` (what
        :func:`make_scheduler` returns); ``None`` for off-line policies.
    """

    name: str
    kind: str
    factory: Callable[..., SchedulingPolicy]
    description: str = ""
    scheduler_factory: Optional[Callable[..., OnlineScheduler]] = None


_POLICIES: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec, *, replace: bool = False) -> PolicySpec:
    """Add a policy to the registry (``replace=True`` to override a name)."""
    if spec.kind not in ("online", "offline"):
        raise ValueError(f"policy kind must be 'online' or 'offline', got {spec.kind!r}")
    if not replace and spec.name in _POLICIES:
        raise ValueError(f"policy {spec.name!r} is already registered (pass replace=True)")
    _POLICIES[spec.name] = spec
    return spec


def register_online_scheduler(
    name: str,
    scheduler_factory: Callable[..., OnlineScheduler],
    *,
    description: str = "",
    replace: bool = False,
) -> PolicySpec:
    """Register an on-line scheduler class/factory as a named policy."""

    def factory(**kwargs) -> SchedulingPolicy:
        return OnlinePolicy(scheduler_factory(**kwargs))

    return register_policy(
        PolicySpec(
            name=name,
            kind="online",
            factory=factory,
            description=description,
            scheduler_factory=scheduler_factory,
        ),
        replace=replace,
    )


def unregister_policy(name: str) -> None:
    """Remove a policy from the registry (no-op when absent)."""
    _POLICIES.pop(name, None)


def policy_spec(name: str) -> PolicySpec:
    """Return the :class:`PolicySpec` registered under ``name``."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None


def available_policies(kind: Optional[str] = None) -> List[str]:
    """Sorted names of registered policies, optionally filtered by kind."""
    return sorted(
        name for name, spec in _POLICIES.items() if kind is None or spec.kind == kind
    )


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Resolve any registered policy name to a ready-to-run policy object."""
    return policy_spec(name).factory(**kwargs)


def make_scheduler(name: str, **kwargs) -> OnlineScheduler:
    """Instantiate the raw on-line scheduler registered under ``name``.

    Off-line policies have no scheduler object; resolving one raises a
    ``KeyError`` pointing at :func:`make_policy`.
    """
    try:
        spec = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_policies(kind='online'))}"
        ) from None
    if spec.scheduler_factory is None:
        raise KeyError(
            f"policy {name!r} is off-line and has no on-line scheduler; "
            "resolve it with make_policy() instead"
        )
    return spec.scheduler_factory(**kwargs)
