"""Unified policy runtime: one registry and one protocol for every policy.

Before PR 2 the off-line LP optimum and the on-line schedulers were different
species: the campaign layer, the CLI and the benches each had their own
special case for ``"offline-optimal"``.  This module unifies them:

* :class:`SchedulingPolicy` is the protocol **every** policy implements —
  ``run(instance)`` produces a :class:`PolicyOutcome` (an executed, validated
  schedule plus its headline metrics), whether the policy simulates an
  on-line scheduler through the event engine or solves the off-line LP.
* :class:`PolicySpec` describes one registered policy (name, kind, factory);
  the module-level registry maps names to specs, and
  :func:`register_policy` / :func:`register_online_scheduler` let downstream
  code plug in custom policies that the CLI, campaigns and benches then
  resolve exactly like the built-ins.
* :func:`make_policy` resolves any registered name to a ready-to-run
  :class:`SchedulingPolicy`; :func:`make_scheduler` keeps the historical
  behaviour of returning the raw on-line scheduler object (and now simply
  reads through the same registry).

The built-in policies are registered by :mod:`repro.heuristics` at import
time, so ``available_policies()`` always includes them.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.instance import Instance
from ..core.maxflow import FeasibilityProbe, minimize_max_weighted_flow
from ..core.schedule import Schedule
from ..simulation import SimulationKernel, SimulationResult, simulate
from .base import OnlineScheduler

__all__ = [
    "OFFLINE_OPTIMAL",
    "OfflineOptimalPolicy",
    "OnlinePolicy",
    "PolicyOutcome",
    "PolicyParam",
    "PolicySpec",
    "PolicyVariant",
    "SchedulingPolicy",
    "available_policies",
    "make_policy",
    "make_scheduler",
    "policy_spec",
    "register_online_scheduler",
    "register_policy",
    "resolve_policy_variant",
    "unregister_policy",
]

#: Canonical name of the off-line LP optimum in the registry (and in campaign
#: records, where every normalisation is relative to it).
OFFLINE_OPTIMAL = "offline-optimal"


@dataclass(frozen=True)
class PolicyOutcome:
    """What running any policy on an instance produces.

    Attributes
    ----------
    policy:
        Name of the policy that produced the schedule.
    kind:
        ``"online"`` (simulated) or ``"offline"`` (optimised).
    schedule:
        The executed (or optimal) schedule; validates like any schedule.
    max_weighted_flow, max_stretch, makespan:
        Headline metrics of the schedule.
    preemptions:
        Preemption count (0 for off-line schedules).
    objective:
        Exact optimisation objective for off-line policies (``None`` for
        simulated ones, whose ``max_weighted_flow`` is the measurement).
    simulation:
        The full :class:`~repro.simulation.SimulationResult` for on-line
        policies (``None`` for off-line ones).
    """

    policy: str
    kind: str
    schedule: Schedule
    max_weighted_flow: float
    max_stretch: float
    makespan: float
    preemptions: int = 0
    objective: Optional[float] = None
    simulation: Optional[SimulationResult] = None


class SchedulingPolicy(abc.ABC):
    """Protocol every policy — on-line or off-line — implements.

    Attributes
    ----------
    name:
        Registry name of the policy.
    kind:
        ``"online"`` or ``"offline"``.
    """

    name: str = "policy"
    kind: str = "online"

    @abc.abstractmethod
    def run(
        self,
        instance: Instance,
        *,
        probe: Optional[FeasibilityProbe] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> PolicyOutcome:
        """Produce a schedule for ``instance`` and measure it.

        Parameters
        ----------
        instance:
            The workload to schedule.
        probe:
            Optional pre-warmed :class:`~repro.core.maxflow.FeasibilityProbe`
            for ``instance``; off-line policies reuse its cached range models
            and memoised probe answers (on-line policies ignore it).
        kernel:
            Optional :class:`~repro.simulation.SimulationKernel` whose
            buffers simulation-based policies reuse (off-line policies
            ignore it).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r}, kind={self.kind!r})"


class OnlinePolicy(SchedulingPolicy):
    """Adapter running an :class:`~repro.heuristics.base.OnlineScheduler`
    through the discrete-event engine."""

    kind = "online"

    def __init__(self, scheduler: OnlineScheduler) -> None:
        self.scheduler = scheduler
        self.name = getattr(scheduler, "name", scheduler.__class__.__name__)

    def run(
        self,
        instance: Instance,
        *,
        probe: Optional[FeasibilityProbe] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> PolicyOutcome:
        if kernel is not None:
            result = kernel.run(instance, self.scheduler)
        else:
            result = simulate(instance, self.scheduler)
        metrics = result.metrics()
        return PolicyOutcome(
            policy=self.name,
            kind=self.kind,
            schedule=result.schedule,
            max_weighted_flow=metrics.max_weighted_flow,
            max_stretch=metrics.max_stretch or 0.0,
            makespan=metrics.makespan,
            preemptions=result.num_preemptions,
            simulation=result,
        )


class OfflineOptimalPolicy(SchedulingPolicy):
    """The paper's off-line LP optimum, as a registry policy.

    Accepts (and profits from) a shared :class:`FeasibilityProbe`: when a
    campaign runs several searches over the same workload, passing the same
    probe re-uses its parametric range models and pinned optimum.
    """

    kind = "offline"
    name = OFFLINE_OPTIMAL

    def __init__(self, preemptive: bool = False, backend: str = "scipy") -> None:
        self.preemptive = preemptive
        self.backend = backend

    def run(
        self,
        instance: Instance,
        *,
        probe: Optional[FeasibilityProbe] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> PolicyOutcome:
        result = minimize_max_weighted_flow(
            instance, preemptive=self.preemptive, backend=self.backend, probe=probe
        )
        metrics = result.schedule.metrics()
        return PolicyOutcome(
            policy=self.name,
            kind=self.kind,
            schedule=result.schedule,
            max_weighted_flow=metrics.max_weighted_flow,
            max_stretch=metrics.max_stretch or 0.0,
            makespan=metrics.makespan,
            objective=result.objective,
        )


# --------------------------------------------------------------------------- #
# Typed policy parameters and variants                                          #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicyParam:
    """One typed, sweepable parameter of a registered policy.

    The parameter name must match a keyword argument of the policy's factory
    (and its ``default`` must equal the factory's default for that argument:
    :func:`make_policy` drops explicitly-passed defaults so that
    ``"name:param=default"`` and plain ``"name"`` resolve — and digest — to
    the same cell).
    """

    name: str
    type: type = float
    default: Any = None
    help: str = ""

    def coerce(self, raw: Any) -> Any:
        """Parse/validate a raw value (possibly a CLI string) to the typed value."""
        if raw is None:
            if self.default is None:
                return None  # "unset" is legal when unset is the default
            raise ValueError(
                f"parameter {self.name!r} expects {self.type.__name__}, got None"
            )
        if isinstance(raw, str):
            text = raw.strip()
            if self.type is bool:
                lowered = text.lower()
                if lowered in ("true", "1", "yes", "on"):
                    return True
                if lowered in ("false", "0", "no", "off"):
                    return False
                raise ValueError(f"parameter {self.name!r} expects a boolean, got {raw!r}")
            try:
                return self.type(text)
            except ValueError:
                raise ValueError(
                    f"parameter {self.name!r} expects {self.type.__name__}, got {raw!r}"
                ) from None
        if self.type is bool:
            if isinstance(raw, bool):
                return raw
            raise ValueError(f"parameter {self.name!r} expects a boolean, got {raw!r}")
        if self.type is float and isinstance(raw, (int, float)) and not isinstance(raw, bool):
            return float(raw)
        if self.type is int:
            if isinstance(raw, bool) or not isinstance(raw, int):
                raise ValueError(f"parameter {self.name!r} expects an integer, got {raw!r}")
            return raw
        if not isinstance(raw, self.type):
            raise ValueError(
                f"parameter {self.name!r} expects {self.type.__name__}, got {raw!r}"
            )
        return raw


def _format_param_value(value: Any) -> str:
    """Canonical textual form of a parameter value (for variant labels)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class PolicyVariant:
    """A resolved policy token: base name plus canonical non-default params.

    ``label`` is the canonical display name (``"base"`` when no parameter
    deviates from its default, ``"base:key=value,..."`` with sorted keys
    otherwise) — it is what outcomes, campaign records and store cells carry;
    ``params`` is the JSON-serialisable mapping that
    :func:`repro.store.record_digest` folds into the cell digest.
    """

    base: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    @property
    def is_variant(self) -> bool:
        """Whether any parameter deviates from the registered defaults."""
        return bool(self.params)


def _split_policy_token(token: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:key=value,key=value"`` into the name and raw params."""
    if ":" not in token:
        return token, {}
    base, _, tail = token.partition(":")
    raw: Dict[str, str] = {}
    for part in tail.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"malformed policy parameter {part!r} in {token!r} (expected key=value)"
            )
        key, _, value = part.partition("=")
        raw[key.strip()] = value.strip()
    return base, raw


def resolve_policy_variant(
    token: str, params: Optional[Mapping[str, Any]] = None
) -> PolicyVariant:
    """Resolve a policy token (and/or explicit params) to a canonical variant.

    Parameters given both inline (``"name:key=value"``) and via ``params``
    are merged (``params`` wins).  Values are coerced against the policy's
    :class:`PolicyParam` schema; unknown parameters raise ``KeyError`` with
    the schema's parameter list.  Values equal to the registered default are
    dropped, so equivalent specs share one label and one cell digest.
    """
    base, raw = _split_policy_token(token)
    spec = policy_spec(base)
    merged: Dict[str, Any] = dict(raw)
    if params:
        merged.update(params)
    schema = {param.name: param for param in spec.params}
    canonical: Dict[str, Any] = {}
    for key, value in merged.items():
        param = schema.get(key)
        if param is None:
            raise KeyError(
                f"policy {base!r} has no parameter {key!r}; "
                f"sweepable: {', '.join(sorted(schema)) or '(none)'}"
            )
        coerced = param.coerce(value)
        if coerced != param.default:
            canonical[key] = coerced
    label = base
    if canonical:
        label += ":" + ",".join(
            f"{key}={_format_param_value(canonical[key])}" for key in sorted(canonical)
        )
    return PolicyVariant(base=base, params=canonical, label=label)


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PolicySpec:
    """One registered policy.

    Attributes
    ----------
    name:
        Registry key; what campaigns, the CLI and benches resolve.
    kind:
        ``"online"`` or ``"offline"``.
    factory:
        Callable returning a ready-to-run :class:`SchedulingPolicy`
        (keyword arguments are forwarded from :func:`make_policy`).
    description:
        One line for ``repro-sched info`` and the docs.
    scheduler_factory:
        For on-line policies, the factory of the raw
        :class:`~repro.heuristics.base.OnlineScheduler` (what
        :func:`make_scheduler` returns); ``None`` for off-line policies.
    params:
        Typed schema of the policy's sweepable parameters: campaigns resolve
        ``"name:key=value"`` variant tokens against it and the values flow
        into the store's cell digests (see :func:`resolve_policy_variant`).
    """

    name: str
    kind: str
    factory: Callable[..., SchedulingPolicy]
    description: str = ""
    scheduler_factory: Optional[Callable[..., OnlineScheduler]] = None
    params: Tuple[PolicyParam, ...] = ()


_POLICIES: Dict[str, PolicySpec] = {}


def _validate_scheduler_class(name: str, factory: Any) -> None:
    """Reject scheduler classes that break the array-aware contract.

    ``array_aware = True`` promises the kernel an array path; a class that
    sets the flag without defining :meth:`OnlineScheduler.decide_arrays`
    would silently dispatch to the base's scalar delegation — the exact
    situation the flag claims to replace.  Catching it at registration time
    (the runtime twin of the ``policy-array-aware`` lint rule) surfaces the
    broken contract before any simulation runs; non-class factories are not
    introspectable and are checked statically by ``repro.lint`` instead.
    """
    if not (inspect.isclass(factory) and issubclass(factory, OnlineScheduler)):
        return
    if not getattr(factory, "array_aware", False):
        return
    if factory.decide_arrays is OnlineScheduler.decide_arrays:
        raise ValueError(
            f"policy {name!r} ({factory.__name__}) sets array_aware=True but "
            "does not define decide_arrays(); define it (an explicit scalar "
            "delegation is fine) or drop the flag"
        )


def register_policy(spec: PolicySpec, *, replace: bool = False) -> PolicySpec:
    """Add a policy to the registry (``replace=True`` to override a name)."""
    if spec.kind not in ("online", "offline"):
        raise ValueError(f"policy kind must be 'online' or 'offline', got {spec.kind!r}")
    if not replace and spec.name in _POLICIES:
        raise ValueError(f"policy {spec.name!r} is already registered (pass replace=True)")
    if spec.scheduler_factory is not None:
        _validate_scheduler_class(spec.name, spec.scheduler_factory)
    _POLICIES[spec.name] = spec
    return spec


def register_online_scheduler(
    name: str,
    scheduler_factory: Callable[..., OnlineScheduler],
    *,
    description: str = "",
    replace: bool = False,
    params: Tuple[PolicyParam, ...] = (),
) -> PolicySpec:
    """Register an on-line scheduler class/factory as a named policy."""

    def factory(**kwargs) -> SchedulingPolicy:
        return OnlinePolicy(scheduler_factory(**kwargs))

    return register_policy(
        PolicySpec(
            name=name,
            kind="online",
            factory=factory,
            description=description,
            scheduler_factory=scheduler_factory,
            params=params,
        ),
        replace=replace,
    )


def unregister_policy(name: str) -> None:
    """Remove a policy from the registry (no-op when absent)."""
    _POLICIES.pop(name, None)


def policy_spec(name: str) -> PolicySpec:
    """Return the :class:`PolicySpec` registered under ``name``."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None


def available_policies(kind: Optional[str] = None) -> List[str]:
    """Sorted names of registered policies, optionally filtered by kind."""
    return sorted(
        name for name, spec in _POLICIES.items() if kind is None or spec.kind == kind
    )


def make_policy(
    name: str, *, params: Optional[Mapping[str, Any]] = None, **kwargs
) -> SchedulingPolicy:
    """Resolve a policy name — or a parameterised variant — to a policy object.

    ``name`` may be a plain registry name or a variant token
    (``"online-offline:period=2"``); ``params`` supplies the same parameters
    programmatically.  Parameterised variants carry their canonical variant
    label as ``policy.name``, so campaign records and store cells distinguish
    them.  Extra keyword arguments are forwarded to the factory unchecked
    (they are construction details, not swept parameters).
    """
    if params or ":" in name:
        variant = resolve_policy_variant(name, params)
        policy = policy_spec(variant.base).factory(**dict(variant.params), **kwargs)
        if variant.is_variant:
            _rename_policy(policy, variant.label)
        return policy
    return policy_spec(name).factory(**kwargs)


def _rename_policy(policy: SchedulingPolicy, label: str) -> None:
    """Stamp a variant label on a policy (and its wrapped scheduler, if any)."""
    policy.name = label
    scheduler = getattr(policy, "scheduler", None)
    if scheduler is not None:
        scheduler.name = label


def make_scheduler(name: str, **kwargs) -> OnlineScheduler:
    """Instantiate the raw on-line scheduler registered under ``name``.

    ``name`` accepts the same ``"name:key=value"`` variant tokens as
    :func:`make_policy`.  Off-line policies have no scheduler object;
    resolving one raises a ``KeyError`` pointing at :func:`make_policy`.
    """
    token = name
    variant: Optional[PolicyVariant] = None
    if ":" in name:
        variant = resolve_policy_variant(name)
        name = variant.base
        kwargs = {**dict(variant.params), **kwargs}
    try:
        spec = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_policies(kind='online'))}"
        ) from None
    if spec.scheduler_factory is None:
        raise KeyError(
            f"policy {token!r} is off-line and has no on-line scheduler; "
            "resolve it with make_policy() instead"
        )
    scheduler = spec.scheduler_factory(**kwargs)
    if variant is not None and variant.is_variant:
        scheduler.name = variant.label
    return scheduler
