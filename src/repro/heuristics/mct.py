"""Minimum Completion Time (MCT) — the paper's explicit baseline.

MCT is the classical on-line heuristic the paper compares against in its
preliminary simulations (Section 5): when a job arrives, it is immediately and
irrevocably assigned to the machine on which it would complete the earliest,
taking into account the work already queued on each machine.  Machines then
process their local queue in assignment order, without preemption and without
dividing jobs.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..core.instance import Instance
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler, exclusive_allocation

__all__ = ["MCTScheduler"]


class MCTScheduler(OnlineScheduler):
    """Minimum Completion Time list scheduling (non-preemptive, non-divisible)."""

    name = "mct"
    divisible = False

    def __init__(self) -> None:
        self._queues: Dict[int, List[int]] = {}
        self._assigned: set = set()

    def reset(self, instance: Instance) -> None:
        self._queues = {i: [] for i in range(instance.num_machines)}
        self._assigned = set()

    def rebind(self, instance: Instance) -> None:
        # Queues and assignments are index-keyed and window growth keeps
        # existing indices stable; new arrivals are routed by decide(), so
        # there is nothing to refresh.  (_queues lazily grows machine keys in
        # reset() only, but machines never change mid-stream.)
        return None

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # Assignments are irrevocable: remap the queues so compaction never
        # re-routes a job (completed jobs simply drop out of their queue).
        self._queues = {
            machine: [mapping[job] for job in queue if job in mapping]
            for machine, queue in self._queues.items()
        }
        self._assigned = {mapping[job] for job in self._assigned if job in mapping}

    # ------------------------------------------------------------------ #
    def _machine_backlog(self, state: SimulationState, machine_index: int) -> float:
        """Remaining work (seconds) queued on a machine, including the running job."""
        backlog = 0.0
        for job_index in self._queues[machine_index]:
            progress = state.jobs[job_index]
            if progress.finished:
                continue
            backlog += progress.remaining_fraction * state.instance.cost(machine_index, job_index)
        return backlog

    def _assign_new_jobs(self, state: SimulationState) -> None:
        """Assign every newly arrived job to its minimum-completion-time machine."""
        instance = state.instance
        for job_index in state.active_jobs():
            if job_index in self._assigned:
                continue
            best_machine = None
            best_completion = math.inf
            for machine_index in range(instance.num_machines):
                cost = instance.cost(machine_index, job_index)
                if math.isinf(cost):
                    continue
                completion = state.time + self._machine_backlog(state, machine_index) + cost
                if completion < best_completion:
                    best_completion = completion
                    best_machine = machine_index
            if best_machine is None:
                # No machine can run the job; leave it unassigned (the engine
                # will raise if this persists, which is the correct signal for
                # an instance whose databank is nowhere replicated).
                continue
            self._queues[best_machine].append(job_index)
            self._assigned.add(job_index)

    # ------------------------------------------------------------------ #
    def decide(self, state: SimulationState) -> AllocationDecision:
        self._assign_new_jobs(state)
        assignments: Dict[int, int] = {}
        for machine_index, queue in self._queues.items():
            # Drop finished jobs from the head of the queue, then run the head.
            while queue and state.jobs[queue[0]].finished:
                queue.pop(0)
            if queue:
                assignments[machine_index] = queue[0]
        return exclusive_allocation(assignments)
