"""On-line adaptation of the off-line algorithm (Section 5 of the paper).

The paper's conclusion reports that "a simple on-line adaptation of our
off-line algorithm, enhanced by a simple preemption scheme, produces better
schedules than classical scheduling heuristics like Minimum Completion Time".
This module implements that adaptation:

* every time the set of active jobs changes (an arrival or a completion), the
  policy re-optimises the *remaining* work: it looks for the smallest
  objective ``F`` such that every active job ``J_j`` can finish by the
  deadline ``d_j(F) = r_j + F / w_j`` — note that the *original* release
  dates are used, so the weighted flow already accumulated while waiting is
  accounted for — given that no processing can happen before the current
  time;
* the witness schedule of the best feasible ``F`` becomes the current *plan*;
* between events the policy simply follows the plan, asking the engine to
  wake it up at the plan's next assignment boundary.

Feasibility of an objective value is decided with the paper's Lemma 1 applied
to the sub-instance of remaining work.  The objective value itself is located
with a bounded-precision bisection: unlike the off-line solver we do not need
the exact optimum here — the plan is re-built at the next event anyway — and
the paper describes the adaptation as deliberately simple.

Parametric replanning
---------------------
Feasibility probes are answered by a shared
:class:`~repro.core.replanning.ReplanProbe` (the default, ``parametric=True``)
which caches one lowered LP skeleton per active-set structure and re-solves
with refreshed remaining-work coefficients and interval lengths only; the
answers — and the witness schedules, hence the executed output — are byte
for byte identical to the from-scratch rebuild (``parametric=False``), which
is kept as the reference path for the identity property tests.  The
``replanning_model_builds`` counter exposes the economy either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.deadline import check_deadline_feasibility
from ..core.instance import Instance
from ..core.replanning import ReplanProbe, remaining_subinstance
from ..core.schedule import Schedule
from ..simulation.state import AllocationDecision, SimulationState
from .base import OnlineScheduler

__all__ = ["OnlineOfflineAdaptationScheduler"]


class OnlineOfflineAdaptationScheduler(OnlineScheduler):
    """Plan-following on-line adaptation of the off-line LP algorithm.

    Parameters
    ----------
    relative_precision:
        Relative precision of the bisection on the objective value (the
        probe tolerance of the replanning runtime).
    max_bisection_steps:
        Hard cap on bisection iterations per re-planning.
    preemptive:
        When ``True`` the plan is built in the preemptive (non-divisible)
        model; the default ``False`` uses the divisible model, matching the
        paper's framework.
    backend:
        LP backend used for the feasibility probes.
    period:
        Optional replanning period.  ``None`` (default) replans only when the
        active set changes, as the paper describes; a positive value
        additionally forces a re-optimisation whenever the current plan is
        older than ``period`` time units (the policy asks the engine for a
        wake-up accordingly), which lets stale plans react to progress drift.
        Scenario timescales span orders of magnitude, so the *effective*
        period is floored at ``horizon / (8 n)`` (``horizon`` = the
        sequential-makespan upper bound computed at :meth:`reset`): a period
        far below the instance's timescale would force O(makespan / period)
        wake events and trip the engine's cycling budget instead of ever
        finishing.
    parametric:
        ``True`` (default) answers feasibility probes through a shared
        :class:`~repro.core.replanning.ReplanProbe`; ``False`` rebuilds every
        feasibility LP from scratch (the pre-refactor reference path).  Both
        paths produce byte-identical schedules.
    """

    divisible = True
    #: The policy only reads the pooled simulation state through its vector-
    #: backed accessors, so the kernel may skip the per-event object mirrors.
    array_aware = True

    def __init__(
        self,
        relative_precision: float = 1e-3,
        max_bisection_steps: int = 40,
        preemptive: bool = False,
        backend: str = "scipy",
        period: Optional[float] = None,
        parametric: bool = True,
    ) -> None:
        if period is not None and period <= 0:
            raise ValueError("period must be positive (or None for event-driven replanning)")
        self.relative_precision = relative_precision
        self.max_bisection_steps = max_bisection_steps
        self.preemptive = preemptive
        self.backend = backend
        self.period = period
        self.parametric = parametric
        self.name = "online-offline" + ("-preemptive" if preemptive else "")
        self.divisible = not preemptive
        # Rank-keyed: the verdict-only bisection probes collapse onto shared
        # skeletons across events (same deadline-rank pattern), so the
        # template's persisted basis warm-starts re-solves event-to-event,
        # not just within one bisection.
        self._probe: Optional[ReplanProbe] = (
            ReplanProbe(preemptive=preemptive, backend=backend, rank_keyed=True)
            if parametric
            else None
        )
        self._plan: Optional[List[Tuple[int, int, float, float]]] = None
        self._plan_active: Optional[frozenset] = None
        self._plan_time: float = 0.0
        self._effective_period: Optional[float] = None
        self.replanning_count = 0
        self._scratch_builds = 0

    # ------------------------------------------------------------------ #
    def reset(self, instance: Instance) -> None:
        self._plan = None
        self._plan_active = None
        self._plan_time = 0.0
        self.replanning_count = 0
        if self.period is not None:
            # Floor the period at the instance's timescale: at most ~8n
            # period-forced wake events over the sequential-makespan horizon,
            # comfortably inside the engine's 50n + 1000 event budget.
            horizon = max(
                (job.release_date for job in instance.jobs), default=0.0
            ) + sum(instance.min_cost(j) for j in range(instance.num_jobs))
            floor = horizon / max(8 * instance.num_jobs, 1)
            self._effective_period = max(self.period, floor)
        else:
            self._effective_period = None

    def rebind(self, instance: Instance) -> None:
        # The plan and its active-set snapshot are index-keyed and window
        # growth keeps existing indices stable; the next decide() sees the
        # grown active set differ from the snapshot and replans.  The period
        # floor deliberately stays as computed at reset(): re-deriving it
        # from the grown window would change replanning times mid-stream.
        return None

    def decide_arrays(self, state: SimulationState) -> AllocationDecision:
        # The scalar path reads per-job dynamic state only through the
        # state's vector-preferring accessors, so the array contract is the
        # scalar decision, verbatim.
        return self.decide(state)

    def compact(self, instance: Instance, mapping: Dict[int, int]) -> None:
        # The current plan references window job indices; remap it so a
        # compaction between events never forces an extra replanning (the
        # plan's content — machines, times — is index-free).
        if self._plan:
            self._plan = [
                (machine, mapping[job], start, end)
                for machine, job, start, end in self._plan
                if job in mapping
            ]
        if self._plan_active is not None:
            if all(job in mapping for job in self._plan_active):
                self._plan_active = frozenset(mapping[job] for job in self._plan_active)
            else:
                # A planned job completed since the last replanning: the next
                # decide() must replan, exactly as it would have without the
                # compaction (a remap that silently dropped the member would
                # suppress it).
                self._plan_active = None

    @property
    def replan_probe(self) -> Optional[ReplanProbe]:
        """The shared parametric probe (``None`` on the from-scratch path)."""
        return self._probe

    @property
    def replanning_model_builds(self) -> int:
        """Cumulative feasibility-LP constructions (both probe paths)."""
        if self._probe is not None:
            return self._probe.model_constructions
        return self._scratch_builds

    @property
    def replanning_feasibility_checks(self) -> int:
        """Cumulative feasibility probes answered."""
        if self._probe is not None:
            return self._probe.probes
        return self._scratch_builds

    # ------------------------------------------------------------------ #
    # Re-planning                                                          #
    # ------------------------------------------------------------------ #
    def _build_sub_instance(self, state: SimulationState) -> Tuple[Instance, List[int]]:
        """Build the instance of remaining work for the currently active jobs."""
        active = sorted(state.active_jobs())
        remaining = [state.remaining_fraction(job_index) for job_index in active]
        return remaining_subinstance(state.instance, state.time, active, remaining)

    def _feasible(
        self,
        sub_instance: Instance,
        active: List[int],
        state: SimulationState,
        objective: float,
        build_schedule: bool = True,
    ):
        """Deadline-feasibility probe at objective value ``objective``."""
        instance = state.instance
        deadlines = []
        for job_index in active:
            original = instance.jobs[job_index]
            deadlines.append(original.release_date + objective / original.weight)
        if any(deadline < state.time for deadline in deadlines):
            return None
        if self._probe is not None:
            return self._probe.check(sub_instance, deadlines, build_schedule=build_schedule)
        self._scratch_builds += 1
        return check_deadline_feasibility(
            sub_instance,
            deadlines,
            preemptive=self.preemptive,
            build_schedule=build_schedule,
            backend=self.backend,
        )

    def _replan(self, state: SimulationState) -> None:
        """Recompute the plan for the current active set."""
        self.replanning_count += 1
        instance = state.instance
        sub_instance, active = self._build_sub_instance(state)

        # Lower bound: even instantaneous completion cannot beat the weighted
        # flow already accumulated (plus the fluid lower bound on remaining work).
        lower = 0.0
        for position, job_index in enumerate(active):
            original = instance.jobs[job_index]
            already = state.time - original.release_date
            fluid = sub_instance.lower_bound_flow(position)
            lower = max(lower, original.weight * (already + fluid))

        # Upper bound: process the remaining work sequentially, each job on its
        # fastest machine, in active order.
        cursor = state.time
        upper = lower
        for position, job_index in enumerate(active):
            original = instance.jobs[job_index]
            cursor += sub_instance.min_cost(position)
            upper = max(upper, original.weight * (cursor - original.release_date))
        upper = max(upper, lower * (1.0 + self.relative_precision) + 1e-9)

        # Verdict-only bisection: no witness schedule is materialised while
        # narrowing the objective (on warm-start-capable backends these
        # re-solves run a few dual-simplex pivots from the previous basis).
        # One final solve at the accepted objective rebuilds the witness —
        # the identical LP the last feasible probe answered, so the executed
        # schedule is byte-identical to solving with witnesses throughout.
        best = self._feasible(sub_instance, active, state, upper, build_schedule=False)
        best_objective = upper
        steps = 0
        low, high = lower, upper
        while (
            best is not None
            and high - low > self.relative_precision * max(1.0, high)
            and steps < self.max_bisection_steps
        ):
            mid = 0.5 * (low + high)
            probe = self._feasible(sub_instance, active, state, mid, build_schedule=False)
            if probe is not None and probe.feasible:
                high = mid
                best = probe
                best_objective = mid
            else:
                low = mid
            steps += 1

        plan: List[Tuple[int, int, float, float]] = []
        if best is not None and best.feasible:
            witness = self._feasible(
                sub_instance, active, state, best_objective, build_schedule=True
            )
            if witness is not None and witness.feasible and witness.schedule is not None:
                plan = self._plan_from_schedule(witness.schedule, active)
        self._plan = plan
        self._plan_active = frozenset(active)
        self._plan_time = state.time

    @staticmethod
    def _plan_from_schedule(
        schedule: Schedule, active: List[int]
    ) -> List[Tuple[int, int, float, float]]:
        """Map a sub-instance schedule to (machine, original job, start, end) tuples."""
        plan = []
        for piece in schedule.pieces:
            original_job = active[piece.job_index]
            plan.append((piece.machine_index, original_job, piece.start, piece.end))
        plan.sort(key=lambda item: (item[0], item[2]))
        return plan

    # ------------------------------------------------------------------ #
    # Plan following                                                       #
    # ------------------------------------------------------------------ #
    def decide(self, state: SimulationState) -> AllocationDecision:
        active = frozenset(state.active_jobs())
        stale = (
            self._effective_period is not None
            and self._plan is not None
            and state.time - self._plan_time >= self._effective_period - 1e-12
        )
        if self._plan is None or self._plan_active != active or stale:
            self._replan(state)

        if not self._plan:
            # Fallback: no feasible plan was produced (should not happen for a
            # valid instance); behave like a greedy exclusive policy so that
            # the simulation still terminates.
            assignments: Dict[int, int] = {}
            used = set()
            for job_index in sorted(active):
                for machine_index in range(state.instance.num_machines):
                    if machine_index in used:
                        continue
                    if state.instance.cost(machine_index, job_index) != float("inf"):
                        assignments[machine_index] = job_index
                        used.add(machine_index)
                        break
            return AllocationDecision(
                shares={m: [(j, 1.0)] for m, j in assignments.items()}
            )

        now = state.time
        epsilon = 1e-9
        shares: Dict[int, List[Tuple[int, float]]] = {}
        wake_candidates: List[float] = []
        for machine_index, job_index, start, end in self._plan:
            if job_index not in active:
                continue
            if end <= now + epsilon:
                continue
            if start <= now + epsilon:
                # Piece currently running on this machine.
                if machine_index not in shares:
                    shares[machine_index] = [(job_index, 1.0)]
                    wake_candidates.append(end)
            else:
                # Future piece: make sure we are woken up when it starts.
                wake_candidates.append(start)

        if self._effective_period is not None:
            wake_candidates.append(self._plan_time + self._effective_period)
        wake_up_at = min((t for t in wake_candidates if t > now + epsilon), default=None)
        return AllocationDecision(shares=shares, wake_up_at=wake_up_at)
