"""repro — reproduction of Legrand, Su & Vivien (IPPS 2005).

Off-line scheduling of divisible requests on an heterogeneous collection of
databanks: polynomial-time minimisation of the maximum weighted flow on
unrelated machines, in the divisible-load and preemptive models, plus the
GriPPS application study and the on-line simulation the paper's conclusion
refers to.

Subpackages
-----------
``repro.core``
    Instance model, LP formulations, milestone search, schedules (Sections 3–4).
``repro.lp``
    Self-contained LP modelling layer with SciPy/HiGHS and pure-Python
    simplex backends.
``repro.gripps``
    Synthetic GriPPS application: protein databanks, motifs, scanning engine
    and the calibrated cost model behind Figure 1.
``repro.simulation``
    Discrete-event simulator for on-line scheduling experiments.
``repro.heuristics``
    On-line policies: MCT, FIFO, SPT, SRPT, EDF, round-robin and the on-line
    adaptation of the off-line algorithm.
``repro.workload``
    Random instance generators, named scenarios and trace I/O.
``repro.analysis``
    Linear regression, statistics, ASCII tables and plots used by the benches.
``repro.store``
    Persistent experiment store: content-addressed campaign results,
    resumable sweeps and cross-run regression diffs.
"""

from .core import (
    Instance,
    Job,
    Machine,
    MakespanResult,
    MaxWeightedFlowResult,
    Platform,
    Schedule,
    SchedulePiece,
    check_deadline_feasibility,
    check_deadline_feasibility_preemptive,
    compute_milestones,
    minimize_makespan,
    minimize_makespan_preemptive,
    minimize_max_stretch,
    minimize_max_stretch_preemptive,
    minimize_max_weighted_flow,
    minimize_max_weighted_flow_preemptive,
)
from .exceptions import (
    InfeasibleProblemError,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
    SimulationError,
    SolverError,
    UnboundedProblemError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "Job",
    "Machine",
    "MakespanResult",
    "MaxWeightedFlowResult",
    "Platform",
    "Schedule",
    "SchedulePiece",
    "check_deadline_feasibility",
    "check_deadline_feasibility_preemptive",
    "compute_milestones",
    "minimize_makespan",
    "minimize_makespan_preemptive",
    "minimize_max_stretch",
    "minimize_max_stretch_preemptive",
    "minimize_max_weighted_flow",
    "minimize_max_weighted_flow_preemptive",
    "InfeasibleProblemError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "UnboundedProblemError",
    "WorkloadError",
    "__version__",
]
