"""Lowering of a :class:`~repro.lp.model.LinearProgram` to matrix form.

Both backends consume the same intermediate representation: a minimisation
problem over the model's original variables with

* an inequality block ``A_ub @ x <= b_ub`` (all ``<=`` and negated ``>=`` rows),
* an equality block ``A_eq @ x == b_eq``,
* per-variable bounds.

The constraint blocks come in two flavours selected by the ``sparse`` flag of
:func:`to_matrix_form`:

* **dense** (`numpy.ndarray`) — the historical representation, still required
  by the frozen reference tableau simplex
  (:mod:`repro.lp._tableau_legacy`) and convenient for small
  cross-validation LPs;
* **sparse** (`scipy.sparse.csr_matrix`) — the production representation.  The
  allocation LPs of the scheduling modules have a few non-zeros per row but
  thousands of columns, so dense lowering wastes O(rows x cols) work and
  memory where the sparse path is O(nnz).  Both production solvers consume
  CSR blocks directly: HiGHS via :mod:`repro.lp.scipy_backend` (HiGHS
  methods only — legacy scipy methods densify with a one-time warning) and
  the in-house revised simplex of :mod:`repro.lp.revised_simplex`, which
  works on the CSR/CSC blocks without ever materialising a dense tableau.
  :meth:`MatrixForm.densified` converts back for the frozen tableau
  reference.

Assembly is vectorised in both flavours: coefficients are collected as COO
triplets in flat Python lists and scattered into the target matrix in one
NumPy/SciPy call, instead of materialising one dense row per constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import chain
from typing import List, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from .constraint import Constraint
from .model import LinearProgram
from .solution import LPSolution, LPStatus

__all__ = ["MatrixForm", "to_matrix_form", "solve_constant_form"]

#: A constraint block: dense 2-D array or CSR matrix.
ConstraintBlock = Union[np.ndarray, sp.csr_matrix]


@dataclass
class MatrixForm:
    """Matrix representation of a linear program (minimisation form).

    Attributes
    ----------
    c:
        Objective coefficient vector (already negated for maximisation models;
        always a dense 1-D array).
    objective_constant:
        Constant term of the objective, to be added back to the backend's
        optimal value.
    objective_sign:
        ``+1`` when the original model minimises, ``-1`` when it maximises
        (the matrices always describe a minimisation).
    a_ub, b_ub:
        Inequality block, possibly empty.  ``a_ub`` is dense or CSR depending
        on the ``sparse`` flag given to :func:`to_matrix_form`.
    a_eq, b_eq:
        Equality block, possibly empty, same flavour as ``a_ub``.
    bounds:
        ``(num_variables, 2)`` float array of ``(lower, upper)`` pairs, with
        ``±inf`` for infinite bounds (consumed as-is by
        :func:`scipy.optimize.linprog`).
    """

    c: np.ndarray
    objective_constant: float
    objective_sign: float
    a_ub: ConstraintBlock
    b_ub: np.ndarray
    a_eq: ConstraintBlock
    b_eq: np.ndarray
    bounds: np.ndarray

    @property
    def num_variables(self) -> int:
        """Number of decision variables (columns)."""
        return self.c.shape[0]

    @property
    def num_inequalities(self) -> int:
        """Number of rows in the inequality block."""
        return self.a_ub.shape[0]

    @property
    def num_equalities(self) -> int:
        """Number of rows in the equality block."""
        return self.a_eq.shape[0]

    @property
    def is_sparse(self) -> bool:
        """``True`` when the constraint blocks are CSR matrices."""
        return sp.issparse(self.a_ub) or sp.issparse(self.a_eq)

    def densified(self) -> "MatrixForm":
        """Return an equivalent form with dense constraint blocks.

        Only the frozen tableau reference (:mod:`repro.lp._tableau_legacy`)
        and scipy's legacy non-HiGHS methods need this; the production
        solvers (HiGHS, the in-house revised simplex) consume the CSR blocks
        directly.  Returns ``self`` when the form is already dense; the
        vectors and the bounds list are shared either way (they are never
        mutated by the backends).
        """
        if not self.is_sparse:
            return self
        return replace(
            self,
            a_ub=self.a_ub.toarray() if sp.issparse(self.a_ub) else self.a_ub,
            a_eq=self.a_eq.toarray() if sp.issparse(self.a_eq) else self.a_eq,
        )

    def with_bounds(self, bounds: np.ndarray) -> "MatrixForm":
        """Return a copy of the form with replaced variable bounds.

        The constraint matrices are shared with ``self``, which makes this
        the cheap re-solve entry point used by the feasibility probes of
        :mod:`repro.core.maxflow`: only the bounds differ between probes.
        """
        bounds = np.array(bounds, dtype=float)  # np.array (not asarray): always copy
        if bounds.shape != (self.num_variables, 2):
            raise ValueError(
                f"expected a ({self.num_variables}, 2) bounds array, got {bounds.shape}"
            )
        return replace(self, bounds=bounds)

    def restore_objective(self, minimised_value: float) -> float:
        """Map the backend's minimised value back to the model's objective."""
        return self.objective_sign * minimised_value + self.objective_constant


def solve_constant_form(form: MatrixForm, backend: str, tol: float = 1e-9) -> LPSolution:
    """Decide a zero-variable form: feasible iff the constant rows hold.

    Both backends' form-level entry points delegate degenerate variable-free
    programs here instead of handing an empty cost vector to their solvers.
    """
    violated = bool((form.b_ub < -tol).any() or (abs(form.b_eq) > tol).any())
    if violated:
        return LPSolution(
            status=LPStatus.INFEASIBLE,
            backend=backend,
            message="constant constraints are violated",
        )
    return LPSolution(
        status=LPStatus.OPTIMAL,
        objective_value=form.objective_constant,
        values={},
        backend=backend,
    )


def _lower_block(
    constraints: Sequence[Constraint],
    flips: Sequence[float],
    num_cols: int,
    sparse: bool,
) -> Tuple[ConstraintBlock, np.ndarray]:
    """Lower one constraint block to ``(matrix, rhs)``.

    ``flips`` holds ``+1.0``/``-1.0`` per constraint (``>=`` rows are negated
    into the ``<=`` block).  The COO triplets are extracted with vectorised
    NumPy primitives so that the per-row Python overhead is O(rows), not
    O(nnz); materialisation is then a single CSR construction (O(nnz)) or a
    single dense fancy-index scatter (O(rows x cols) memory traffic).
    """
    num_rows = len(constraints)
    flip_arr = np.asarray(flips, dtype=float)
    rhs = np.fromiter(
        (con.expression.constant for con in constraints), dtype=float, count=num_rows
    )
    rhs = -flip_arr * rhs if num_rows else np.zeros(0)
    counts = np.fromiter(
        (len(con.expression.coefficients) for con in constraints),
        dtype=np.intp,
        count=num_rows,
    )
    nnz = int(counts.sum()) if num_rows else 0
    rows = np.repeat(np.arange(num_rows), counts)
    cols = np.fromiter(
        chain.from_iterable(con.expression.coefficients for con in constraints),
        dtype=np.intp,
        count=nnz,
    )
    data = np.fromiter(
        chain.from_iterable(con.expression.coefficients.values() for con in constraints),
        dtype=float,
        count=nnz,
    )
    data *= np.repeat(flip_arr, counts)

    if sparse:
        matrix: ConstraintBlock = sp.csr_matrix(
            (data, (rows, cols)), shape=(num_rows, num_cols)
        )
    else:
        matrix = np.zeros((num_rows, num_cols))
        if nnz:
            # Within one constraint the variable indices are dict keys
            # (unique), so plain fancy-index scatter is exact.
            matrix[rows, cols] = data
    return matrix, rhs


def to_matrix_form(model: LinearProgram, *, sparse: bool = False) -> MatrixForm:
    """Lower ``model`` to its :class:`MatrixForm`.

    Parameters
    ----------
    model:
        The linear program to lower.
    sparse:
        When ``True`` the constraint blocks are built as CSR matrices in
        O(nnz) time; when ``False`` (default) they are dense arrays.
    """
    n = model.num_variables

    # Objective ----------------------------------------------------------
    sign = 1.0 if model.sense == "min" else -1.0
    c = np.zeros(n)
    for idx, coeff in model.objective.terms():
        c[idx] = sign * coeff
    objective_constant = model.objective.constant

    # Constraint blocks -----------------------------------------------------
    ub_cons: List[Constraint] = []
    ub_flips: List[float] = []
    eq_cons: List[Constraint] = []

    for con in model.constraints:
        if con.sense == "==":
            eq_cons.append(con)
        else:
            ub_cons.append(con)
            ub_flips.append(1.0 if con.sense == "<=" else -1.0)  # >= rows are negated

    a_ub, b_ub = _lower_block(ub_cons, ub_flips, n, sparse)
    a_eq, b_eq = _lower_block(eq_cons, [1.0] * len(eq_cons), n, sparse)

    # Bounds ----------------------------------------------------------------
    # Cached on the model (variables are append-only); shared by reference —
    # mutate only through MatrixForm.with_bounds, which copies.
    bounds = model.bounds_array()

    return MatrixForm(
        c=c,
        objective_constant=objective_constant,
        objective_sign=sign,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
    )
