"""SciPy/HiGHS backend for the LP modelling layer.

This is the production backend.  :func:`scipy.optimize.linprog` with
``method="highs"`` solves the matrix form produced by
:mod:`repro.lp.standard_form`.  HiGHS accepts sparse ``A_ub``/``A_eq`` blocks
directly, so models are lowered to CSR by default; non-HiGHS methods fall back
to the dense lowering.

Two entry points are exposed:

* :func:`solve_with_scipy` — lower a :class:`~repro.lp.model.LinearProgram`
  and solve it (what :meth:`LinearProgram.solve` dispatches to);
* :func:`solve_matrix_form` — solve an already-lowered
  :class:`~repro.lp.standard_form.MatrixForm`.  This is the re-solve path used
  by the feasibility probes of :mod:`repro.core.maxflow`, which build the
  matrix structure once and only swap RHS values / variable bounds between
  solves.
"""

from __future__ import annotations

import warnings
from typing import Dict

from scipy.optimize import linprog

from ..obs.metrics import get_recorder
from .model import LinearProgram
from .solution import LPSolution, LPStatus
from .standard_form import MatrixForm, solve_constant_form, to_matrix_form

__all__ = ["solve_with_scipy", "solve_matrix_form"]

#: Set once the dense fallback for non-HiGHS methods has been reported, so a
#: probe loop re-solving thousands of forms warns exactly once per process.
_densify_warned = False

#: Mapping from scipy ``OptimizeResult.status`` codes to our statuses.
_SCIPY_STATUS = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,       # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,       # numerical difficulties
}


def solve_matrix_form(form: MatrixForm, method: str = "highs", **options) -> LPSolution:
    """Solve a lowered :class:`MatrixForm` with :func:`scipy.optimize.linprog`.

    ``form`` may hold dense or CSR constraint blocks.  Only the HiGHS family
    of methods consumes CSR directly; legacy methods (``"simplex"``,
    ``"revised simplex"``, ``"interior-point"``) force a dense copy of every
    constraint block, which on the lowering-bench LPs multiplies memory by the
    fill-in factor.  That fallback used to happen silently — it now emits a
    one-time :class:`RuntimeWarning` so callers know they lost the sparse
    path.
    """
    if form.num_variables == 0:
        # linprog rejects an empty cost vector; a variable-free program is
        # feasible iff its constant rows hold.
        return solve_constant_form(form, "scipy-highs")

    if form.is_sparse and not method.startswith("highs"):
        global _densify_warned
        if not _densify_warned:
            _densify_warned = True
            warnings.warn(
                f"scipy method {method!r} cannot consume sparse constraint "
                "blocks; densifying the lowered form (only HiGHS methods "
                "keep the CSR lowering). This warning is emitted once per "
                "process.",
                RuntimeWarning,
                stacklevel=2,
            )
        form = form.densified()

    result = linprog(
        c=form.c,
        A_ub=form.a_ub if form.num_inequalities else None,
        b_ub=form.b_ub if form.num_inequalities else None,
        A_eq=form.a_eq if form.num_equalities else None,
        b_eq=form.b_eq if form.num_equalities else None,
        bounds=form.bounds,
        method=method,
        options=options or None,
    )

    status = _SCIPY_STATUS.get(result.status, LPStatus.ERROR)
    if not result.success and status is LPStatus.OPTIMAL:
        status = LPStatus.ERROR

    values: Dict[int, float] = {}
    objective = None
    if status is LPStatus.OPTIMAL and result.x is not None:
        values = {i: float(v) for i, v in enumerate(result.x)}
        objective = form.restore_objective(float(result.fun))

    iterations = None
    nit = getattr(result, "nit", None)
    if nit is not None:
        try:
            iterations = int(nit)
        except (TypeError, ValueError):
            iterations = None

    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("lp.solves")
        if iterations is not None:
            recorder.observe("lp.iterations", float(iterations))

    return LPSolution(
        status=status,
        objective_value=objective,
        values=values,
        backend="scipy-highs",
        iterations=iterations,
        message=str(getattr(result, "message", "")),
    )


def solve_with_scipy(model: LinearProgram, method: str = "highs", **options) -> LPSolution:
    """Solve ``model`` with :func:`scipy.optimize.linprog`.

    Parameters
    ----------
    model:
        The linear program to solve.
    method:
        SciPy method name; ``"highs"`` (dual simplex / interior point chosen
        automatically by HiGHS) is the default and the only method exercised
        by the test-suite.  HiGHS methods get the sparse lowering, others the
        dense one.
    options:
        Extra keyword options forwarded to ``linprog(options=...)``.
    """
    form = to_matrix_form(model, sparse=method.startswith("highs"))
    # Zero-variable models are legal and handled by solve_matrix_form via
    # solve_constant_form.
    return solve_matrix_form(form, method=method, **options)
