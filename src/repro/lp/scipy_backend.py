"""SciPy/HiGHS backend for the LP modelling layer.

This is the production backend.  :func:`scipy.optimize.linprog` with
``method="highs"`` solves the dense matrix form produced by
:mod:`repro.lp.standard_form`.
"""

from __future__ import annotations

from typing import Dict

from scipy.optimize import linprog

from .model import LinearProgram
from .solution import LPSolution, LPStatus
from .standard_form import to_matrix_form

__all__ = ["solve_with_scipy"]

#: Mapping from scipy ``OptimizeResult.status`` codes to our statuses.
_SCIPY_STATUS = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,       # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,       # numerical difficulties
}


def solve_with_scipy(model: LinearProgram, method: str = "highs", **options) -> LPSolution:
    """Solve ``model`` with :func:`scipy.optimize.linprog`.

    Parameters
    ----------
    model:
        The linear program to solve.
    method:
        SciPy method name; ``"highs"`` (dual simplex / interior point chosen
        automatically by HiGHS) is the default and the only method exercised
        by the test-suite.
    options:
        Extra keyword options forwarded to ``linprog(options=...)``.
    """
    form = to_matrix_form(model)

    if form.num_variables == 0:
        # Degenerate but legal: a model with no variables is feasible iff all
        # constraints hold with every variable absent (i.e. constants only).
        violations = model.check_solution({})
        if violations:
            return LPSolution(status=LPStatus.INFEASIBLE, backend="scipy-highs",
                              message="; ".join(violations))
        return LPSolution(
            status=LPStatus.OPTIMAL,
            objective_value=form.objective_constant,
            values={},
            backend="scipy-highs",
        )

    result = linprog(
        c=form.c,
        A_ub=form.a_ub if form.num_inequalities else None,
        b_ub=form.b_ub if form.num_inequalities else None,
        A_eq=form.a_eq if form.num_equalities else None,
        b_eq=form.b_eq if form.num_equalities else None,
        bounds=form.bounds,
        method=method,
        options=options or None,
    )

    status = _SCIPY_STATUS.get(result.status, LPStatus.ERROR)
    if not result.success and status is LPStatus.OPTIMAL:
        status = LPStatus.ERROR

    values: Dict[int, float] = {}
    objective = None
    if status is LPStatus.OPTIMAL and result.x is not None:
        values = {i: float(v) for i, v in enumerate(result.x)}
        objective = form.restore_objective(float(result.fun))

    iterations = None
    nit = getattr(result, "nit", None)
    if nit is not None:
        try:
            iterations = int(nit)
        except (TypeError, ValueError):
            iterations = None

    return LPSolution(
        status=status,
        objective_value=objective,
        values=values,
        backend="scipy-highs",
        iterations=iterations,
        message=str(getattr(result, "message", "")),
    )
