"""Optional native-HiGHS backend with kept-alive warm models (``highspy``).

Gated exactly like numba in :mod:`repro.simulation._compiled` and mypy in
:mod:`repro.lint.typecheck`: ``highspy`` is **not** a dependency of the
package — it is the ``repro[highs]`` extra in ``setup.cfg`` — and when it is
absent this module degrades explicitly: :data:`HIGHSPY_AVAILABLE` is
``False`` and every entry point raises a :class:`SolverError` naming the
extra (callers never silently downgrade; availability is surfaced by
``repro-sched info --lp-backends``).

What the extra buys over the ``scipy`` backend (which also solves with
HiGHS, but through :func:`scipy.optimize.linprog`'s one-shot API) is the
**kept-alive model**: :class:`HighsWarmModel` lowers a :class:`MatrixForm`
into a ``highspy.Highs`` instance once and then re-solves after in-place
bound/right-hand-side/coefficient updates, letting HiGHS warm-start its dual
simplex from the previous basis — the same re-solve discipline
:func:`repro.lp.revised_simplex.solve_matrix_form_revised` implements for
the in-house backend.

Everything in this module is a thin translation layer; it is exercised by
tier-2 tests that ``skipif`` on :data:`HIGHSPY_AVAILABLE`, mirroring the
numba twins.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..exceptions import SolverError
from ..obs.metrics import get_recorder
from .model import LinearProgram
from .solution import LPSolution, LPStatus
from .standard_form import MatrixForm, solve_constant_form, to_matrix_form

__all__ = [
    "HIGHSPY_AVAILABLE",
    "HighsWarmModel",
    "solve_with_highspy",
    "solve_matrix_form",
]

try:  # pragma: no cover - exercised only when the extra is installed
    import highspy  # type: ignore

    HIGHSPY_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError and broken installs alike
    highspy = None  # type: ignore
    HIGHSPY_AVAILABLE = False

_BACKEND = "highspy"


def _require_highspy() -> None:
    if not HIGHSPY_AVAILABLE:
        raise SolverError(
            "the 'highspy' LP backend requires the repro[highs] extra "
            "(pip install repro[highs]); install it or pick another backend "
            "(see repro-sched info --lp-backends)"
        )


def _combined_rows(form: MatrixForm):  # pragma: no cover - needs highspy
    """CSR of ``[A_ub; A_eq]`` plus row lower/upper bound arrays."""
    blocks = []
    num_ub = form.num_inequalities
    num_eq = form.num_equalities
    if num_ub:
        blocks.append(form.a_ub if sp.issparse(form.a_ub) else sp.csr_matrix(form.a_ub))
    if num_eq:
        blocks.append(form.a_eq if sp.issparse(form.a_eq) else sp.csr_matrix(form.a_eq))
    rows = sp.vstack(blocks, format="csr") if blocks else sp.csr_matrix(
        (0, form.num_variables)
    )
    row_lower = np.concatenate(
        [np.full(num_ub, -np.inf), np.asarray(form.b_eq, dtype=float)]
    )
    row_upper = np.concatenate(
        [np.asarray(form.b_ub, dtype=float), np.asarray(form.b_eq, dtype=float)]
    )
    return rows, row_lower, row_upper


class HighsWarmModel:  # pragma: no cover - every method needs highspy
    """A kept-alive ``highspy.Highs`` model for warm-started re-solves.

    Built once from a lowered :class:`MatrixForm`; subsequent probes call
    :meth:`update_bounds` / :meth:`update_rows` and then :meth:`solve` — the
    solver keeps its factorised basis between calls, so a bounds-only change
    costs a handful of dual-simplex iterations.
    """

    def __init__(self, form: MatrixForm) -> None:
        _require_highspy()
        self._form = form
        self._num_variables = form.num_variables
        model = highspy.Highs()
        model.setOptionValue("output_flag", False)
        model.setOptionValue("presolve", "off")  # keep the basis reusable
        rows, row_lower, row_upper = _combined_rows(form)
        bounds = np.asarray(form.bounds, dtype=float)
        lp = highspy.HighsLp()
        lp.num_col_ = form.num_variables
        lp.num_row_ = rows.shape[0]
        lp.col_cost_ = np.asarray(form.c, dtype=float)
        lp.col_lower_ = bounds[:, 0]
        lp.col_upper_ = bounds[:, 1]
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = highspy.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = rows.indptr
        lp.a_matrix_.index_ = rows.indices
        lp.a_matrix_.value_ = rows.data
        model.passModel(lp)
        self._model = model
        self.solves = 0

    def update_bounds(self, bounds: np.ndarray) -> None:
        """Replace every column's bounds (the FeasibilityProbe refresh)."""
        bounds = np.asarray(bounds, dtype=float)
        indices = np.arange(self._num_variables, dtype=np.int32)
        self._model.changeColsBounds(
            self._num_variables, indices, bounds[:, 0], bounds[:, 1]
        )

    def update_rows(self, form: MatrixForm) -> None:
        """Re-lower refreshed constraint rows (the ReplanProbe refresh)."""
        rows, row_lower, row_upper = _combined_rows(form)
        num_rows = rows.shape[0]
        indices = np.arange(num_rows, dtype=np.int32)
        self._model.changeRowsBounds(num_rows, indices, row_lower, row_upper)
        coo = rows.tocoo()
        for r, c, v in zip(coo.row, coo.col, coo.data):
            self._model.changeCoeff(int(r), int(c), float(v))

    def solve(self) -> LPSolution:
        """Re-solve from the kept-alive state and map to :class:`LPSolution`."""
        self._model.run()
        self.solves += 1
        recorder = get_recorder()
        status = self._model.getModelStatus()
        if status == highspy.HighsModelStatus.kOptimal:
            lp_status = LPStatus.OPTIMAL
        elif status == highspy.HighsModelStatus.kInfeasible:
            lp_status = LPStatus.INFEASIBLE
        elif status == highspy.HighsModelStatus.kUnbounded:
            lp_status = LPStatus.UNBOUNDED
        else:
            lp_status = LPStatus.ERROR
        info = self._model.getInfo()
        iterations = int(info.simplex_iteration_count)
        if recorder.enabled:
            recorder.count("lp.solves")
            recorder.observe("lp.iterations", float(iterations))
            if self.solves > 1:
                recorder.count("lp.warm_start_hits")
        if lp_status is not LPStatus.OPTIMAL:
            return LPSolution(
                status=lp_status, backend=_BACKEND, iterations=iterations
            )
        values = self._model.getSolution().col_value
        minimised = float(
            np.asarray(self._form.c, dtype=float) @ np.asarray(values)[: self._num_variables]
        )
        return LPSolution(
            status=LPStatus.OPTIMAL,
            objective_value=self._form.restore_objective(minimised),
            values={j: float(values[j]) for j in range(self._num_variables)},
            backend=_BACKEND,
            iterations=iterations,
        )


def solve_matrix_form(form: MatrixForm, **_: object) -> LPSolution:
    """One-shot native-HiGHS solve of a lowered form (no warm state kept)."""
    _require_highspy()
    if form.num_variables == 0:  # pragma: no cover - needs highspy
        return solve_constant_form(form, _BACKEND)
    return HighsWarmModel(form).solve()  # pragma: no cover - needs highspy


def solve_with_highspy(model: LinearProgram, **kwargs: object) -> LPSolution:
    """Solve a :class:`LinearProgram` with native HiGHS (``repro[highs]``)."""
    _require_highspy()
    return solve_matrix_form(  # pragma: no cover - needs highspy
        to_matrix_form(model, sparse=True), **kwargs
    )
