"""Linear constraints for the LP modelling layer.

A constraint is stored in the normalised form ``expression (<=|>=|==) 0`` with
the right-hand side folded into the expression's constant term, which keeps
the lowering to matrix form (see :mod:`repro.lp.standard_form`) trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from .expression import LinearExpression, Variable, as_expression

__all__ = ["Constraint", "ConstraintSense"]

#: The three supported comparison senses.
ConstraintSense = str  # one of "<=", ">=", "=="

_VALID_SENSES = ("<=", ">=", "==")


@dataclass
class Constraint:
    """A linear constraint ``lhs (sense) rhs``.

    Internally stored as ``expression (sense) 0`` where ``expression`` already
    contains ``lhs - rhs``.  The original right-hand side is not kept; it can
    always be recovered as ``-expression.constant`` when the left-hand side
    has no constant term.
    """

    expression: LinearExpression
    sense: ConstraintSense
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in _VALID_SENSES:
            raise ValueError(f"invalid constraint sense {self.sense!r}; expected one of {_VALID_SENSES}")

    # -- construction -------------------------------------------------------
    @staticmethod
    def from_comparison(
        lhs: Union[Variable, LinearExpression, float, int],
        rhs: Union[Variable, LinearExpression, float, int],
        sense: ConstraintSense,
        name: str = "",
    ) -> "Constraint":
        """Build a constraint from two sides and a comparison sense."""
        expr = as_expression(lhs) - as_expression(rhs)
        return Constraint(expr, sense, name)

    def named(self, name: str) -> "Constraint":
        """Return a copy of the constraint carrying ``name`` (for debugging)."""
        return Constraint(self.expression.copy(), self.sense, name)

    # -- inspection ----------------------------------------------------------
    def violation(self, values: Mapping[int, float]) -> float:
        """Return the amount by which the constraint is violated at ``values``.

        A non-positive return value means the constraint is satisfied.  For
        equality constraints the absolute residual is returned.
        """
        residual = self.expression.evaluate(values)
        if self.sense == "<=":
            return residual
        if self.sense == ">=":
            return -residual
        return abs(residual)

    def is_satisfied(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        """Return ``True`` when the constraint holds at ``values`` up to ``tol``."""
        return self.violation(values) <= tol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expression!r} {self.sense} 0{label})"
