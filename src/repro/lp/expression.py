"""Linear expressions and decision variables for the LP modelling layer.

The paper formulates all of its scheduling problems as linear programs
(Linear Program (1), Systems (2), (3) and (5)).  This module provides the
small symbolic layer used to state those programs in code: decision
variables, affine (linear + constant) expressions over them, and the operator
overloading that lets the scheduling modules write constraints the same way
the paper writes them, e.g.::

    model.add_constraint(sum(alpha[i, j, t] * c[i, j] for j in jobs) <= length_t)

The design intentionally mirrors widely used modelling layers (PuLP, gurobipy)
but stays tiny: expressions are dictionaries mapping variable indices to
coefficients plus a float constant.  Everything is immutable from the outside;
in-place accumulation is available through :meth:`LinearExpression.add_term`
on privately owned instances for performance when building large models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple, Union

__all__ = ["Variable", "LinearExpression", "as_expression", "linear_sum"]

Number = Union[int, float]


@dataclass(frozen=True)
class Variable:
    """A decision variable of a :class:`~repro.lp.model.LinearProgram`.

    Variables are created through :meth:`LinearProgram.add_variable`; user
    code never instantiates them directly.  They are hashable and compare by
    identity of their ``index`` within their owning model.

    Attributes
    ----------
    index:
        Position of the variable in the model's column ordering.
    name:
        Human-readable name, used in debug dumps and solution objects.
    lower:
        Lower bound (``-inf`` for free variables).
    upper:
        Upper bound (``+inf`` for unbounded-above variables).
    """

    index: int
    name: str
    lower: float = 0.0
    upper: float = float("inf")

    # -- arithmetic -------------------------------------------------------
    def _as_expr(self) -> "LinearExpression":
        return LinearExpression({self.index: 1.0}, 0.0)

    def __add__(self, other: Union["Variable", "LinearExpression", Number]) -> "LinearExpression":
        return self._as_expr() + other

    def __radd__(self, other: Union[Number, "LinearExpression"]) -> "LinearExpression":
        return self._as_expr() + other

    def __sub__(self, other: Union["Variable", "LinearExpression", Number]) -> "LinearExpression":
        return self._as_expr() - other

    def __rsub__(self, other: Union[Number, "LinearExpression"]) -> "LinearExpression":
        return (-1.0) * self._as_expr() + other

    def __mul__(self, scalar: Number) -> "LinearExpression":
        return self._as_expr() * scalar

    def __rmul__(self, scalar: Number) -> "LinearExpression":
        return self._as_expr() * scalar

    def __neg__(self) -> "LinearExpression":
        return self._as_expr() * -1.0

    def __truediv__(self, scalar: Number) -> "LinearExpression":
        return self._as_expr() / scalar

    # -- comparisons build constraints (handled by the model module) ------
    def __le__(self, other: Union["Variable", "LinearExpression", Number]):
        from .constraint import Constraint  # local import to avoid a cycle

        return Constraint.from_comparison(self._as_expr(), other, "<=")

    def __ge__(self, other: Union["Variable", "LinearExpression", Number]):
        from .constraint import Constraint

        return Constraint.from_comparison(self._as_expr(), other, ">=")

    def __eq__(self, other: object):  # type: ignore[override]
        # Equality against another Variable/expression/number builds a
        # constraint.  Identity-style equality (needed for hashing and for
        # dataclass-generated comparisons) is not used anywhere in the code
        # base, so this asymmetry is acceptable and mirrors PuLP's behaviour.
        from .constraint import Constraint

        if isinstance(other, (Variable, LinearExpression, int, float)):
            return Constraint.from_comparison(self._as_expr(), other, "==")
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.index, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r}, index={self.index})"


@dataclass
class LinearExpression:
    """An affine expression ``sum_k coeff_k * x_k + constant``.

    Instances behave like values: the arithmetic operators return new
    expressions and never mutate their operands.  The only mutating entry
    point is :meth:`add_term`, which exists so that model-building loops can
    accumulate thousands of terms without allocating intermediate dicts.
    """

    coefficients: Dict[int, float] = field(default_factory=dict)
    constant: float = 0.0

    # -- construction helpers ---------------------------------------------
    @staticmethod
    def zero() -> "LinearExpression":
        """Return the zero expression."""
        return LinearExpression({}, 0.0)

    def copy(self) -> "LinearExpression":
        """Return an independent copy of the expression."""
        return LinearExpression(dict(self.coefficients), self.constant)

    def add_term(self, var: Variable, coeff: float) -> "LinearExpression":
        """In-place ``self += coeff * var`` (returns ``self`` for chaining)."""
        if coeff != 0.0:
            self.coefficients[var.index] = self.coefficients.get(var.index, 0.0) + coeff
        return self

    def add_constant(self, value: float) -> "LinearExpression":
        """In-place ``self += value`` (returns ``self`` for chaining)."""
        self.constant += value
        return self

    # -- inspection --------------------------------------------------------
    def is_constant(self) -> bool:
        """Return ``True`` when the expression has no variable terms."""
        return all(c == 0.0 for c in self.coefficients.values())

    def coefficient(self, var: Variable) -> float:
        """Return the coefficient of ``var`` (0.0 when absent)."""
        return self.coefficients.get(var.index, 0.0)

    def terms(self) -> Iterable[Tuple[int, float]]:
        """Iterate over ``(variable_index, coefficient)`` pairs."""
        return self.coefficients.items()

    def evaluate(self, values: Mapping[int, float]) -> float:
        """Evaluate the expression at a point given as ``{var_index: value}``."""
        total = self.constant
        for idx, coeff in self.coefficients.items():
            total += coeff * values.get(idx, 0.0)
        return total

    # -- arithmetic ---------------------------------------------------------
    def _coerce(self, other: Union["Variable", "LinearExpression", Number]) -> "LinearExpression":
        if isinstance(other, LinearExpression):
            return other
        if isinstance(other, Variable):
            return other._as_expr()
        if isinstance(other, (int, float)):
            return LinearExpression({}, float(other))
        raise TypeError(f"cannot combine LinearExpression with {type(other).__name__}")

    def __add__(self, other: Union["Variable", "LinearExpression", Number]) -> "LinearExpression":
        rhs = self._coerce(other)
        coeffs = dict(self.coefficients)
        for idx, coeff in rhs.coefficients.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + coeff
        return LinearExpression(coeffs, self.constant + rhs.constant)

    def __radd__(self, other: Union[Number, "Variable"]) -> "LinearExpression":
        return self.__add__(other)

    def __sub__(self, other: Union["Variable", "LinearExpression", Number]) -> "LinearExpression":
        rhs = self._coerce(other)
        coeffs = dict(self.coefficients)
        for idx, coeff in rhs.coefficients.items():
            coeffs[idx] = coeffs.get(idx, 0.0) - coeff
        return LinearExpression(coeffs, self.constant - rhs.constant)

    def __rsub__(self, other: Union[Number, "Variable"]) -> "LinearExpression":
        return self._coerce(other) - self

    def __mul__(self, scalar: Number) -> "LinearExpression":
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinearExpression can only be multiplied by a scalar")
        s = float(scalar)
        return LinearExpression(
            {idx: coeff * s for idx, coeff in self.coefficients.items()}, self.constant * s
        )

    def __rmul__(self, scalar: Number) -> "LinearExpression":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: Number) -> "LinearExpression":
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinearExpression can only be divided by a scalar")
        if scalar == 0:
            raise ZeroDivisionError("division of a LinearExpression by zero")
        return self.__mul__(1.0 / float(scalar))

    def __neg__(self) -> "LinearExpression":
        return self.__mul__(-1.0)

    # -- comparisons build constraints --------------------------------------
    def __le__(self, other: Union["Variable", "LinearExpression", Number]):
        from .constraint import Constraint

        return Constraint.from_comparison(self, other, "<=")

    def __ge__(self, other: Union["Variable", "LinearExpression", Number]):
        from .constraint import Constraint

        return Constraint.from_comparison(self, other, ">=")

    def __eq__(self, other: object):  # type: ignore[override]
        from .constraint import Constraint

        if isinstance(other, (Variable, LinearExpression, int, float)):
            return Constraint.from_comparison(self, other, "==")
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # expressions are mutable, not hashable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*x{i}" for i, c in sorted(self.coefficients.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinearExpression(" + " ".join(parts) + ")"


def as_expression(value: Union[Variable, LinearExpression, Number]) -> LinearExpression:
    """Coerce a variable, expression or number into a :class:`LinearExpression`."""
    if isinstance(value, LinearExpression):
        return value
    if isinstance(value, Variable):
        return value._as_expr()
    if isinstance(value, (int, float)):
        return LinearExpression({}, float(value))
    raise TypeError(f"cannot interpret {type(value).__name__} as a linear expression")


def linear_sum(terms: Iterable[Union[Variable, LinearExpression, Number]]) -> LinearExpression:
    """Sum an iterable of variables/expressions/numbers efficiently.

    Unlike the builtin :func:`sum`, this accumulates into a single mutable
    expression, which matters when the scheduling modules build resource
    constraints with thousands of terms.
    """
    acc = LinearExpression.zero()
    for term in terms:
        if isinstance(term, Variable):
            acc.coefficients[term.index] = acc.coefficients.get(term.index, 0.0) + 1.0
        elif isinstance(term, LinearExpression):
            for idx, coeff in term.coefficients.items():
                acc.coefficients[idx] = acc.coefficients.get(idx, 0.0) + coeff
            acc.constant += term.constant
        elif isinstance(term, (int, float)):
            acc.constant += float(term)
        else:
            raise TypeError(f"cannot sum term of type {type(term).__name__}")
    return acc
