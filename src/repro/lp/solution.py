"""Solution and status objects returned by the LP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .expression import LinearExpression, Variable

__all__ = ["LPStatus", "LPSolution"]


class LPStatus(enum.Enum):
    """Termination status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        """Return ``True`` when the solve produced a proven optimum."""
        return self is LPStatus.OPTIMAL


@dataclass
class LPSolution:
    """Result of solving a :class:`~repro.lp.model.LinearProgram`.

    Attributes
    ----------
    status:
        Termination status.
    objective_value:
        Optimal objective value (``None`` unless ``status`` is optimal).
    values:
        Mapping from variable index to optimal value (empty unless optimal).
    backend:
        Name of the backend that produced the solution (``"scipy-highs"`` or
        ``"simplex"``), recorded for diagnostics and the backend-ablation
        bench.
    iterations:
        Iteration count reported by the backend, when available.
    message:
        Free-form backend message (useful when ``status`` is ``ERROR``).
    """

    status: LPStatus
    objective_value: Optional[float] = None
    values: Dict[int, float] = field(default_factory=dict)
    backend: str = ""
    iterations: Optional[int] = None
    message: str = ""

    # -- convenience accessors ----------------------------------------------
    def __getitem__(self, var: Variable) -> float:
        """Return the optimal value of ``var`` (0.0 when absent)."""
        return self.values.get(var.index, 0.0)

    def value(self, item) -> float:
        """Return the value of a variable or evaluate an expression.

        Accepts a :class:`Variable`, a :class:`LinearExpression` or a plain
        number; numbers are returned unchanged so callers can treat constants
        and expressions uniformly.
        """
        if isinstance(item, Variable):
            return self.values.get(item.index, 0.0)
        if isinstance(item, LinearExpression):
            return item.evaluate(self.values)
        if isinstance(item, (int, float)):
            return float(item)
        raise TypeError(f"cannot evaluate object of type {type(item).__name__}")

    @property
    def is_optimal(self) -> bool:
        """Return ``True`` when the solve produced a proven optimum."""
        return self.status.is_optimal

    @property
    def is_infeasible(self) -> bool:
        """Return ``True`` when the problem was proven infeasible."""
        return self.status is LPStatus.INFEASIBLE

    def as_dense(self, num_variables: int) -> list:
        """Return the solution as a dense list of length ``num_variables``."""
        return [self.values.get(i, 0.0) for i in range(num_variables)]

    def restricted(self, predicate) -> Mapping[int, float]:
        """Return the sub-mapping of values whose index satisfies ``predicate``."""
        return {idx: val for idx, val in self.values.items() if predicate(idx)}
