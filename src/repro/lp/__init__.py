"""Self-contained linear-programming modelling layer (substrate S1).

The paper expresses all of its scheduling results as linear programs; this
subpackage provides the modelling objects used to state them and two
interchangeable solving backends:

* :mod:`repro.lp.scipy_backend` — SciPy's HiGHS wrapper (production backend);
* :mod:`repro.lp.simplex` — an in-house dense two-phase simplex used for
  cross-validation and the backend-ablation bench.

Public API
----------
:class:`LinearProgram`
    The model object (variables, constraints, objective, ``solve``).
:class:`Variable`, :class:`LinearExpression`, :func:`linear_sum`
    Building blocks for stating constraints.
:class:`Constraint`
    Normalised constraint object produced by comparisons.
:class:`LPSolution`, :class:`LPStatus`
    Solve results.
"""

from .constraint import Constraint
from .expression import LinearExpression, Variable, as_expression, linear_sum
from .model import LinearProgram
from .solution import LPSolution, LPStatus
from .standard_form import MatrixForm, to_matrix_form

__all__ = [
    "Constraint",
    "LinearExpression",
    "LinearProgram",
    "LPSolution",
    "LPStatus",
    "MatrixForm",
    "Variable",
    "as_expression",
    "linear_sum",
    "to_matrix_form",
]
