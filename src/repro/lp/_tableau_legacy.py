"""FROZEN dense two-phase tableau simplex — the byte-identity reference.

This module is the pre-ISSUE-9 in-house backend, frozen verbatim (exactly
like ``repro.streaming._stream_legacy`` and ``repro.engine._seed_engine``):
the production in-house path now lives in :mod:`repro.lp.revised_simplex`,
and this tableau stays behind the ``"tableau"`` backend name so the revised
solver can always be cross-checked against the implementation every pre-9
optimum was derived with.  Do not optimise or "fix" this file; semantic
changes belong in the revised solver (with a ``CODE_EPOCH`` bump).

The original module docstring follows.

This backend exists for two reasons:

1. **Self-containedness** — the reproduction implements its whole algorithmic
   chain from scratch; the LP solver the paper relies on is part of that
   chain.  SciPy/HiGHS remains the production backend, but every optimum used
   in the tests can be re-derived by this independent implementation.
2. **Cross-validation** — the backend-ablation bench (E7 in DESIGN.md) and the
   property tests compare the two backends on randomly generated programs.

The implementation is a textbook dense tableau simplex:

* general bounds are removed by shifting / splitting variables so that every
  variable is non-negative;
* inequalities receive slack variables;
* a phase-1 problem with artificial variables finds a basic feasible point;
* phase 2 optimises the true objective;
* Bland's rule is used throughout, which guarantees termination at the cost
  of speed — acceptable because this backend only targets small programs.

The complexity is exponential in the worst case but the LPs built by the
scheduling modules for cross-validation purposes have at most a few hundred
variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..obs.metrics import get_recorder
from .model import LinearProgram
from .solution import LPSolution, LPStatus
from .standard_form import MatrixForm, solve_constant_form, to_matrix_form

__all__ = ["solve_with_simplex", "solve_matrix_form", "SimplexResult"]

_EPS = 1e-9

#: Constraint coefficients below this magnitude are dropped before the solve,
#: mirroring the HiGHS presolve "small matrix value" threshold.  A pivot on a
#: near-zero coefficient divides its whole row by it, amplifying rounding dirt
#: into bound violations far above the feasibility tolerances — and with
#: box-bounded variables such a coefficient's contribution is below every
#: tolerance anyway, so the two backends disagree on which vertex is optimal
#: unless both drop it.
_COEFF_DROP = 1e-9


@dataclass
class SimplexResult:
    """Raw result of a tableau solve (before mapping back to model variables)."""

    status: LPStatus
    x: Optional[np.ndarray]
    objective: Optional[float]
    iterations: int
    message: str = ""


# --------------------------------------------------------------------------- #
# Bound removal                                                               #
# --------------------------------------------------------------------------- #
@dataclass
class _BoundMapping:
    """How an original variable maps onto the non-negative solver variables.

    ``kind`` is one of:

    * ``"shift"``   — ``x = lo + y``         (finite lower bound)
    * ``"reflect"`` — ``x = up - y``         (only an upper bound)
    * ``"split"``   — ``x = y_pos - y_neg``  (free variable)
    """

    kind: str
    column: int
    column2: int = -1
    offset: float = 0.0


def _remove_bounds(form: MatrixForm) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                                              np.ndarray, List[_BoundMapping], float]:
    """Rewrite the problem over non-negative variables.

    Returns ``(c, a_ub, b_ub, a_eq, b_eq, mappings, objective_shift)`` where
    the matrices are expressed over the new variables and ``objective_shift``
    is the constant added to the objective by the substitutions.
    """
    n = form.num_variables
    mappings: List[_BoundMapping] = []
    columns_per_var: List[List[Tuple[int, float]]] = []  # (new column, multiplier)
    offsets = np.zeros(n)
    next_col = 0

    extra_ub_rows: List[Tuple[int, float]] = []  # (original var index, upper bound on shifted var)

    for j in range(n):
        lower, upper = form.bounds[j]
        if np.isfinite(lower):
            mapping = _BoundMapping(kind="shift", column=next_col, offset=lower)
            columns_per_var.append([(next_col, 1.0)])
            offsets[j] = lower
            if np.isfinite(upper):
                extra_ub_rows.append((j, upper - lower))
            next_col += 1
        elif np.isfinite(upper):
            mapping = _BoundMapping(kind="reflect", column=next_col, offset=upper)
            columns_per_var.append([(next_col, -1.0)])
            offsets[j] = upper
            next_col += 1
        else:
            mapping = _BoundMapping(kind="split", column=next_col, column2=next_col + 1)
            columns_per_var.append([(next_col, 1.0), (next_col + 1, -1.0)])
            next_col += 2
        mappings.append(mapping)

    total_cols = next_col

    def expand(matrix: np.ndarray) -> np.ndarray:
        if matrix.shape[0] == 0:
            return np.zeros((0, total_cols))
        out = np.zeros((matrix.shape[0], total_cols))
        for j in range(n):
            col = matrix[:, j]
            for new_col, mult in columns_per_var[j]:
                out[:, new_col] += mult * col
        return out

    a_ub = expand(form.a_ub)
    b_ub = form.b_ub - form.a_ub @ offsets if form.a_ub.shape[0] else form.b_ub.copy()
    a_eq = expand(form.a_eq)
    b_eq = form.b_eq - form.a_eq @ offsets if form.a_eq.shape[0] else form.b_eq.copy()

    # Upper bounds on shifted variables become explicit <= rows.
    if extra_ub_rows:
        rows = np.zeros((len(extra_ub_rows), total_cols))
        rhs = np.zeros(len(extra_ub_rows))
        for k, (j, bound) in enumerate(extra_ub_rows):
            new_col, mult = columns_per_var[j][0]
            rows[k, new_col] = mult
            rhs[k] = bound
        a_ub = np.vstack([a_ub, rows]) if a_ub.shape[0] else rows
        b_ub = np.concatenate([b_ub, rhs]) if b_ub.shape[0] else rhs

    c = np.zeros(total_cols)
    for j in range(n):
        for new_col, mult in columns_per_var[j]:
            c[new_col] += mult * form.c[j]
    objective_shift = float(form.c @ offsets)

    return c, a_ub, b_ub, a_eq, b_eq, mappings, objective_shift


def _recover_original(x_new: np.ndarray, mappings: List[_BoundMapping]) -> np.ndarray:
    """Map a solution over the non-negative variables back to the originals."""
    x = np.zeros(len(mappings))
    for j, mapping in enumerate(mappings):
        if mapping.kind == "shift":
            x[j] = mapping.offset + x_new[mapping.column]
        elif mapping.kind == "reflect":
            x[j] = mapping.offset - x_new[mapping.column]
        else:  # split
            x[j] = x_new[mapping.column] - x_new[mapping.column2]
    return x


# --------------------------------------------------------------------------- #
# Tableau machinery                                                           #
# --------------------------------------------------------------------------- #
def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau so that column ``col`` becomes basic in row ``row``."""
    pivot_value = tableau[row, col]
    tableau[row, :] /= pivot_value
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 0.0:
            tableau[r, :] -= tableau[r, col] * tableau[row, :]
    basis[row] = col


def _simplex_iterate(
    tableau: np.ndarray,
    basis: np.ndarray,
    num_structural: int,
    max_iterations: int,
) -> Tuple[str, int]:
    """Run Bland-rule simplex iterations on a tableau in canonical form.

    The last row of the tableau is the (reduced-cost) objective row and the
    last column is the right-hand side.  Returns ``(status, iterations)``
    where status is ``"optimal"``, ``"unbounded"`` or ``"iteration_limit"``.
    """
    num_rows = tableau.shape[0] - 1
    iterations = 0
    while iterations < max_iterations:
        objective_row = tableau[-1, :num_structural]
        entering = -1
        for j in range(num_structural):
            if objective_row[j] < -_EPS:
                entering = j
                break  # Bland's rule: smallest index
        if entering < 0:
            return "optimal", iterations

        # Ratio test (Bland: smallest basis index breaks ties).
        best_ratio = np.inf
        leaving = -1
        for i in range(num_rows):
            coeff = tableau[i, entering]
            if coeff > _EPS:
                # A feasible tableau's right-hand sides are non-negative; a
                # slightly negative value is accumulated rounding dirt, and a
                # negative ratio would both pick the wrong leaving row and
                # drive the entering variable out of bounds.
                ratio = max(tableau[i, -1], 0.0) / coeff
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded", iterations

        _pivot(tableau, basis, leaving, entering)
        iterations += 1
    return "iteration_limit", iterations


def _solve_nonnegative(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int,
) -> SimplexResult:
    """Solve ``min c.x`` s.t. ``a_ub x <= b_ub``, ``a_eq x == b_eq``, ``x >= 0``."""
    n = c.shape[0]
    if a_ub.size:
        a_ub = np.where(np.abs(a_ub) < _COEFF_DROP, 0.0, a_ub)
    if a_eq.size:
        a_eq = np.where(np.abs(a_eq) < _COEFF_DROP, 0.0, a_eq)
    num_ub = a_ub.shape[0]
    num_eq = a_eq.shape[0]
    m = num_ub + num_eq

    if m == 0:
        # No constraints: optimum is 0 for non-negative costs, unbounded otherwise.
        if np.any(c < -_EPS):
            return SimplexResult(LPStatus.UNBOUNDED, None, None, 0)
        return SimplexResult(LPStatus.OPTIMAL, np.zeros(n), 0.0, 0)

    # Build equality system with slacks:  [A_ub  I; A_eq  0] x_full = b
    a_full = np.zeros((m, n + num_ub))
    b_full = np.zeros(m)
    if num_ub:
        a_full[:num_ub, :n] = a_ub
        a_full[:num_ub, n:n + num_ub] = np.eye(num_ub)
        b_full[:num_ub] = b_ub
    if num_eq:
        a_full[num_ub:, :n] = a_eq
        b_full[num_ub:] = b_eq

    # Normalise negative right-hand sides.
    for i in range(m):
        if b_full[i] < 0:
            a_full[i, :] *= -1.0
            b_full[i] *= -1.0

    num_structural = n + num_ub

    # ---------------- Phase 1 ----------------
    num_artificial = m
    tableau = np.zeros((m + 1, num_structural + num_artificial + 1))
    tableau[:m, :num_structural] = a_full
    tableau[:m, num_structural:num_structural + num_artificial] = np.eye(m)
    tableau[:m, -1] = b_full
    # Phase-1 objective: minimise sum of artificials.
    tableau[-1, num_structural:num_structural + num_artificial] = 1.0
    basis = np.arange(num_structural, num_structural + num_artificial)
    # Price out the artificial columns from the objective row.
    for i in range(m):
        tableau[-1, :] -= tableau[i, :]

    status, iters1 = _simplex_iterate(
        tableau, basis, num_structural + num_artificial, max_iterations
    )
    if status == "iteration_limit":
        return SimplexResult(LPStatus.ERROR, None, None, iters1, "phase-1 iteration limit")
    phase1_value = -tableau[-1, -1]
    if phase1_value > 1e-7:
        return SimplexResult(LPStatus.INFEASIBLE, None, None, iters1)

    # Drive any artificial variables out of the basis when possible.
    for i in range(m):
        if basis[i] >= num_structural:
            pivot_col = -1
            for j in range(num_structural):
                if abs(tableau[i, j]) > _EPS:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, i, pivot_col)
            # else: the row is redundant; the artificial stays basic at zero.

    # ---------------- Phase 2 ----------------
    # Rebuild the objective row for the true costs and zero out artificials.
    tableau2 = np.zeros((m + 1, num_structural + 1))
    tableau2[:m, :num_structural] = tableau[:m, :num_structural]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :num_structural] = np.concatenate([c, np.zeros(num_ub)])
    # Price out basic columns.
    for i in range(m):
        col = basis[i]
        if col < num_structural and abs(tableau2[-1, col]) > 0.0:
            tableau2[-1, :] -= tableau2[-1, col] * tableau2[i, :]

    status, iters2 = _simplex_iterate(tableau2, basis, num_structural, max_iterations)
    total_iters = iters1 + iters2
    if status == "iteration_limit":
        return SimplexResult(LPStatus.ERROR, None, None, total_iters, "phase-2 iteration limit")
    if status == "unbounded":
        return SimplexResult(LPStatus.UNBOUNDED, None, None, total_iters)

    x_full = np.zeros(num_structural)
    for i in range(m):
        if basis[i] < num_structural:
            x_full[basis[i]] = tableau2[i, -1]
    x = x_full[:n]
    objective = float(c @ x)
    return SimplexResult(LPStatus.OPTIMAL, x, objective, total_iters)


# --------------------------------------------------------------------------- #
# Public entry points                                                         #
# --------------------------------------------------------------------------- #
def solve_with_simplex(model: LinearProgram, max_iterations: int = 20000) -> LPSolution:
    """Solve ``model`` with the in-house dense two-phase simplex.

    Parameters
    ----------
    model:
        The linear program to solve.
    max_iterations:
        Safety cap on simplex pivots (per phase).
    """
    # Zero-variable models are legal and handled by solve_matrix_form via
    # solve_constant_form.
    return solve_matrix_form(to_matrix_form(model), max_iterations=max_iterations)


def solve_matrix_form(form: MatrixForm, max_iterations: int = 20000) -> LPSolution:
    """Solve an already-lowered :class:`MatrixForm` with the tableau simplex.

    The tableau machinery is dense, so sparse forms (built for the HiGHS
    backend) are densified first — this keeps the simplex backend usable as a
    cross-validation oracle for the sparse lowering path and for the
    re-solve-with-new-bounds probes of :mod:`repro.core.maxflow`.
    """
    if form.num_variables == 0:
        # A variable-free program is feasible iff its constant rows hold.
        return solve_constant_form(form, "simplex")

    form = form.densified()

    c, a_ub, b_ub, a_eq, b_eq, mappings, objective_shift = _remove_bounds(form)
    raw = _solve_nonnegative(c, a_ub, b_ub, a_eq, b_eq, max_iterations)

    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("lp.solves")
        recorder.observe("lp.iterations", float(raw.iterations))

    if raw.status is not LPStatus.OPTIMAL:
        return LPSolution(status=raw.status, backend="simplex",
                          iterations=raw.iterations, message=raw.message)

    x_original = _recover_original(raw.x, mappings)
    values = {i: float(v) for i, v in enumerate(x_original)}
    minimised = raw.objective + objective_shift
    objective_value = form.restore_objective(minimised)
    return LPSolution(
        status=LPStatus.OPTIMAL,
        objective_value=objective_value,
        values=values,
        backend="simplex",
        iterations=raw.iterations,
    )
